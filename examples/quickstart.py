"""Quickstart: estimate set-expression cardinalities over update streams.

Builds two synthetic update streams (with deletions!), maintains 2-level
hash sketch synopses through the StreamEngine, and compares the estimated
cardinalities of ``A ∪ B``, ``A ∩ B``, and ``A − B`` against exact ground
truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactStreamStore, SketchSpec, StreamEngine, Update


def main() -> None:
    rng = np.random.default_rng(7)

    # One spec = one set of "coins"; every stream summarised under it is
    # comparable.  256 sketches of 16 second-level hashes each.
    spec = SketchSpec(num_sketches=256, seed=42)
    engine = StreamEngine(spec)
    exact = ExactStreamStore()  # ground truth, for the comparison only

    # Synthesise two overlapping element populations.
    pool = rng.choice(2**30, size=30_000, replace=False)
    population_a = pool[:20_000]
    population_b = pool[10_000:]  # overlaps A on 10k elements

    print("ingesting insertions ...")
    for stream, population in (("A", population_a), ("B", population_b)):
        for element in population:
            update = Update(stream, int(element), +1)
            engine.process(update)
            exact.apply(update)

    # Now delete a slice of B — the sketches absorb deletions natively.
    print("ingesting deletions ...")
    for element in population_b[:5_000]:
        update = Update("B", int(element), -1)
        engine.process(update)
        exact.apply(update)

    print(f"\nprocessed {engine.updates_processed:,} update tuples")
    print(f"synopsis footprint: {engine.synopsis_bytes() / 1e6:.1f} MB\n")

    for expression in ("A | B", "A & B", "A - B", "B - A"):
        estimate = engine.query(expression, epsilon=0.1)
        truth = exact.cardinality(expression)
        error = abs(estimate.value - truth) / truth if truth else 0.0
        print(
            f"|{expression:7s}|  estimate {estimate.value:10.0f}   "
            f"exact {truth:8d}   relative error {100 * error:5.1f}%"
        )


if __name__ == "__main__":
    main()
