"""Families of independent 2-level hash sketches.

Every estimator in the paper averages over ``r`` *independent* sketch
instances, each built with its own randomly drawn first- and second-level
hash functions, and requires that the sketches for different streams use
the *same* functions pairwise (the "stored coins" of the distributed-streams
model).  :class:`SketchSpec` captures that contract: a spec is a master
seed plus structural parameters, and every :class:`SketchFamily` built from
an equal spec uses identical hash functions, sketch index by sketch index.

Seeds are derived *per sketch index* (``seed_sequence = [seed, index]``),
which makes hash generation **prefix-stable**: the first ``r'`` sketches of
a family with ``num_sketches = r`` are exactly the sketches of a family
with ``num_sketches = r'``.  The experiment harness leans on this to sweep
synopsis space by building one large family and evaluating estimators on
:meth:`SketchFamily.prefix` views.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core.plan import HashPlan, plan_for
from repro.core.sketch import (
    SketchHashes,
    SketchShape,
    TwoLevelHashSketch,
    scatter_add,
    segmented_add,
)
from repro.errors import DomainError, IncompatibleSketchesError

__all__ = ["SketchSpec", "SketchFamily", "check_same_coins", "sum_families"]


@dataclass(frozen=True)
class SketchSpec:
    """Recipe for a family of ``num_sketches`` comparable sketches.

    ``index_offset`` supports contiguous *slices* of a larger family
    (e.g. the disjoint groups of :mod:`repro.core.boosting`): a spec with
    offset ``o`` uses the hash functions of global indices
    ``o .. o + num_sketches - 1`` of the same seed.
    """

    num_sketches: int = 64
    shape: SketchShape = SketchShape()
    seed: int = 0
    index_offset: int = 0

    def __post_init__(self) -> None:
        if self.num_sketches < 1:
            raise ValueError("a family needs at least one sketch")
        if self.index_offset < 0:
            raise ValueError("index_offset must be non-negative")

    def with_num_sketches(self, num_sketches: int) -> "SketchSpec":
        """The same coins, truncated/extended to ``num_sketches``."""
        return replace(self, num_sketches=num_sketches)

    def with_slice(self, start: int, stop: int) -> "SketchSpec":
        """The coins of global sketch indices ``[offset+start, offset+stop)``."""
        if not (0 <= start < stop <= self.num_sketches):
            raise ValueError("slice bounds out of range")
        return replace(
            self,
            num_sketches=stop - start,
            index_offset=self.index_offset + start,
        )

    def hashes(self) -> tuple[SketchHashes, ...]:
        """The per-index hash functions (deterministic, prefix-stable)."""
        return _draw_family_hashes(
            self.seed, self.index_offset, self.num_sketches, self.shape
        )

    def to_json_dict(self) -> dict:
        """A plain-JSON representation (for checkpoints and manifests)."""
        return {
            "num_sketches": self.num_sketches,
            "seed": self.seed,
            "index_offset": self.index_offset,
            "shape": {
                "domain_bits": self.shape.domain_bits,
                "num_second_level": self.shape.num_second_level,
                "independence": self.shape.independence,
            },
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "SketchSpec":
        """Inverse of :meth:`to_json_dict`."""
        shape = payload["shape"]
        return cls(
            num_sketches=int(payload["num_sketches"]),
            seed=int(payload["seed"]),
            index_offset=int(payload.get("index_offset", 0)),
            shape=SketchShape(
                domain_bits=int(shape["domain_bits"]),
                num_second_level=int(shape["num_second_level"]),
                independence=int(shape["independence"]),
            ),
        )

    @property
    def counter_cells(self) -> int:
        """Total ``int64`` cells in one family's counter slab.

        The flat-index domain of the sparse delta codec
        (:mod:`repro.streams.net.codec`): ``r * levels * s * 2``, i.e.
        ``counter_payload_bytes // 8``.
        """
        shape = self.shape.counter_shape
        return self.num_sketches * shape[0] * shape[1] * shape[2]

    @property
    def counter_payload_bytes(self) -> int:
        """Size of the dense (v1) serialised counter payload, in bytes."""
        return 8 * self.counter_cells

    def build(self) -> "SketchFamily":
        """Construct an empty family following this spec."""
        return SketchFamily(self)


@lru_cache(maxsize=64)
def _draw_family_hashes(
    seed: int, index_offset: int, num_sketches: int, shape: SketchShape
) -> tuple[SketchHashes, ...]:
    """Derive hash functions for global sketch indices
    ``index_offset .. index_offset + num_sketches - 1``.

    Each index gets its own ``Generator`` seeded by ``[seed, index]`` so
    that the draw for index ``i`` never depends on how many sketches the
    family has — the prefix-stability property documented above (and the
    slice-stability the boosting groups rely on).
    """
    drawn = []
    for index in range(index_offset, index_offset + num_sketches):
        rng = np.random.default_rng([seed, index])
        drawn.append(SketchHashes.draw(rng, shape))
    return tuple(drawn)


class SketchFamily:
    """``r`` independent 2-level hash sketches summarising one stream.

    The counters of all member sketches live in one stacked
    ``(r, levels, s, 2)`` array, which the estimators slice level-wise to
    evaluate all ``r`` property checks with vectorised numpy; individual
    members are exposed as zero-copy :class:`TwoLevelHashSketch` views.

    Alongside the raw counters the family maintains **incremental level
    aggregates** for the query planner: the ``(r, levels)`` bucket-total
    matrix (what :meth:`level_totals` returns, kept up to date as updates
    apply instead of re-derived from the counter slab per query), a
    monotone :attr:`version` counter bumped on every mutation, and a
    per-level *dirty version* recording when each first-level bucket
    index last changed.  Query caches use the dirty versions to
    revalidate in O(levels) — see
    :meth:`levels_clean_since` and :mod:`repro.streams.engine`.

    The aggregates are maintained by every mutation that goes through
    the family's own methods.  Writing through a :meth:`sketch` view or
    into :attr:`counters` directly bypasses the bookkeeping; call
    :meth:`refresh_aggregates` afterwards.  Zero-copy :meth:`prefix` /
    :meth:`slice` views snapshot their aggregates at construction, so
    build them *after* the parent family stops mutating (which is how
    the experiment harness and the boosting groups already use them).
    """

    __slots__ = (
        "spec",
        "_hashes",
        "counters",
        "_version",
        "_level_totals",
        "_level_versions",
        "_nonempty_counts",
        "_nonempty_version",
        "_dirty_list",
        "_dirty_prefix_max",
        "_dirty_list_version",
    )

    def __init__(self, spec: SketchSpec, counters: np.ndarray | None = None) -> None:
        self.spec = spec
        self._hashes = spec.hashes()
        expected = (spec.num_sketches,) + spec.shape.counter_shape
        if counters is None:
            counters = np.zeros(expected, dtype=np.int64)
        elif counters.shape != expected:
            raise IncompatibleSketchesError(
                f"counter array has shape {counters.shape}, expected {expected}"
            )
        self.counters = counters
        self._version = 0
        self._level_versions = np.zeros(spec.shape.num_levels, dtype=np.int64)
        self._level_totals = (
            self.counters[:, :, 0, 0] + self.counters[:, :, 0, 1]
        )
        self._nonempty_counts: np.ndarray | None = None
        self._nonempty_version = -1
        self._dirty_list: list[int] | None = None
        self._dirty_prefix_max: list[int] | None = None
        self._dirty_list_version = -1

    # -- structure ---------------------------------------------------------

    @property
    def num_sketches(self) -> int:
        return self.spec.num_sketches

    @property
    def shape(self) -> SketchShape:
        return self.spec.shape

    def sketch(self, index: int) -> TwoLevelHashSketch:
        """Zero-copy view of member sketch ``index``."""
        return TwoLevelHashSketch(
            self._hashes[index], self.spec.shape, self.counters[index]
        )

    def __len__(self) -> int:
        return self.spec.num_sketches

    def __iter__(self):
        return (self.sketch(i) for i in range(self.spec.num_sketches))

    def prefix(self, num_sketches: int) -> "SketchFamily":
        """Zero-copy family over the first ``num_sketches`` members.

        Valid because hash derivation is prefix-stable; estimators run on a
        prefix behave exactly as if only that many sketches had ever been
        maintained.
        """
        if not (1 <= num_sketches <= self.spec.num_sketches):
            raise ValueError("prefix size out of range")
        return SketchFamily(
            self.spec.with_num_sketches(num_sketches),
            self.counters[:num_sketches],
        )

    def slice(self, start: int, stop: int) -> "SketchFamily":
        """Zero-copy family over members ``[start, stop)``.

        Like :meth:`prefix` but anywhere in the family; the slice's spec
        carries the matching ``index_offset`` so its coins stay correct
        (slices of same-spec families remain mutually compatible).
        """
        return SketchFamily(
            self.spec.with_slice(start, stop),
            self.counters[start:stop],
        )

    # -- maintenance ------------------------------------------------------

    def update(self, element: int, count: int = 1) -> None:
        """Apply one update ``<element, +/-count>`` to every member."""
        for index in range(self.spec.num_sketches):
            self.sketch(index).update(element, count)
        self._mark_all_dirty()

    def update_batch(self, elements, counts=None, *, plan: HashPlan | str | None = "auto") -> None:
        """Vectorised maintenance of all members over a batch of updates.

        By default the batch is routed through the spec's shared
        :class:`~repro.core.plan.HashPlan`: index rows come from the
        plan's element-row cache when the elements repeat, and fresh rows
        are hashed/scattered via the plan's measured hybrid — stacked
        single-pass evaluation for small miss sets, per-sketch passes for
        large ones (see ``STACKED_HASH_MAX``/``STACKED_SCATTER_MAX`` in
        :mod:`repro.core.plan`) — bit-identical to the per-sketch path.
        (PR 1 measured and rejected a stacked variant; re-measured here,
        that verdict holds for *scatter at large batch sizes* — ``r``
        cache-resident per-sketch histograms still beat one giant
        ``bincount`` — but not for hashing small batches or for repeated
        elements, where the cache skips hashing entirely.  The plan keeps
        whichever side wins at each size.)

        ``plan`` selects the maintenance path: ``"auto"`` (the spec's
        shared plan), an explicit :class:`~repro.core.plan.HashPlan`
        (must be built from this spec's coins), or ``None`` for the
        legacy per-sketch path.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
        resolved = self._resolve_plan(plan)
        if resolved is None:
            for index in range(self.spec.num_sketches):
                self.sketch(index).update_batch(elements, counts)
            self._mark_all_dirty()
            return
        # Plan path: mirror the per-sketch checks before touching state.
        if int(elements.max()) >= self.spec.shape.domain_size:
            raise DomainError("batch contains elements outside [0, M)")
        if counts is not None and counts.shape != elements.shape:
            raise ValueError("counts must align with elements")
        parts = resolved.scatter_parts(elements)
        if parts is None:
            # Scan flood: the plan declined (see HashPlan.scatter_parts) —
            # classic per-sketch maintenance is faster than materialising
            # unreusable index rows.
            for index in range(self.spec.num_sketches):
                self.sketch(index).update_batch(elements, counts)
            self._mark_all_dirty()
            return
        self._scatter_parts(resolved, parts, counts)

    def ingest_batch(self, elements, counts=None, *, plan: HashPlan | str | None = "auto") -> int:
        """Maintenance over a batch, aggregated by linearity first.

        Because the sketch is a linear function of the element-frequency
        vector, any window of updates collapses to one net delta per
        distinct element before it ever touches a counter.  This path
        groups the batch with ``np.unique``, drops elements whose deltas
        cancel (insert/delete churn), and feeds each uniform-delta group
        through the unweighted scatter fast path — typically 1.5–3× the
        throughput of :meth:`update_batch` on realistic (skewed, churning)
        update streams, and bit-identical to it in the final counters.

        On the plan path the index rows for the *whole* unique set are
        produced by one :meth:`~repro.core.plan.HashPlan.scatter_parts`
        call before the groups split — one dense-table gather and one
        (larger, therefore better-amortised) hash pass over the tail
        instead of one per delta group — and each group scatters its
        :meth:`~repro.core.plan.ScatterParts.subset`.  Rows are a pure
        function of the element, so the result stays bit-identical to
        routing each group through :meth:`update_batch`; when no plan is
        active (or the plan declines a scan flood), the groups fall back
        to exactly that.

        Returns the number of distinct elements actually maintained (the
        post-aggregation batch size, used by ingest metrics).
        """
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return 0
        if counts is None:
            unique, net = np.unique(elements, return_counts=True)
            net = net.astype(np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            unique, inverse = np.unique(elements, return_inverse=True)
            if np.abs(counts, dtype=np.float64).sum() < float(1 << 52):
                net = np.rint(
                    np.bincount(
                        inverse,
                        weights=counts.astype(np.float64),
                        minlength=unique.size,
                    )
                ).astype(np.int64)
            else:
                net = np.zeros(unique.size, dtype=np.int64)
                segmented_add(net, inverse, counts)
            nonzero = net != 0
            unique, net = unique[nonzero], net[nonzero]
        if unique.size == 0:
            return 0
        resolved = self._resolve_plan(plan)
        # Split by delta so uniform groups (the bulk of real traffic: unit
        # insertions, unit deletions) hit the unweighted histogram path.
        ones = net == 1
        parts = None
        if resolved is not None:
            # ``unique`` is sorted, so the domain check is O(1).
            if int(unique[-1]) >= self.spec.shape.domain_size:
                raise DomainError("batch contains elements outside [0, M)")
            parts = resolved.scatter_parts(unique)
        if parts is not None:
            if ones.all():
                self._scatter_parts(resolved, parts, None)
                return int(unique.size)
            minus = net == -1
            mixed = ~(ones | minus)
            if ones.any():
                self._scatter_parts(resolved, parts.subset(ones), None)
            if minus.any():
                self._scatter_parts(resolved, parts.subset(minus), net[minus])
            if mixed.any():
                self._scatter_parts(resolved, parts.subset(mixed), net[mixed])
            return int(unique.size)
        if ones.all():
            self.update_batch(unique, plan=resolved)
            return int(unique.size)
        minus = net == -1
        mixed = ~(ones | minus)
        if ones.any():
            self.update_batch(unique[ones], plan=resolved)
        if minus.any():
            self.update_batch(unique[minus], net[minus], plan=resolved)
        if mixed.any():
            self.update_batch(unique[mixed], net[mixed], plan=resolved)
        return int(unique.size)

    # -- level-wise aggregates used by the estimators ----------------------

    def level_totals(self) -> np.ndarray:
        """Bucket item totals, shape ``(r, levels)``.

        The first second-level pair's sum counts every item in the bucket
        (each update touches exactly one of its two cells), so this is the
        per-bucket emptiness/total statistic of the paper.  Maintained
        incrementally as updates apply (exact int64 arithmetic,
        bit-identical to re-deriving from the counter slab); returned as
        a read-only view — copy before mutating.
        """
        view = self._level_totals.view()
        view.flags.writeable = False
        return view

    def level_nonempty_counts(self) -> np.ndarray:
        """Per-level count of members with a non-empty bucket: ``(levels,)``.

        Exactly ``(level_totals() > 0).sum(axis=0)`` — what the union
        estimator's level scan consults for a single stream — derived
        lazily from the maintained totals and memoised per
        :attr:`version`.  Read-only view.
        """
        if self._nonempty_version != self._version:
            self._nonempty_counts = (self._level_totals > 0).sum(axis=0)
            self._nonempty_version = self._version
        view = self._nonempty_counts.view()
        view.flags.writeable = False
        return view

    def level_slab(self, level: int) -> np.ndarray:
        """All members' counters at one first-level bucket: ``(r, s, 2)``."""
        return self.counters[:, level]

    # -- change tracking (query-plan layer) --------------------------------

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumped whenever counters change."""
        return self._version

    def level_dirty_versions(self) -> np.ndarray:
        """Per first-level bucket index: the :attr:`version` at which that
        level last changed (read-only view, shape ``(levels,)``)."""
        view = self._level_versions.view()
        view.flags.writeable = False
        return view

    def levels_clean_since(
        self, version: int, prefix_level: int, start: int = 0, stop: int = 0
    ) -> bool:
        """Whether no *consulted* level changed after ``version``.

        Consulted levels are the union-scan prefix ``0..prefix_level``
        plus the witness window ``[start, stop)``; a query-cache entry
        that recorded its families' versions and these bounds revalidates
        by calling this instead of recomputing (see
        :meth:`repro.streams.engine.StreamEngine.query`).
        """
        if self._version <= version:
            return True  # nothing at all changed since: trivially clean
        # Plain-Python snapshots of the dirty versions (rebuilt lazily per
        # mutation) keep the hot revalidation path free of per-call numpy
        # overhead: the prefix check is one list index, the witness-window
        # check a max over a handful of ints.
        if self._dirty_list_version != self._version:
            self._dirty_list = self._level_versions.tolist()
            self._dirty_prefix_max = np.maximum.accumulate(
                self._level_versions
            ).tolist()
            self._dirty_list_version = self._version
        if prefix_level >= 0 and self._dirty_prefix_max[prefix_level] > version:
            return False
        if stop > start and max(self._dirty_list[start:stop]) > version:
            return False
        return True

    def refresh_aggregates(self) -> None:
        """Rebuild the incremental aggregates from the raw counters.

        For callers that mutate :attr:`counters` directly (or through a
        :meth:`sketch` view) instead of the family's maintenance methods.
        Bumps :attr:`version` and marks every level dirty.
        """
        self._mark_all_dirty()

    def _mark_all_dirty(self) -> None:
        """Counters changed in an untracked way: recompute totals (cheap,
        ``O(r·levels)``), bump the version, dirty every level."""
        self._version += 1
        np.add(
            self.counters[:, :, 0, 0],
            self.counters[:, :, 0, 1],
            out=self._level_totals,
        )
        self._level_versions[:] = self._version

    def _note_keys(self, keys: np.ndarray, counts) -> None:
        """Fold one scattered batch into the incremental aggregates.

        ``keys`` is the ``(n, r)`` bucket-key matrix (values
        ``sketch·levels + level``) of the rows just scattered — from
        :meth:`~repro.core.plan.HashPlan.bucket_keys` or its local-layout
        twin; the ``j = 0`` column per sketch is the cell whose counter
        pair forms the bucket total, so the totals delta is one
        ``bincount`` over the keys — the same exact int64 accumulation
        the counters saw, an ``s``-th of the scatter work.
        """
        num_levels = self.spec.shape.num_levels
        flat_totals = self._level_totals.reshape(-1)
        if counts is None:
            flat_totals += np.bincount(keys.ravel(), minlength=flat_totals.size)
        else:
            first = int(counts[0])
            if bool((counts == first).all()):
                binned = np.bincount(keys.ravel(), minlength=flat_totals.size)
                flat_totals += binned * first
            else:
                segmented_add(
                    flat_totals,
                    keys.ravel(),
                    np.repeat(counts, self.spec.num_sketches),
                )
        self._version += 1
        touched = np.zeros(num_levels, dtype=bool)
        touched[(keys % num_levels).ravel()] = True
        self._level_versions[touched] = self._version

    # -- algebra ------------------------------------------------------------

    def merged_with(self, other: "SketchFamily") -> "SketchFamily":
        """Family summarising the multiset sum of the two streams."""
        self._check_compatible(other)
        return SketchFamily(self.spec, self.counters + other.counters)

    def diff_from(self, baseline: "SketchFamily") -> "SketchFamily":
        """Family whose counters are ``self - baseline`` (a delta synopsis).

        By linearity this is exactly the sketch of the updates applied
        *after* ``baseline`` was snapshotted: adding the delta back into
        the baseline (``merge_in_place``) reproduces ``self`` bit for
        bit.  This is the export primitive of the distributed delta
        protocol (:mod:`repro.streams.distributed`): sites ship counter
        diffs since their last acknowledged export instead of cumulative
        counters, which makes re-collection idempotent.  Delta counters
        may be negative; that is fine — every combining operation is
        plain int64 addition.
        """
        self._check_compatible(baseline)
        return SketchFamily(self.spec, self.counters - baseline.counters)

    def is_zero(self) -> bool:
        """True iff every counter is exactly zero (an empty delta).

        Stricter than :meth:`is_empty`, which checks the *net* item
        count and can be zero for a non-trivial delta (e.g. one
        insertion and one deletion of different elements).
        """
        return not self.counters.any()

    # -- sparse cell access (delta wire format v2) --------------------------

    def nonzero_cells(self) -> tuple[np.ndarray, np.ndarray]:
        """The non-zero counter cells as ``(flat_indices, values)``.

        Flat indices are row-major positions into the ``(r, levels, s,
        2)`` slab, strictly increasing; values are the ``int64``
        counters there.  This is the sparse side of the delta codec: a
        delta from :meth:`diff_from` touches only the cells its window's
        elements hashed to, so for small exports this pair is orders of
        magnitude smaller than the slab.
        """
        flat = self.counters.reshape(-1)
        indices = np.flatnonzero(flat)
        return indices, flat[indices].copy()

    @classmethod
    def from_cells(
        cls, indices: np.ndarray, values: np.ndarray, spec: SketchSpec
    ) -> "SketchFamily":
        """Rebuild a family from :meth:`nonzero_cells` output.

        Byte-exact inverse: scattering the cells into a zero slab
        reproduces the original counters bit for bit.
        """
        cells = spec.counter_cells
        indices = np.asarray(indices, dtype=np.int64)
        # min/max, not first/last: codec-produced input is sorted, but
        # this is a public classmethod and an unsorted caller must not
        # wrap a negative middle index into the wrong cell.
        if indices.size and not (
            0 <= int(indices.min()) and int(indices.max()) < cells
        ):
            raise IncompatibleSketchesError(
                f"cell indices exceed the {cells}-cell counter slab"
            )
        counters = np.zeros(cells, dtype=np.int64)
        counters[indices] = np.asarray(values, dtype=np.int64)
        return cls(
            spec, counters.reshape((spec.num_sketches,) + spec.shape.counter_shape)
        )

    def add_cells(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Fold sparse delta cells into this family in place.

        The coordinator's sparse fast path: equivalent to
        ``merge_in_place(SketchFamily.from_cells(indices, values,
        spec))`` — same exact int64 addition, bit-identical result —
        without materialising the dense intermediate slab.  ``indices``
        must be unique (strictly increasing, as the codec guarantees).
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if indices.size and not (
            0 <= int(indices.min()) and int(indices.max()) < self.spec.counter_cells
        ):
            raise IncompatibleSketchesError(
                "cell indices exceed this family's counter slab"
            )
        counters = self.counters
        if counters.flags.c_contiguous:
            counters.reshape(-1)[indices] += values
        else:
            flat = np.ascontiguousarray(counters).reshape(-1)
            flat[indices] += values
            np.copyto(counters, flat.reshape(counters.shape))
        self._mark_all_dirty()

    def merge_in_place(self, other: "SketchFamily") -> None:
        """Fold another family's counters into this one (coordinator combine).

        Zero-copy: the addition happens directly in this family's counter
        storage, no intermediate array is allocated.  The incremental
        level aggregates are refreshed (all levels marked dirty — the
        incoming counters can change second-level structure even where
        their bucket totals are zero).
        """
        self._check_compatible(other)
        np.add(self.counters, other.counters, out=self.counters)
        self._mark_all_dirty()

    def subtract_in_place(self, other: "SketchFamily") -> None:
        """Remove another family's counters from this one (window expiry).

        The inverse of :meth:`merge_in_place`: by linearity, subtracting
        the synopsis of a cohort of updates is bit-identical to having
        applied each update's inverse individually.  This is the expiry
        primitive of the window ring (:mod:`repro.streams.windows`) —
        ageing out a time bucket is one vectorised subtraction of its
        synopsis from the in-window total.
        """
        self._check_compatible(other)
        np.subtract(self.counters, other.counters, out=self.counters)
        self._mark_all_dirty()

    def copy(self) -> "SketchFamily":
        """A deep copy with independent counter storage."""
        return SketchFamily(self.spec, self.counters.copy())

    def is_empty(self) -> bool:
        """True iff the summarised multiset has no items (net)."""
        return int(self.counters[:, :, 0, :].sum()) == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SketchFamily):
            return NotImplemented
        return self.spec == other.spec and np.array_equal(self.counters, other.counters)

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("SketchFamily is mutable and unhashable")

    # -- serialisation -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Counter payload (the spec — shared coins — travels separately)."""
        return self.counters.astype("<i8").tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes, spec: SketchSpec) -> "SketchFamily":
        shape = (spec.num_sketches,) + spec.shape.counter_shape
        expected = int(np.prod(shape)) * 8
        if len(payload) != expected:
            raise IncompatibleSketchesError(
                f"payload is {len(payload)} bytes, expected {expected}"
            )
        counters = np.frombuffer(payload, dtype="<i8").astype(np.int64)
        # Constructing with the counters (rather than assigning them after
        # the fact) builds the incremental level aggregates from the
        # restored state — checkpoint restore starts with fresh, correct
        # aggregates at version 0.
        return cls(spec, counters.reshape(shape).copy())

    # -- internals ------------------------------------------------------------

    def plan(self) -> HashPlan:
        """The spec's shared :class:`~repro.core.plan.HashPlan`.

        One object per distinct spec process-wide (see
        :func:`repro.core.plan.plan_for`), so its element-row cache is
        warmed by *every* family of the spec.
        """
        return plan_for(self.spec)

    def _resolve_plan(self, plan: HashPlan | str | None) -> HashPlan | None:
        if plan is None:
            return None
        if isinstance(plan, str):
            if plan != "auto":
                raise ValueError("plan must be 'auto', a HashPlan, or None")
            return plan_for(self.spec)
        if (
            plan.num_sketches != self.spec.num_sketches
            or plan.shape != self.spec.shape
        ):
            raise IncompatibleSketchesError(
                "hash plan does not match this family's spec"
            )
        # Structure matching is not enough: a plan built from different
        # coins would scatter into the wrong cells silently.  Compare
        # against the spec's canonical plan (memoised, so this is three
        # small array comparisons, not a hash re-draw).
        canonical = plan_for(self.spec)
        if plan is not canonical and not plan.same_coins_as(canonical):
            raise IncompatibleSketchesError(
                "hash plan was built from different coins than this spec"
            )
        return plan

    def _scatter_parts(self, plan: HashPlan, parts, counts) -> None:
        """Scatter a plan-produced dense/tail split into the counters.

        The dense part stays in the table's per-sketch-local layout all
        the way into ``bincount`` (no globalising pass); the tail keeps
        the global int32 layout.  Accumulation rules per part mirror
        :meth:`repro.core.sketch.TwoLevelHashSketch.update_batch` exactly
        (unweighted histogram for uniform deltas, the guarded
        ``scatter_add`` otherwise), and int64 addition commutes, so the
        result is bit-identical to the per-sketch path in every case.
        """
        with plan.time_scatter():
            counters = self.counters
            contiguous = counters.flags.c_contiguous
            target = (
                counters.reshape(-1)
                if contiguous
                else np.ascontiguousarray(counters).reshape(-1)
            )
            covered = parts.covered
            dense_counts = tail_counts = None
            if counts is not None:
                if covered is None:
                    tail_counts = counts
                else:
                    dense_counts = counts[covered]
                    tail_counts = counts[~covered]
            dense_rows = parts.dense_rows
            if dense_rows is not None and dense_rows.shape[0]:
                self._accumulate(plan, target, dense_rows, dense_counts, True)
                self._note_keys(plan.bucket_keys_local(dense_rows), dense_counts)
            tail_rows = parts.tail_rows
            if tail_rows is not None and tail_rows.shape[0]:
                self._accumulate(plan, target, tail_rows, tail_counts, False)
                self._note_keys(plan.bucket_keys(tail_rows), tail_counts)
            if not contiguous:
                np.copyto(counters, target.reshape(counters.shape))

    @staticmethod
    def _accumulate(
        plan: HashPlan, target: np.ndarray, rows: np.ndarray, counts, local: bool
    ) -> None:
        """Add one part's rows into flat ``target`` (exact int64)."""
        if counts is None:
            scale = 1
        else:
            first = int(counts[0])
            if not bool((counts == first).all()):
                flat = plan.globalize_rows(rows) if local else rows
                scatter_add(
                    target, flat.reshape(-1), np.repeat(counts, plan.row_width)
                )
                return
            scale = first
        if local:
            plan.scatter_local(target, rows, scale=scale)
        else:
            plan.scatter(target, rows, scale=scale)

    def _check_compatible(self, other: "SketchFamily") -> None:
        if self.spec != other.spec:
            raise IncompatibleSketchesError("families built from different specs")


def sum_families(
    families: Sequence[SketchFamily], out: SketchFamily | None = None
) -> SketchFamily:
    """Family summarising the multiset sum of several same-spec streams.

    By linearity this is *the* synopsis of the combined stream — the merge
    step of both the distributed coordinator and the sharded ingest layer
    (:mod:`repro.streams.sharded`).  Counters are accumulated with
    ``np.add(..., out=...)`` into one target array: pass ``out`` (a family
    whose storage is reused and overwritten) to make the merge allocation
    free on the query hot path.
    """
    spec = check_same_coins(*families)
    if out is None:
        out = SketchFamily(spec, families[0].counters.copy())
    else:
        if out.spec != spec:
            raise IncompatibleSketchesError(
                "output family does not follow the merged families' spec"
            )
        np.copyto(out.counters, families[0].counters)
    for family in families[1:]:
        np.add(out.counters, family.counters, out=out.counters)
    # The counters were written directly into out's storage; rebuild its
    # incremental level aggregates so the query-plan layer stays exact.
    out.refresh_aggregates()
    return out


def check_same_coins(*families: SketchFamily) -> SketchSpec:
    """Ensure all families share one spec; return it.

    Raises :class:`IncompatibleSketchesError` otherwise.  Used by every
    estimator entry point before any counters are touched.
    """
    if not families:
        raise ValueError("need at least one family")
    spec = families[0].spec
    for family in families[1:]:
        if family.spec != spec:
            raise IncompatibleSketchesError(
                "estimators require families built from the same SketchSpec"
            )
    return spec
