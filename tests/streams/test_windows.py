"""Unit tests for sliding-window deletion drivers."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.family import SketchFamily, SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.checkpoint import checkpoint_engine, restore_engine
from repro.streams.engine import StreamEngine
from repro.streams.exact import ExactStreamStore
from repro.streams.updates import Update
from repro.streams.windows import (
    SlidingWindowDriver,
    WindowRing,
    check_window_config,
)

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=64, shape=SHAPE, seed=21)


class TestWindowMechanics:
    def test_updates_forwarded(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        assert store.distinct_set("A") == {1}

    def test_expiry_deletes(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.observe(Update("A", 2, 1), at=5.0)
        expired = driver.advance_to(10.0)
        assert expired == 1
        assert store.distinct_set("A") == {2}
        assert driver.in_window_count == 1

    def test_exclusive_expiry_bound(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        assert driver.advance_to(9.999) == 0
        assert driver.advance_to(10.0) == 1

    def test_time_must_not_go_backwards(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore())
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=4.0)
        with pytest.raises(ValueError):
            driver.advance_to(1.0)

    def test_multiple_sinks(self):
        store = ExactStreamStore()
        engine = StreamEngine(SPEC)
        driver = SlidingWindowDriver(10.0, engine, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.advance_to(20.0)
        engine.flush()
        assert store.distinct_count("A") == 0
        assert engine.family("A").is_empty()

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDriver(0.0, ExactStreamStore())
        with pytest.raises(ValueError):
            SlidingWindowDriver(1.0)
        with pytest.raises(TypeError):
            SlidingWindowDriver(1.0, object())


class TestWindowedSketchSemantics:
    def test_windowed_sketch_equals_in_window_build(self):
        """After expiry, the engine's sketch must be identical to a fresh
        sketch over only the in-window elements — the whole point of
        deletion-invariance."""
        rng = np.random.default_rng(800)
        elements = rng.choice(2**20, size=600, replace=False)
        engine = StreamEngine(SPEC)
        driver = SlidingWindowDriver(100.0, engine)
        for tick, element in enumerate(elements):
            driver.observe(Update("A", int(element), 1), at=float(tick))
        # Clock is now 599; window [500, 599] keeps the last 100 ticks.
        driver.advance_to(599.0)
        engine.flush()

        fresh = SPEC.build()
        fresh.update_batch(elements[-100:])
        assert engine.family("A") == fresh

    def test_windowed_cardinality_query(self):
        rng = np.random.default_rng(801)
        elements = rng.choice(2**20, size=2000, replace=False)
        engine = StreamEngine(
            SketchSpec(num_sketches=128, shape=SHAPE, seed=3)
        )
        exact = ExactStreamStore()
        driver = SlidingWindowDriver(500.0, engine, exact)
        for tick, element in enumerate(elements):
            driver.observe(Update("A", int(element), 1), at=float(tick))
        estimate = engine.query_union(["A"], 0.2)
        truth = exact.distinct_count("A")
        assert truth == 500
        assert abs(estimate.value - truth) / truth < 0.4


class TestClockPolicy:
    """The non-monotonic timestamp policy: ``"raise"`` (default) rejects
    regressions, ``"clamp"`` folds them onto the watermark, and NaN is
    rejected unconditionally under both."""

    def test_raise_is_the_default(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore())
        assert driver.clock_policy == "raise"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowDriver(10.0, ExactStreamStore(), clock_policy="ignore")

    @pytest.mark.parametrize("policy", ["raise", "clamp"])
    def test_nan_always_rejected(self, policy):
        """NaN slips past every ordering check (``NaN < clock`` is
        False) and would freeze expiry forever, so even the lenient
        policy refuses it — and the driver state stays untouched."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy=policy)
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=float("nan"))
        with pytest.raises(ValueError):
            driver.advance_to(float("nan"))
        assert driver.clock == 5.0
        assert driver.in_window_count == 1
        assert store.distinct_count("A") == 1

    def test_clamp_stamps_regressions_at_watermark(self):
        """A late update under ``"clamp"`` enters the window as if it
        arrived exactly at the watermark: it is forwarded, and it
        expires with the watermark's cohort, not before."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy="clamp")
        driver.observe(Update("A", 1, 1), at=5.0)
        driver.observe(Update("A", 2, 1), at=3.0)  # late: stamped at 5.0
        assert driver.clock == 5.0
        assert store.distinct_count("A") == 2
        # expiry at 13.0 would have dropped a 3.0-stamped update
        # (3.0 + 10 <= 13) but not a clamped one (5.0 + 10 > 13)
        assert driver.advance_to(13.0) == 0
        assert store.distinct_count("A") == 2
        assert driver.advance_to(15.0) == 2  # both cohorts expire together
        assert store.distinct_count("A") == 0

    def test_clamp_backwards_advance_is_noop(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore(), clock_policy="clamp")
        driver.observe(Update("A", 1, 1), at=8.0)
        assert driver.advance_to(2.0) == 0
        assert driver.clock == 8.0
        assert driver.in_window_count == 1

    def test_raise_leaves_state_intact_after_rejection(self):
        """A rejected regression must not half-apply: clock, window
        contents, and sink state all stay as they were."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy="raise")
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=4.0)
        assert driver.clock == 5.0
        assert driver.in_window_count == 1
        assert store.distinct_count("A") == 1
        driver.observe(Update("A", 2, 1), at=5.0)  # equal time is fine
        assert store.distinct_count("A") == 2


# ---------------------------------------------------------------------------
# observe_many contract (batch ingest)
# ---------------------------------------------------------------------------


class _RecordingSink:
    """Scalar + batch sink that logs every call for handler-resolution tests."""

    def __init__(self, batch_method=None):
        self.scalar_calls: list[Update] = []
        self.batch_calls: list[list[Update]] = []
        if batch_method is not None:
            setattr(self, batch_method, self._batch)

    def process(self, update):
        self.scalar_calls.append(update)

    def _batch(self, updates):
        self.batch_calls.append(list(updates))


class TestObserveManyContract:
    def test_returns_observed_count(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        pairs = [(Update("A", e, 1), float(e)) for e in range(1, 6)]
        assert driver.observe_many(pairs) == 5
        assert driver.observe_many([]) == 0
        assert store.distinct_count("A") == 5

    def test_engine_observe_many_returns_count(self):
        engine = StreamEngine(SPEC, window_span=10.0, bucket_width=2.0)
        pairs = [(Update("A", e, 1), float(e)) for e in range(1, 8)]
        assert engine.observe_many(pairs) == 7
        engine.flush()
        direct = SketchFamily(SPEC)
        direct.ingest_batch(list(range(1, 8)))
        assert np.array_equal(engine.window_family("A").counters, direct.counters)

    def test_partial_emit_on_mid_iterable_error(self):
        """A bad timestamp mid-batch raises, but everything before it has
        already been forwarded — the return value is lost, so callers who
        need exactly-once accounting must pre-validate timestamps."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy="raise")

        def pairs():
            yield Update("A", 1, 1), 1.0
            yield Update("A", 2, 1), 2.0
            yield Update("A", 3, 1), 1.5  # regression: raises here

        with pytest.raises(ValueError):
            driver.observe_many(pairs())
        # the prefix before the bad pair is fully applied, the rest is not
        assert store.distinct_set("A") == {1, 2}
        assert driver.clock == 2.0
        assert driver.in_window_count == 2
        # the stream can resume at the watermark
        assert driver.observe_many([(Update("A", 3, 1), 2.0)]) == 1
        assert store.distinct_set("A") == {1, 2, 3}


# ---------------------------------------------------------------------------
# batch expiry path (one inverse batch per advance_to)
# ---------------------------------------------------------------------------


class TestBatchExpiryPath:
    def test_one_batch_per_advance(self):
        sink = _RecordingSink("process_many")
        driver = SlidingWindowDriver(10.0, sink)
        for e in range(4):
            driver.observe(Update("A", e, 1), at=float(e))
        sink.batch_calls.clear()
        sink.scalar_calls.clear()
        # one advance expires all four cohorts -> exactly one batch call
        assert driver.advance_to(20.0) == 4
        assert len(sink.batch_calls) == 1
        assert sink.scalar_calls == []
        inverses = sink.batch_calls[0]
        assert sorted(u.element for u in inverses) == [0, 1, 2, 3]
        assert all(u.delta == -1 for u in inverses)

    def test_apply_many_fallback(self):
        sink = _RecordingSink("apply_many")
        driver = SlidingWindowDriver(10.0, sink)
        driver.observe(Update("A", 7, 2), at=0.0)
        driver.advance_to(10.0)
        assert len(sink.batch_calls) == 1
        assert sink.batch_calls[0] == [Update("A", 7, -2)]

    def test_scalar_only_sink_still_works(self):
        sink = _RecordingSink()
        driver = SlidingWindowDriver(10.0, sink)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.observe(Update("A", 2, 1), at=1.0)
        sink.scalar_calls.clear()
        driver.advance_to(30.0)
        assert sink.batch_calls == []
        assert sorted(u.element for u in sink.scalar_calls) == [1, 2]

    def test_batch_expiry_bit_identical_to_scalar(self):
        """The batched expiry path must leave the sketch counters exactly
        where per-update scalar emission leaves them (linearity)."""
        batched = StreamEngine(SPEC)

        class _ScalarOnly:
            def __init__(self, engine):
                self._engine = engine

            def process(self, update):
                self._engine.process(update)

        scalar_engine = StreamEngine(SPEC)
        drv_batched = SlidingWindowDriver(10.0, batched)
        drv_scalar = SlidingWindowDriver(10.0, _ScalarOnly(scalar_engine))
        rng = random.Random(5)
        for step in range(200):
            at = step * 0.25
            update = Update("AB"[step % 2], rng.randrange(1000), 1)
            drv_batched.observe(update, at=at)
            drv_scalar.observe(update, at=at)
        for now in (50.0, 55.0, 60.0, 75.0):
            assert drv_batched.advance_to(now) == drv_scalar.advance_to(now)
            batched.flush()
            scalar_engine.flush()
            for name in "AB":
                assert np.array_equal(
                    batched.family(name).counters,
                    scalar_engine.family(name).counters,
                )


# ---------------------------------------------------------------------------
# WindowRing unit tests
# ---------------------------------------------------------------------------


def _ring_ingest(ring: WindowRing, elements, at: float) -> None:
    for element in elements:
        ring.observe(element, 1, at)
    ring.flush()


class TestWindowRing:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            check_window_config(0.0, None)
        with pytest.raises(ValueError):
            check_window_config(10.0, -1.0)
        with pytest.raises(ValueError):
            check_window_config(10.0, 3.0)  # width must divide span
        with pytest.raises(ValueError):
            check_window_config(10.0, 20.0)  # width must not exceed span
        span, width, buckets = check_window_config(10.0, None)
        assert (span, width, buckets) == (10.0, 10.0, 1)
        assert check_window_config(10.0, 2.5) == (10.0, 2.5, 4)

    def test_boundary_timestamp_lands_in_closing_bucket(self):
        """Buckets are left-open/right-closed: t == b*w belongs to bucket b."""
        ring = WindowRing(SPEC, 10.0, 2.0)
        _ring_ingest(ring, [1], at=2.0)  # exactly on the bucket-1 boundary
        assert ring.current_bucket == 1
        _ring_ingest(ring, [2], at=2.5)  # just past it -> bucket 2
        assert ring.current_bucket == 2
        assert ring.live_buckets() == [1, 2]

    def test_whole_bucket_expiry_at_boundaries(self):
        ring = WindowRing(SPEC, 10.0, 2.0)  # 5 buckets
        _ring_ingest(ring, [1], at=1.0)  # bucket 1 covers (0, 2]
        _ring_ingest(ring, [2], at=3.0)  # bucket 2 covers (2, 4]
        # bucket 1 is fully expired once clock reaches (1 + 5) * 2 = 12
        assert ring.advance_to(11.999) == 0
        assert ring.live_buckets() == [1, 2]
        assert ring.advance_to(12.0) == 1
        assert ring.live_buckets() == [2]
        assert ring.buckets_expired == 1

    def test_window_total_is_sum_of_live_buckets(self):
        ring = WindowRing(SPEC, 10.0, 2.0)
        rng = random.Random(11)
        for step in range(60):
            _ring_ingest(ring, [rng.randrange(500)], at=step * 0.5)
        expected = SketchFamily(SPEC)
        for index in ring.live_buckets():
            expected.merge_in_place(ring.bucket(index))
        assert np.array_equal(ring.family().counters, expected.counters)

    def test_sub_window_families(self):
        ring = WindowRing(SPEC, 10.0, 2.0)
        _ring_ingest(ring, [1], at=1.0)
        _ring_ingest(ring, [2], at=9.0)
        ring.advance_to(10.0)
        # window=2 at clock 10.0 covers (8, 10] -> only element 2
        sub = ring.family(2.0)
        lone = SketchFamily(SPEC)
        lone.ingest_batch([2], [1])
        assert np.array_equal(sub.counters, lone.counters)
        # full-span request is the maintained total, not a rebuild
        assert ring.family(10.0) is ring.family()

    def test_sub_window_memoised_until_buckets_change(self):
        ring = WindowRing(SPEC, 10.0, 2.0)
        _ring_ingest(ring, [1, 2, 3], at=1.0)
        _ring_ingest(ring, [4], at=3.0)
        first = ring.family(4.0)
        version = first.version
        rebuilds = ring.subwindow_rebuilds
        assert ring.family(4.0) is first  # cached, no rebuild
        assert ring.subwindow_rebuilds == rebuilds
        _ring_ingest(ring, [5], at=3.5)  # newest bucket changed
        # rebuilt in place: same object, bumped version
        assert ring.family(4.0) is first
        assert first.version != version
        assert ring.subwindow_rebuilds == rebuilds + 1

    def test_check_window_rejects_bad_requests(self):
        ring = WindowRing(SPEC, 10.0, 2.0)
        with pytest.raises(ValueError):
            ring.check_window(0.0)
        with pytest.raises(ValueError):
            ring.check_window(3.0)  # not a multiple of the bucket width
        with pytest.raises(ValueError):
            ring.check_window(12.0)  # wider than the span
        assert ring.check_window(6.0) == 3

    def test_merge_at_routes_into_covering_bucket(self):
        ring = WindowRing(SPEC, 10.0, 2.0)
        _ring_ingest(ring, [1], at=5.0)
        delta = SketchFamily(SPEC)
        delta.ingest_batch([9], [1])
        # late delta stamped inside a live bucket folds in
        assert ring.merge_at(delta, 3.0) is True
        assert 2 in ring.live_buckets()
        direct = SketchFamily(SPEC)
        direct.ingest_batch([9], [1])
        assert np.array_equal(ring.bucket(2).counters, direct.counters)
        # a delta stamped before the live span is reported unplaceable
        ring.advance_to(40.0)
        assert ring.merge_at(delta, 3.0) is False

    def test_empty_bucket_expiry_keeps_total_untouched(self):
        """Rotating out a bucket that never saw data must not rewrite the
        window total (no zero-subtraction churn)."""
        ring = WindowRing(SPEC, 10.0, 2.0)
        _ring_ingest(ring, [1], at=1.0)
        ring.advance_to(9.0)  # buckets 2..4 never materialise
        version = ring.family().version
        # clock 12.0 expires bucket 1 (non-empty): total must change
        ring.advance_to(12.0)
        assert ring.buckets_expired == 1
        assert ring.empty_expiries == 0
        assert ring.family().version != version
        version = ring.family().version
        # advancing across the now-empty span expires nothing materialised
        before_empty = ring.empty_expiries
        ring.advance_to(30.0)
        assert ring.family().version == version
        assert ring.live_buckets() == []
        assert ring.empty_expiries == before_empty  # nothing materialised

    def test_rotation_touches_only_newest_and_expiring_buckets(self):
        """The acceptance property, asserted via version counters: a tick
        that rotates the ring leaves every middle bucket's synopsis object
        and version untouched."""
        ring = WindowRing(SPEC, 10.0, 2.0)
        for bucket in range(1, 6):  # fill buckets 1..5
            _ring_ingest(ring, [bucket * 10], at=bucket * 2.0)
        middle = {
            index: (ring.bucket(index), ring.bucket(index).version)
            for index in ring.live_buckets()[1:]  # all but the expiring one
        }
        # tick: expire bucket 1, open bucket 6
        _ring_ingest(ring, [60], at=12.0)
        assert ring.live_buckets() == [2, 3, 4, 5, 6]
        for index, (family, version) in middle.items():
            assert ring.bucket(index) is family
            assert family.version == version


# ---------------------------------------------------------------------------
# ring vs. driver equivalence (the windowed-engine acceptance suite)
# ---------------------------------------------------------------------------

SPAN = 12.0
WIDTH = 3.0
EXPR = "(A & B) - C"


def _random_feed(rng, steps, dt=0.4):
    """A reproducible (update, timestamp) trace over streams A/B/C with
    occasional deletions of previously inserted elements."""
    feed = []
    live = []
    for step in range(1, steps + 1):
        at = round(step * dt, 6)
        stream = "ABC"[rng.randrange(3)]
        if live and rng.random() < 0.15:
            name, element = live.pop(rng.randrange(len(live)))
            feed.append((Update(name, element, -1), at))
        else:
            element = rng.randrange(4000)
            live.append((stream, element))
            feed.append((Update(stream, element, 1), at))
    return feed


class TestRingDriverEquivalence:
    def _pair(self, clock_policy="raise"):
        windowed = StreamEngine(
            SPEC, window_span=SPAN, bucket_width=WIDTH, clock_policy=clock_policy
        )
        flat = StreamEngine(SPEC)
        driver = SlidingWindowDriver(SPAN, flat, clock_policy=clock_policy)
        return windowed, flat, driver

    def _assert_windows_identical(self, windowed, flat, streams="ABC"):
        windowed.flush()
        flat.flush()
        for name in streams:
            assert np.array_equal(
                windowed.window_family(name).counters,
                flat.family(name).counters,
            )

    def test_bit_identical_at_every_bucket_boundary(self):
        """The headline equivalence: a ring-windowed engine and a
        driver-fed flat engine agree bit-for-bit at each bucket boundary,
        so windowed query results are identical too."""
        windowed, flat, driver = self._pair()
        feed = _random_feed(random.Random(101), steps=240)
        position = 0
        for boundary in range(1, 9):
            now = boundary * WIDTH
            while position < len(feed) and feed[position][1] <= now:
                update, at = feed[position]
                windowed.observe(update, at)
                driver.observe(update, at=at)
                position += 1
            windowed.advance_to(now)
            driver.advance_to(now)
            self._assert_windows_identical(windowed, flat)
            lhs = windowed.query(EXPR, 0.2, window=SPAN)
            rhs = flat.query(EXPR, 0.2)
            assert lhs.value == rhs.value
            assert lhs.union_estimate == rhs.union_estimate

    def test_duplicate_timestamps_on_the_boundary(self):
        """Many updates stamped exactly at a bucket boundary all belong to
        the closing bucket and expire together on both paths."""
        windowed, flat, driver = self._pair()
        for element in range(40):
            update = Update("A", element, 1)
            windowed.observe(update, at=WIDTH)  # all exactly at t = 3.0
            driver.observe(update, at=WIDTH)
        self._assert_windows_identical(windowed, flat, streams="A")
        # the cohort expires exactly at 3.0 + SPAN on both paths
        just_before = WIDTH + SPAN - 0.001
        windowed.advance_to(just_before)
        driver.advance_to(just_before)
        self._assert_windows_identical(windowed, flat, streams="A")
        assert not windowed.window_family("A").is_zero()
        windowed.advance_to(WIDTH + SPAN)
        driver.advance_to(WIDTH + SPAN)
        self._assert_windows_identical(windowed, flat, streams="A")
        assert windowed.window_family("A").is_zero()

    def test_clamp_policy_skew_stays_equivalent(self):
        """Under ``"clamp"`` both paths stamp regressions at the watermark,
        so out-of-order feeds stay bit-identical at boundaries."""
        windowed, flat, driver = self._pair(clock_policy="clamp")
        rng = random.Random(102)
        feed = _random_feed(rng, steps=160)
        # shuffle chunks locally to create regressions
        for start in range(0, len(feed), 8):
            chunk = feed[start : start + 8]
            rng.shuffle(chunk)
            for update, at in chunk:
                windowed.observe(update, at)
                driver.observe(update, at=at)
        for boundary in range(1, 12):
            now = boundary * WIDTH
            if now < windowed.window_clock:
                continue
            windowed.advance_to(now)
            driver.advance_to(now)
            self._assert_windows_identical(windowed, flat)

    def test_empty_bucket_rotation_stays_equivalent(self):
        """A quiet stretch (several buckets with no updates) expires
        nothing on either path and leaves them identical; a bucket whose
        updates net-cancel is materialised-but-zero and its expiry is
        counted but rewrites nothing."""
        windowed, flat, driver = self._pair()
        for update, at in [
            (Update("A", 1, 1), 1.0),
            (Update("A", 99, 1), 4.0),  # bucket 2 ...
            (Update("A", 99, -1), 4.5),  # ... nets to zero
            (Update("B", 2, 1), 5.0),
        ]:
            windowed.observe(update, at)
            driver.observe(update, at=at)
        windowed.flush()
        total_version = windowed.window_family("A").version
        # advance across a long quiet stretch; bucket 1 (non-empty)
        # expires at 1*W + SPAN = 15, bucket 2 (zero) at 18 — compare at
        # boundaries only, where whole-bucket and per-update expiry agree
        windowed.advance_to(15.0)
        driver.advance_to(15.0)
        self._assert_windows_identical(windowed, flat)
        assert windowed.window_family("A").version != total_version
        version_after_real_expiry = windowed.window_family("A").version
        empty_before = windowed.window_stats().empty_expiries
        windowed.advance_to(30.0)
        driver.advance_to(30.0)
        self._assert_windows_identical(windowed, flat)
        # the zero bucket's expiry was counted but touched no counters
        assert windowed.window_stats().empty_expiries == empty_before + 1
        assert windowed.window_family("A").version == version_after_real_expiry

    def test_checkpoint_restore_mid_window(self, tmp_path):
        """Checkpointing between boundaries and restoring yields an engine
        that continues bit-identically — against both the original and the
        driver-fed flat truth."""
        windowed, flat, driver = self._pair()
        feed = _random_feed(random.Random(103), steps=200)
        cut = 120
        for update, at in feed[:cut]:
            windowed.observe(update, at)
            driver.observe(update, at=at)
        windowed.flush()
        checkpoint_engine(windowed, tmp_path)
        restored = restore_engine(tmp_path)
        assert restored.is_windowed
        assert restored.window_span == SPAN
        assert restored.bucket_width == WIDTH
        assert restored.window_clock == windowed.window_clock
        for name in "ABC":
            assert np.array_equal(
                restored.window_family(name).counters,
                windowed.window_family(name).counters,
            )
        for update, at in feed[cut:]:
            windowed.observe(update, at)
            restored.observe(update, at)
            driver.observe(update, at=at)
        last = feed[-1][1]
        boundary = (int(last // WIDTH) + 1) * WIDTH
        for engine in (windowed, restored):
            engine.advance_to(boundary)
        driver.advance_to(boundary)
        self._assert_windows_identical(windowed, flat)
        self._assert_windows_identical(restored, flat)
        assert (
            restored.query(EXPR, 0.2, window=SPAN).value
            == flat.query(EXPR, 0.2).value
        )


# ---------------------------------------------------------------------------
# windowed engine surface: validation, caching, stats
# ---------------------------------------------------------------------------


class TestEngineWindowing:
    def test_unwindowed_engine_rejects_window_surface(self):
        engine = StreamEngine(SPEC)
        assert not engine.is_windowed
        with pytest.raises(ValueError):
            engine.observe(Update("A", 1, 1), at=0.0)
        with pytest.raises(ValueError):
            engine.advance_to(1.0)
        with pytest.raises(ValueError):
            engine.query("A & B", 0.2, window=5.0)
        with pytest.raises(ValueError):
            engine.query_union(["A"], 0.2, window=5.0)

    def test_window_config_validation(self):
        with pytest.raises(ValueError):
            StreamEngine(SPEC, bucket_width=2.0)  # width without span
        with pytest.raises(ValueError):
            StreamEngine(SPEC, window_span=10.0, bucket_width=3.0)
        engine = StreamEngine(SPEC, window_span=10.0, bucket_width=2.0)
        with pytest.raises(ValueError):
            engine.query("A & B", 0.2, window=3.0)  # not a bucket multiple
        with pytest.raises(ValueError):
            engine.query("A & B", 0.2, window=20.0)  # wider than the span

    def test_windowed_queries_counted(self):
        engine = StreamEngine(SPEC, window_span=10.0, bucket_width=2.0)
        engine.observe(Update("A", 1, 1), at=1.0)
        engine.query("A & B", 0.2, window=10.0)
        engine.query("A & B", 0.2)  # all-time: not a window query
        assert engine.query_stats().window_queries == 1

    def test_empty_rotation_revalidates_cached_estimates(self):
        """A rotation tick that expires only empty (or zero) buckets must
        not invalidate cached windowed estimates: the second query is a
        cache hit, not a recompute — O(streams) revalidation."""
        engine = StreamEngine(SPEC, window_span=SPAN, bucket_width=WIDTH)
        # bucket 1: a net-zero churn pair; bucket 4: real data
        engine.observe(Update("A", 7, 1), at=1.0)
        engine.observe(Update("A", 7, -1), at=1.5)
        engine.observe(Update("A", 8, 1), at=10.0)
        engine.observe(Update("B", 9, 1), at=10.5)
        first = engine.query("A & B", 0.2, window=SPAN)
        base = engine.query_stats()
        # bucket 1 (zero) expires at 1*W + SPAN = 15; bucket 4 survives
        assert engine.advance_to(16.0) == 0 or True  # advance, count aside
        assert engine.window_stats().empty_expiries >= 1
        second = engine.query("A & B", 0.2, window=SPAN)
        stats = engine.query_stats()
        assert stats.cache_hits == base.cache_hits + 1
        assert stats.recomputes == base.recomputes
        assert second.value == first.value
        # a *non-empty* expiry invalidates: bucket 4 dies at 4*W + SPAN = 24
        engine.advance_to(24.0)
        engine.query("A & B", 0.2, window=SPAN)
        assert engine.query_stats().recomputes == base.recomputes + 1
