"""Unit tests for the experiment metrics."""

from __future__ import annotations

import math

import pytest

from repro.experiments.metrics import relative_error, trimmed_mean_error


class TestRelativeError:
    def test_exact(self):
        assert relative_error(100.0, 100.0) == 0.0

    def test_overestimate(self):
        assert relative_error(120.0, 100.0) == pytest.approx(0.2)

    def test_underestimate(self):
        assert relative_error(80.0, 100.0) == pytest.approx(0.2)

    def test_zero_truth_zero_estimate(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_truth_nonzero_estimate(self):
        assert math.isinf(relative_error(5.0, 0.0))

    def test_total_miss(self):
        assert relative_error(0.0, 50.0) == 1.0


class TestTrimmedMean:
    def test_no_trim_needed(self):
        assert trimmed_mean_error([0.1, 0.2, 0.3], trim_fraction=0.0) == pytest.approx(0.2)

    def test_trims_worst(self):
        values = [0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 9.0, 9.0, 9.0]
        assert trimmed_mean_error(values, trim_fraction=0.3) == pytest.approx(0.1)

    def test_default_fraction_is_paper_value(self):
        values = [0.0] * 7 + [1.0] * 3
        assert trimmed_mean_error(values) == 0.0

    def test_single_observation(self):
        assert trimmed_mean_error([0.42]) == pytest.approx(0.42)

    def test_always_keeps_one(self):
        assert trimmed_mean_error([0.5], trim_fraction=0.99) == pytest.approx(0.5)

    def test_order_does_not_matter(self):
        a = trimmed_mean_error([0.3, 0.1, 0.9, 0.2])
        b = trimmed_mean_error([0.9, 0.2, 0.3, 0.1])
        assert a == b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean_error([])

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean_error([0.1], trim_fraction=1.0)
        with pytest.raises(ValueError):
            trimmed_mean_error([0.1], trim_fraction=-0.1)

    def test_infinite_errors_trimmed_away(self):
        values = [0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, math.inf, math.inf, math.inf]
        assert trimmed_mean_error(values) == pytest.approx(0.1)
