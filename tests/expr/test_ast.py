"""Unit tests for the set-expression AST."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    StreamRef,
    UnionExpr,
    streams,
)


class TestStreamRef:
    def test_valid_names(self):
        for name in ("A", "router_1", "B2", "x"):
            assert StreamRef(name).name == name

    def test_invalid_names(self):
        for name in ("", "a b", "a-b", "a|b", "(x)"):
            with pytest.raises(ValueError):
                StreamRef(name)

    def test_streams(self):
        assert StreamRef("A").streams() == frozenset({"A"})

    def test_evaluate(self):
        assert StreamRef("A").evaluate({"A": {1, 2}}) == {1, 2}

    def test_contains(self):
        ref = StreamRef("A")
        assert ref.contains({"A": True})
        assert not ref.contains({"A": False})
        assert not ref.contains({})

    def test_to_text(self):
        assert StreamRef("A").to_text() == "A"


class TestOperators:
    def test_sugar_builds_nodes(self):
        A, B = streams("A", "B")
        assert isinstance(A | B, UnionExpr)
        assert isinstance(A & B, IntersectionExpr)
        assert isinstance(A - B, DifferenceExpr)

    def test_sugar_rejects_non_expressions(self):
        A = StreamRef("A")
        with pytest.raises(TypeError):
            A | {1, 2}
        with pytest.raises(TypeError):
            A & "B"
        with pytest.raises(TypeError):
            A - 5

    def test_streams_accumulate(self):
        A, B, C = streams("A", "B", "C")
        assert ((A - B) & C).streams() == frozenset({"A", "B", "C"})

    def test_str_is_text(self):
        A, B = streams("A", "B")
        assert str(A | B) == "(A | B)"


class TestEvaluate:
    SETS = {"A": {1, 2, 3, 4}, "B": {3, 4, 5}, "C": {1, 4, 5, 6}}

    def test_union(self):
        A, B = streams("A", "B")
        assert (A | B).evaluate(self.SETS) == {1, 2, 3, 4, 5}

    def test_intersection(self):
        A, B = streams("A", "B")
        assert (A & B).evaluate(self.SETS) == {3, 4}

    def test_difference(self):
        A, B = streams("A", "B")
        assert (A - B).evaluate(self.SETS) == {1, 2}

    def test_compound(self):
        A, B, C = streams("A", "B", "C")
        expression = (A - B) & C
        assert expression.evaluate(self.SETS) == {1}

    def test_evaluation_matches_contains_on_every_element(self):
        A, B, C = streams("A", "B", "C")
        expression = (A & C) - (B | C) | (A - B)
        universe = set().union(*self.SETS.values())
        via_eval = expression.evaluate(self.SETS)
        via_contains = {
            element
            for element in universe
            if expression.contains(
                {name: element in members for name, members in self.SETS.items()}
            )
        }
        assert via_eval == via_contains


class TestBooleanMask:
    def test_matches_membership_semantics(self):
        A, B, C = streams("A", "B", "C")
        expression = (A - B) & C
        masks = {
            "A": np.array([True, True, False, True]),
            "B": np.array([False, True, False, False]),
            "C": np.array([True, True, True, False]),
        }
        result = expression.boolean_mask(masks)
        assert list(result) == [True, False, False, False]

    def test_union_is_or(self):
        A, B = streams("A", "B")
        masks = {"A": np.array([True, False]), "B": np.array([False, False])}
        assert list((A | B).boolean_mask(masks)) == [True, False]

    def test_mask_shape_preserved(self):
        A, B = streams("A", "B")
        masks = {"A": np.zeros(7, dtype=bool), "B": np.ones(7, dtype=bool)}
        assert (A & B).boolean_mask(masks).shape == (7,)


class TestStructure:
    def test_subexpressions_depth_first(self):
        A, B, C = streams("A", "B", "C")
        expression = (A - B) & C
        nodes = list(expression.subexpressions())
        assert len(nodes) == 5
        assert nodes[0] is expression

    def test_frozen(self):
        A = StreamRef("A")
        with pytest.raises(AttributeError):
            A.name = "B"

    def test_equality_is_structural(self):
        A1, B1 = streams("A", "B")
        A2, B2 = streams("A", "B")
        assert (A1 | B1) == (A2 | B2)
        assert (A1 | B1) != (A1 & B1)
        assert (A1 - B1) != (B1 - A1)

    def test_to_text_nested(self):
        A, B, C = streams("A", "B", "C")
        assert ((A - B) & C).to_text() == "((A - B) & C)"
