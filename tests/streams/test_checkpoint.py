"""Unit tests for engine checkpointing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import IncompatibleSketchesError
from repro.streams.checkpoint import (
    CheckpointError,
    checkpoint_engine,
    checkpoint_sharded_engine,
    read_checkpoint_extra,
    restore_engine,
    restore_sharded_engine,
)
from repro.streams.engine import StreamEngine
from repro.streams.sharded import ShardedEngine
from repro.streams.updates import Update, insertions

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=64, shape=SHAPE, seed=5)


def loaded_engine() -> StreamEngine:
    engine = StreamEngine(SPEC)
    rng = np.random.default_rng(500)
    for stream in ("A", "B"):
        for element in rng.integers(0, 2**20, size=500):
            engine.process(Update(stream, int(element), 1))
    return engine


class TestRoundTrip:
    def test_restored_state_identical(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        assert restored.spec == engine.spec
        assert restored.stream_names() == engine.stream_names()
        for name in engine.stream_names():
            assert restored.family(name) == engine.family(name)
        assert restored.updates_processed == engine.updates_processed

    def test_restored_engine_answers_identically(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        original = engine.query("A & B", 0.2)
        after = restored.query("A & B", 0.2)
        assert after.value == pytest.approx(original.value)

    def test_restored_engine_accepts_new_updates(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        restored.process(Update("A", 7, 1))
        restored.flush()

        engine.process(Update("A", 7, 1))
        engine.flush()
        assert restored.family("A") == engine.family("A")

    def test_unflushed_buffers_are_included(self, tmp_path):
        engine = StreamEngine(SPEC, batch_size=10_000)
        engine.process_many(insertions("A", range(100)))
        checkpoint_engine(engine, tmp_path / "ckpt")  # flushes internally
        restored = restore_engine(tmp_path / "ckpt")
        assert not restored.family("A").is_empty()

    def test_overwrite_existing_checkpoint(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        engine.process(Update("A", 3, 1))
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        assert restored.family("A") == engine.family("A")


class TestExtraMetadata:
    def test_extra_round_trips(self, tmp_path):
        engine = loaded_engine()
        extra = {"site_sequences": {"edge-1": 4, "edge-2": 7}}
        checkpoint_engine(engine, tmp_path, extra=extra)
        assert read_checkpoint_extra(tmp_path) == extra
        # The checkpoint stays restorable by consumers that ignore extra.
        restored = restore_engine(tmp_path)
        assert restored.stream_names() == engine.stream_names()

    def test_no_extra_reads_empty(self, tmp_path):
        checkpoint_engine(loaded_engine(), tmp_path)
        assert read_checkpoint_extra(tmp_path) == {}

    def test_malformed_extra_rejected(self, tmp_path):
        checkpoint_engine(loaded_engine(), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["extra"] = ["not", "a", "mapping"]
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError):
            read_checkpoint_extra(tmp_path)


class TestFailureModes:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError):
            restore_engine(tmp_path / "nope")

    def test_corrupt_manifest(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            restore_engine(directory)

    def test_wrong_format_version(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        manifest_path = tmp_path / "ckpt" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="99"):
            restore_engine(tmp_path / "ckpt")

    def test_missing_sketch_payload(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        (tmp_path / "ckpt" / "streams" / "A.sketch").unlink()
        with pytest.raises(CheckpointError, match="A"):
            restore_engine(tmp_path / "ckpt")


class TestStreamNameEscaping:
    """Regression: stream names are user data; ``../x``, ``a/b``, NULs and
    friends used to be spliced into payload paths verbatim, corrupting or
    escaping the checkpoint directory."""

    NASTY = ["../escape", "a/b/c", "nul\x00byte", ".", "..", "", "ünïcode"]

    def nasty_engine(self) -> StreamEngine:
        engine = StreamEngine(SPEC)
        for index, name in enumerate(self.NASTY):
            for element in range(20 + index):
                engine.process(Update(name, element, 1))
        return engine

    def test_round_trip_preserves_names_and_counters(self, tmp_path):
        engine = self.nasty_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        assert restored.stream_names() == engine.stream_names()
        for name in self.NASTY:
            assert restored.family(name) == engine.family(name)

    def test_no_file_escapes_the_checkpoint_directory(self, tmp_path):
        root = tmp_path / "nest" / "ckpt"
        checkpoint_engine(self.nasty_engine(), root)
        streams_dir = root / "streams"
        written = list((tmp_path).rglob("*.sketch"))
        assert written  # payloads exist ...
        assert all(path.parent == streams_dir for path in written)
        # ... every one directly inside streams/, nothing nested or above.

    def test_payload_file_names_are_flat_and_safe(self, tmp_path):
        checkpoint_engine(self.nasty_engine(), tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert set(manifest["stream_files"]) == set(self.NASTY)
        for filename in manifest["stream_files"].values():
            assert "/" not in filename and "\x00" not in filename
            assert not filename.startswith(".")

    def test_format_v1_checkpoints_still_restore(self, tmp_path):
        engine = loaded_engine()
        directory = tmp_path / "v1"
        (directory / "streams").mkdir(parents=True)
        for name in engine.stream_names():
            payload = engine.family(name).to_bytes()
            (directory / "streams" / f"{name}.sketch").write_bytes(payload)
        (directory / "manifest.json").write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "spec": SPEC.to_json_dict(),
                    "streams": engine.stream_names(),
                    "updates_processed": engine.updates_processed,
                }
            )
        )
        restored = restore_engine(directory)
        for name in engine.stream_names():
            assert restored.family(name) == engine.family(name)
        assert restored.updates_processed == engine.updates_processed


class TestShardedCheckpoint:
    def sharded_engine(self) -> ShardedEngine:
        engine = ShardedEngine(SPEC, num_shards=3, executor="serial", batch_size=64)
        rng = np.random.default_rng(77)
        for _ in range(3000):
            stream = ("A", "b/b")[int(rng.integers(0, 2))]
            delta = 1 if rng.random() < 0.8 else -1
            engine.process(Update(stream, int(rng.integers(0, 2**20)), delta))
        return engine

    def test_round_trip_preserves_per_shard_state(self, tmp_path):
        with self.sharded_engine() as engine:
            checkpoint_sharded_engine(engine, tmp_path / "ckpt")
            with restore_sharded_engine(
                tmp_path / "ckpt", executor="serial"
            ) as restored:
                assert restored.num_shards == engine.num_shards
                assert restored.updates_processed == engine.updates_processed
                for name in engine.stream_names():
                    before = dict(engine._iter_shard_families(name))
                    after = dict(restored._iter_shard_families(name))
                    assert before.keys() == after.keys()
                    for shard in before:
                        assert np.array_equal(
                            before[shard].counters, after[shard].counters
                        )

    def test_restored_engine_continues_identically(self, tmp_path):
        with self.sharded_engine() as engine:
            checkpoint_sharded_engine(engine, tmp_path / "ckpt")
            with restore_sharded_engine(
                tmp_path / "ckpt", executor="serial"
            ) as restored:
                for sink in (engine, restored):
                    sink.process(Update("A", 12345, 1))
                    sink.flush()
                assert np.array_equal(
                    restored.family("A").counters, engine.family("A").counters
                )

    def test_flat_restore_merges_by_linearity(self, tmp_path):
        with self.sharded_engine() as engine:
            checkpoint_sharded_engine(engine, tmp_path / "ckpt")
            flat = restore_engine(tmp_path / "ckpt")
            for name in engine.stream_names():
                assert np.array_equal(
                    flat.family(name).counters, engine.family(name).counters
                )

    def test_restore_with_different_shard_count(self, tmp_path):
        with self.sharded_engine() as engine:
            checkpoint_sharded_engine(engine, tmp_path / "ckpt")
            with restore_sharded_engine(
                tmp_path / "ckpt", num_shards=5, executor="serial"
            ) as resharded:
                for name in engine.stream_names():
                    assert np.array_equal(
                        resharded.family(name).counters,
                        engine.family(name).counters,
                    )


class TestAdoptFamily:
    def test_adopt_requires_matching_spec(self):
        engine = StreamEngine(SPEC)
        other = SketchSpec(num_sketches=32, shape=SHAPE, seed=5).build()
        with pytest.raises(IncompatibleSketchesError):
            engine.adopt_family("A", other)

    def test_adopt_replaces_buffered_updates(self):
        engine = StreamEngine(SPEC, batch_size=10_000)
        engine.process(Update("A", 1, 1))
        replacement = SPEC.build()
        engine.adopt_family("A", replacement)
        assert engine.family("A").is_empty()

    def test_mark_replayed_validation(self):
        engine = StreamEngine(SPEC)
        with pytest.raises(ValueError):
            engine.mark_replayed(-1)
