"""Hash-function substrate for 2-level hash sketches.

Exposes vectorised Mersenne-prime field arithmetic, ``t``-wise independent
polynomial hash families, pairwise binary hash banks, and least-significant
set-bit helpers.
"""

from repro.hashing.families import (
    BinaryHashBank,
    PairwiseBinaryHash,
    PolynomialHash,
    random_binary_bank,
    random_polynomial_hash,
)
from repro.hashing.lsb import NUM_LEVELS, lsb, lsb_array
from repro.hashing.mersenne import MERSENNE_P, addmod, horner_mod, mod_p, mulmod
from repro.hashing.tabulation import TabulationHash, random_tabulation_hash

__all__ = [
    "BinaryHashBank",
    "PairwiseBinaryHash",
    "PolynomialHash",
    "random_binary_bank",
    "random_polynomial_hash",
    "NUM_LEVELS",
    "lsb",
    "lsb_array",
    "MERSENNE_P",
    "addmod",
    "horner_mod",
    "mod_p",
    "mulmod",
    "TabulationHash",
    "random_tabulation_hash",
]
