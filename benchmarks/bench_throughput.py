"""Maintenance-cost bench: update-processing throughput.

The paper claims "small processing time per update": each update touches
``s`` counters in each of ``r`` sketches after one first-level and ``s``
second-level hash evaluations.  This bench measures updates/second for
the scalar path (one tuple at a time, the streaming API) and the
vectorised batch path, across family sizes.

Run directly (``python benchmarks/bench_throughput.py --shards 4``) it
becomes an end-to-end ingest benchmark: a realistic skewed
insert/delete workload is driven through a single-threaded
:class:`~repro.streams.engine.StreamEngine` — on the legacy per-sketch
path, through the shared :class:`~repro.core.plan.HashPlan`, and with a
dense precomputed-scatter table over the hot domain prefix
(``dense_domain``, see :class:`~repro.core.plan.DenseScatterTable`) —
and through a :class:`~repro.streams.sharded.ShardedEngine`.  All
results are verified bit-identical, the plan's hash-vs-scatter time
breakdown, element-row cache hit rate, and dense gather share are
captured, and the measurements land in ``BENCH_throughput.json``.

``--smoke`` runs a scaled-down version as a CI gate: it exits non-zero
if any pass diverges bit-wise, if the dense path is slower than the LRU
plan on the smoke workload, or if the sharded plan stats report more
busy hash time than the run's elapsed time.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape

SHAPE = SketchShape(domain_bits=24, num_second_level=16, independence=8)


def _batch(num_sketches: int, elements: np.ndarray) -> None:
    family = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=1).build()
    family.update_batch(elements)


def _scalar(num_sketches: int, elements: np.ndarray) -> None:
    family = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=1).build()
    for element in elements:
        family.update(int(element), 1)


def test_batch_update_throughput_r64(benchmark):
    rng = np.random.default_rng(1)
    elements = rng.integers(0, 2**24, size=4096, dtype=np.uint64)
    benchmark.pedantic(_batch, args=(64, elements), rounds=3, iterations=1)
    per_update = benchmark.stats["mean"] / elements.size
    print(f"\nbatch path, r=64: {1 / per_update:,.0f} updates/s")


def test_batch_update_throughput_r256(benchmark):
    rng = np.random.default_rng(2)
    elements = rng.integers(0, 2**24, size=4096, dtype=np.uint64)
    benchmark.pedantic(_batch, args=(256, elements), rounds=3, iterations=1)
    per_update = benchmark.stats["mean"] / elements.size
    print(f"\nbatch path, r=256: {1 / per_update:,.0f} updates/s")


def test_scalar_update_throughput_r64(benchmark):
    rng = np.random.default_rng(3)
    elements = rng.integers(0, 2**24, size=256, dtype=np.uint64)
    benchmark.pedantic(_scalar, args=(64, elements), rounds=3, iterations=1)
    per_update = benchmark.stats["mean"] / elements.size
    print(f"\nscalar path, r=64: {1 / per_update:,.0f} updates/s")


def test_estimation_latency(benchmark):
    """Query-time cost: estimators touch only per-level aggregates, so
    answering should be orders of magnitude cheaper than maintenance."""
    from repro.core.intersection import estimate_intersection

    rng = np.random.default_rng(4)
    spec = SketchSpec(num_sketches=256, shape=SHAPE, seed=5)
    family_a, family_b = spec.build(), spec.build()
    pool = rng.choice(2**24, size=4096, replace=False).astype(np.uint64)
    family_a.update_batch(pool[:3000])
    family_b.update_batch(pool[1500:])

    benchmark.pedantic(
        estimate_intersection, args=(family_a, family_b, 0.1), rounds=20, iterations=1
    )
    print(f"\nintersection query latency: {benchmark.stats['mean'] * 1e3:.2f} ms")


# -- standalone sharded-ingest benchmark -------------------------------------


def _skewed_workload(num_updates: int, num_streams: int, seed: int):
    """A realistic continuous-update workload: Zipf-skewed elements over
    several streams with insert/delete churn (hot elements repeat and
    partially cancel — exactly the traffic the linearity aggregation and
    the sharded engine are built for)."""
    from repro.streams.updates import Update

    rng = np.random.default_rng(seed)
    domain = SHAPE.domain_size
    elements = (rng.zipf(1.2, size=num_updates) - 1) % domain
    deltas = np.where(rng.random(num_updates) < 0.7, 1, -1)
    streams = rng.integers(0, num_streams, size=num_updates)
    names = [f"S{i}" for i in range(num_streams)]
    return [
        Update(names[int(s)], int(e), int(d))
        for s, e, d in zip(streams, elements, deltas)
    ]


def run_ingest_benchmark(
    num_updates: int = 200_000,
    num_streams: int = 3,
    num_sketches: int = 64,
    shards: int = 4,
    executor: str = "threads",
    seed: int = 7,
    dense_domain: int = 1 << 18,
    dense_batch_size: int = 65536,
    reps: int = 3,
    out: str | pathlib.Path = "BENCH_throughput.json",
) -> dict:
    """Legacy vs plan-based vs dense vs sharded ingest on one workload.

    Four passes over the same updates: a single engine on the legacy
    per-sketch path (``use_plan=False``), a single engine through the
    shared :class:`~repro.core.plan.HashPlan` (the default), a single
    engine with a dense precomputed-scatter table over the first
    ``dense_domain`` elements (Zipf traffic concentrates there; the
    table build runs once, outside the timed window, and is reported
    separately), and the sharded engine (plan-based).  Each pass runs
    ``reps`` times on a fresh engine (cold caches, zeroed stats every
    rep) and records the best wall-clock — the standard noise shield on
    shared machines; reported plan stats describe one rep exactly.
    Returns (and writes to ``out``) a JSON report with all four
    throughputs, the speedups, cache/time/dense breakdowns, per-shard
    stats, and bit-identical equivalence checks of the counters.
    """
    from repro.core.plan import plan_for
    from repro.streams.engine import StreamEngine
    from repro.streams.sharded import ShardedEngine

    if reps < 1:
        raise ValueError("reps must be positive")
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    updates = _skewed_workload(num_updates, num_streams, seed)
    shared_plan = plan_for(spec)

    def timed_pass(make_engine):
        """Best-of-``reps`` cold runs; returns (last_engine, best_s)."""
        best = None
        engine = None
        for _ in range(reps):
            if engine is not None and hasattr(engine, "close"):
                engine.close()
            shared_plan.clear_cache()
            shared_plan.reset_stats()
            engine = make_engine()
            started = time.perf_counter()
            engine.process_many(updates)
            engine.flush()
            seconds = time.perf_counter() - started
            best = seconds if best is None else min(best, seconds)
        return engine, best

    legacy, legacy_seconds = timed_pass(
        lambda: StreamEngine(spec, use_plan=False)
    )

    # Cold plan: every rep starts from an empty element-row cache and
    # zeroed stats, so the hit rate / time breakdown describe exactly
    # one cold run over the workload.
    baseline, baseline_seconds = timed_pass(lambda: StreamEngine(spec))
    plan_stats = baseline.plan_stats()
    plan_identical = all(
        np.array_equal(
            baseline.family(name).counters, legacy.family(name).counters
        )
        for name in legacy.stream_names()
    )

    # Dense pass: precompute scatter rows for the hot domain prefix, then
    # serve covered batches by pure gather.  The table build is a one-time
    # setup cost paid before the timed window opens.
    dense_table = shared_plan.ensure_dense_domain(dense_domain)
    dense_engine, dense_seconds = timed_pass(
        lambda: StreamEngine(
            spec, batch_size=dense_batch_size, dense_domain=dense_domain
        )
    )
    dense_stats = dense_engine.plan_stats()
    dense_identical = all(
        np.array_equal(
            dense_engine.family(name).counters, legacy.family(name).counters
        )
        for name in legacy.stream_names()
    )
    dense_report = {
        "seconds": dense_seconds,
        "updates_per_second": num_updates / dense_seconds,
        "dense_domain": dense_domain,
        "batch_size": dense_batch_size,
        "table_build_seconds": dense_table.build_seconds,
        "table_bytes": dense_table.nbytes,
        "dense_rate": dense_stats.dense_rate,
        "plan": dense_stats.to_json_dict(),
    }
    # Detach before the sharded pass: its per-shard sibling plans inherit
    # the canonical plan's dense table, and this benchmark wants the
    # sharded numbers to describe the plain LRU path.
    shared_plan.detach_dense()

    sharded, sharded_seconds = timed_pass(
        lambda: ShardedEngine(spec, num_shards=shards, executor=executor)
    )
    with sharded:
        identical = all(
            np.array_equal(
                sharded.family(name).counters, baseline.family(name).counters
            )
            for name in baseline.stream_names()
        )
        stats = sharded.stats()

    report = {
        "workload": {
            "updates": num_updates,
            "streams": num_streams,
            "num_sketches": num_sketches,
            "domain_bits": SHAPE.domain_bits,
            "distribution": "zipf(1.2), 30% deletions",
            "seed": seed,
        },
        "single_engine_legacy": {
            "seconds": legacy_seconds,
            "updates_per_second": num_updates / legacy_seconds,
        },
        "single_engine": {
            "seconds": baseline_seconds,
            "updates_per_second": num_updates / baseline_seconds,
            "plan": plan_stats.to_json_dict(),
            "plan_hit_rate": plan_stats.hit_rate,
        },
        "plan_speedup": legacy_seconds / baseline_seconds,
        "single_engine_dense": dense_report,
        "dense_speedup_vs_plan": baseline_seconds / dense_seconds,
        "dense_speedup_vs_legacy": legacy_seconds / dense_seconds,
        "sharded_engine": {
            "shards": shards,
            "executor": executor,
            "seconds": sharded_seconds,
            "updates_per_second": num_updates / sharded_seconds,
            "aggregation_ratio": stats.aggregation_ratio,
            "plan": None if stats.plan is None else stats.plan.to_json_dict(),
            "per_shard": [
                {
                    "shard": s.shard_id,
                    "routed": s.updates_routed,
                    "applied": s.updates_applied,
                    "flush_seconds": s.flush_seconds,
                }
                for s in stats.shards
            ],
        },
        "speedup": baseline_seconds / sharded_seconds,
        "counters_bit_identical": identical and plan_identical and dense_identical,
        "sharded_stats_within_wallclock": (
            stats.plan is None or stats.plan.hash_seconds <= sharded_seconds
        ),
    }
    pathlib.Path(out).write_text(json.dumps(report, indent=2))
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded vs single-engine ingest throughput"
    )
    parser.add_argument("--updates", type=int, default=200_000)
    parser.add_argument("--streams", type=int, default=3)
    parser.add_argument("--sketches", type=int, default=64)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--executor", choices=("serial", "threads", "processes"),
        default="threads",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--reps", type=int, default=3,
        help="cold repetitions per pass; the best wall-clock is recorded "
        "(shields the numbers from background-load noise)",
    )
    parser.add_argument(
        "--dense-domain", type=int, default=1 << 18,
        help="domain prefix covered by the precomputed scatter table",
    )
    parser.add_argument(
        "--dense-batch-size", type=int, default=262144,
        help="engine batch size for the dense pass (bigger batches keep "
        "the tail hashing on the fast per-sketch path)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="scaled-down CI gate: small workload, exit non-zero if any "
        "pass diverges bit-wise, the dense path is slower than the LRU "
        "plan, or sharded plan stats exceed elapsed wall time",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("BENCH_throughput.json")
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 20_000)
        args.dense_domain = min(args.dense_domain, 1 << 13)
        args.dense_batch_size = min(args.dense_batch_size, 8192)
        args.executor = "serial"
        args.shards = min(args.shards, 2)
        args.reps = min(args.reps, 1)
    report = run_ingest_benchmark(
        num_updates=args.updates,
        num_streams=args.streams,
        num_sketches=args.sketches,
        shards=args.shards,
        executor=args.executor,
        seed=args.seed,
        dense_domain=args.dense_domain,
        dense_batch_size=args.dense_batch_size,
        reps=args.reps,
        out=args.out,
    )
    legacy = report["single_engine_legacy"]["updates_per_second"]
    single = report["single_engine"]["updates_per_second"]
    dense = report["single_engine_dense"]["updates_per_second"]
    sharded = report["sharded_engine"]["updates_per_second"]
    plan = report["single_engine"]["plan"]
    dense_info = report["single_engine_dense"]
    print(f"single engine (legacy) : {legacy:>12,.0f} updates/s")
    print(
        f"single engine (plan)   : {single:>12,.0f} updates/s   "
        f"({report['plan_speedup']:.2f}x vs legacy)"
    )
    print(
        f"  plan: {report['single_engine']['plan_hit_rate']:.0%} row-cache "
        f"hit rate, hash {plan['hash_seconds']:.3f}s / "
        f"scatter {plan['scatter_seconds']:.3f}s, "
        f"{plan['bypasses']} bypasses"
    )
    print(
        f"single engine (dense)  : {dense:>12,.0f} updates/s   "
        f"({report['dense_speedup_vs_plan']:.2f}x vs plan, "
        f"{report['dense_speedup_vs_legacy']:.2f}x vs legacy)"
    )
    print(
        f"  dense: {dense_info['dense_rate']:.0%} table gathers over "
        f"domain [0, {dense_info['dense_domain']:,}), "
        f"{dense_info['table_bytes'] / 2**20:,.0f} MiB built in "
        f"{dense_info['table_build_seconds']:.2f}s (untimed)"
    )
    print(
        f"sharded ({report['sharded_engine']['shards']}x{args.executor:>9}): "
        f"{sharded:>12,.0f} updates/s"
    )
    print(
        f"speedup vs plan engine : {report['speedup']:.2f}x   "
        f"(aggregation x{report['sharded_engine']['aggregation_ratio']:.2f}, "
        f"counters identical: {report['counters_bit_identical']})"
    )
    print(f"report written to {args.out}")
    ok = report["counters_bit_identical"]
    if args.smoke:
        if report["dense_speedup_vs_plan"] < 1.0:
            print("SMOKE FAIL: dense path slower than the LRU plan")
            ok = False
        if not report["sharded_stats_within_wallclock"]:
            print("SMOKE FAIL: sharded plan hash_seconds exceeds elapsed")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
