"""Sweep runner regenerating the paper's figures.

For one :class:`~repro.experiments.config.ExperimentConfig` the runner
repeats, per target ratio and trial:

1. generate a controlled dataset with
   :func:`repro.datagen.controlled.generate_controlled`;
2. build one sketch family per stream at the *largest* swept sketch count;
3. for every swept count, estimate ``|E|`` on a
   :meth:`~repro.core.family.SketchFamily.prefix` view (valid because hash
   derivation is prefix-stable — the prefix behaves exactly like a family
   that was maintained at that size all along);
4. record the absolute relative error against the generator's exact
   ground truth.

Per (ratio, sketch count) cell the trial errors are combined with the
paper's 30%-trimmed mean.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, SketchSpec
from repro.core.sketch import SketchShape
from repro.datagen.controlled import generate_controlled
from repro.errors import EstimationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import relative_error, trimmed_mean_error
from repro.expr.parser import parse

__all__ = ["SweepResult", "SweepSeries", "run_sweep"]


@dataclass(frozen=True)
class SweepSeries:
    """One plotted line: errors vs sketch count at a fixed target size."""

    target_ratio: float
    target_size: int
    sketch_counts: tuple[int, ...]
    errors: tuple[float, ...]  # trimmed mean relative errors, one per count

    def error_at(self, sketch_count: int) -> float:
        """The series' trimmed error at one swept sketch count."""
        return self.errors[self.sketch_counts.index(sketch_count)]


@dataclass(frozen=True)
class SweepResult:
    """All series of one figure, plus run metadata."""

    config: ExperimentConfig
    series: tuple[SweepSeries, ...]
    elapsed_seconds: float

    def as_table(self) -> str:
        """ASCII rendering in the shape of the paper's figure."""
        header = ["sketches"] + [
            f"|E|={one.target_size}" for one in self.series
        ]
        widths = [max(10, len(column) + 2) for column in header]
        lines = [self.config.title]
        lines.append(
            "  ".join(column.rjust(width) for column, width in zip(header, widths))
        )
        for index, count in enumerate(self.config.sketch_counts):
            row = [str(count)]
            for one in self.series:
                row.append(f"{100.0 * one.errors[index]:.1f}%")
            lines.append(
                "  ".join(column.rjust(width) for column, width in zip(row, widths))
            )
        return "\n".join(lines)


def run_sweep(config: ExperimentConfig, progress=None) -> SweepResult:
    """Run one figure's sweep and return its series.

    ``progress`` (optional) is called with a short string after each
    completed trial — handy for the long paper-scale runs.
    """
    expression = parse(config.expression)
    shape = SketchShape(
        domain_bits=config.domain_bits,
        num_second_level=config.num_second_level,
        independence=config.independence,
    )
    started = time.perf_counter()

    series = []
    for ratio_index, ratio in enumerate(config.target_ratios):
        # errors[count_index][trial]
        errors: list[list[float]] = [[] for _ in config.sketch_counts]
        realised_sizes = []
        for trial in range(config.trials):
            rng = np.random.default_rng(
                [config.base_seed, ratio_index, trial]
            )
            dataset = generate_controlled(
                expression,
                config.union_size,
                ratio,
                rng,
                domain_bits=config.domain_bits,
            )
            truth = dataset.target_size
            realised_sizes.append(truth)

            spec = SketchSpec(
                num_sketches=config.max_sketches,
                shape=shape,
                seed=config.base_seed + 1000 * ratio_index + trial,
            )
            families: dict[str, SketchFamily] = {}
            for name in dataset.stream_names():
                family = spec.build()
                family.update_batch(dataset.elements[name])
                families[name] = family

            for count_index, count in enumerate(config.sketch_counts):
                prefixes = {
                    name: family.prefix(count) for name, family in families.items()
                }
                try:
                    estimate = estimate_expression(
                        expression,
                        prefixes,
                        config.epsilon,
                        pool_levels=config.pool_levels,
                    )
                    value = estimate.value
                except EstimationError:
                    # No valid atomic observation at this (small) sketch
                    # count: score it as a total miss rather than crashing
                    # the sweep.
                    value = 0.0
                errors[count_index].append(relative_error(value, truth))
            if progress is not None:
                progress(
                    f"{config.name}: ratio {ratio:g} trial {trial + 1}/"
                    f"{config.trials} done"
                )

        series.append(
            SweepSeries(
                target_ratio=ratio,
                target_size=int(np.mean(realised_sizes)),
                sketch_counts=tuple(config.sketch_counts),
                errors=tuple(
                    trimmed_mean_error(cell) for cell in errors
                ),
            )
        )

    elapsed = time.perf_counter() - started
    return SweepResult(config=config, series=tuple(series), elapsed_seconds=elapsed)
