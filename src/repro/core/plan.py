"""Shared hash plans: compute sketch scatter indices once, reuse everywhere.

The "stored coins" contract of the paper (Section 2) means every
:class:`~repro.core.family.SketchFamily` built from one
:class:`~repro.core.family.SketchSpec` uses *identical* hash functions —
and the 2-level hash sketch update is a pure function of the element:

    element  →  the ``r·s`` flat counter cells it touches in the stacked
                ``(r, levels, s, 2)`` tensor (one ``(level, j, bit)``
                triple per member sketch and second-level hash).

Only the *signed count* of an update varies between streams, batches, and
shards; the cell indices never do.  A :class:`HashPlan` exploits that
determinism three ways:

* **stacked evaluation** — all ``r`` first-level polynomials are evaluated
  as one ``(r, t)`` coefficient matrix through the 2-D form of
  :func:`repro.hashing.mersenne.horner_mod`, and all ``r·s`` second-level
  masks as one broadcast AND / popcount / XOR, so the Python-level loop
  runs ``t − 1`` times per batch instead of ``r`` times;
* **an element → index-row LRU** — a bounded cache of previously computed
  ``(r·s,)`` index rows, so the heavy hitters of a skewed stream skip
  hashing entirely on every batch after their first;
* **sharing by coins** — :func:`plan_for` memoises one plan per spec, so
  every family of the spec (every stream of a
  :class:`~repro.streams.engine.StreamEngine`, every shard of a
  :class:`~repro.streams.sharded.ShardedEngine`) reuses the same plan
  *and the same cache*: an element hashed for stream ``A`` is a cache hit
  for stream ``B``.

Exactness: the plan is a reorganisation of identical integer arithmetic,
not an approximation — rows are bit-identical to what the per-sketch
maintenance path computes, and scattering them with the same
int64-exact accumulation rules leaves the counters bit-identical too
(tested in ``tests/core/test_plan.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.sketch import SketchHashes, SketchShape
from repro.errors import IncompatibleSketchesError
from repro.hashing.lsb import lsb_array
from repro.hashing.mersenne import horner_mod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (family imports us)
    from repro.core.family import SketchSpec

__all__ = ["HashPlan", "HashPlanStats", "plan_for", "DEFAULT_CACHE_SIZE"]

#: Default bound on the element → index-row cache, in entries.  One entry
#: costs ``r·s`` int32 words (4 KiB at the library default ``r=64, s=16``),
#: so the default caps cache memory at ~32 MiB per spec.
DEFAULT_CACHE_SIZE = 8192

#: Initial row-buffer allocation; the buffer grows geometrically toward the
#: configured capacity, so small test plans never pay for a full cache.
_INITIAL_SLOTS = 256

#: Above this many uncached elements per batch, hashing switches from the
#: stacked (r, n) evaluation to a per-sketch fill: the stacked form's
#: (r, n)-shaped modular-arithmetic temporaries stop fitting cache and the
#: removed Python loop no longer pays for the extra memory traffic.
#: (Measured on the library default r=64, s=16: stacked wins ~3x at
#: n≈256, breaks even near n≈1500, loses ~1.7x by n≈4096.)
STACKED_HASH_MAX = 1536

#: Above this many total scatter indices (n·r·s), scattering switches from
#: one stacked ``bincount`` over the whole counter tensor to a per-sketch
#: loop whose (levels·s·2)-cell histograms stay cache-resident.
STACKED_SCATTER_MAX = 2 * 1024 * 1024


@dataclass(frozen=True)
class HashPlanStats:
    """Point-in-time counters of one :class:`HashPlan` (cheap snapshot).

    ``hits``/``misses`` count *element lookups* (one per element per batch,
    across all families sharing the plan); ``hash_seconds`` is wall-clock
    time inside stacked hashing (cache misses only), ``scatter_seconds``
    time inside counter scattering — together they are the hash-vs-scatter
    breakdown the throughput benchmark reports.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    entries: int = 0
    capacity: int = 0
    hash_seconds: float = 0.0
    scatter_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        """Total element lookups answered by the plan."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / lookups`` (0.0 before any lookup)."""
        if self.hits + self.misses == 0:
            return 0.0
        return self.hits / (self.hits + self.misses)

    def merged_with(self, other: "HashPlanStats") -> "HashPlanStats":
        """Counter-wise sum (roll-up across worker processes)."""
        return HashPlanStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            bypasses=self.bypasses + other.bypasses,
            entries=self.entries + other.entries,
            capacity=self.capacity + other.capacity,
            hash_seconds=self.hash_seconds + other.hash_seconds,
            scatter_seconds=self.scatter_seconds + other.scatter_seconds,
        )

    def to_json_dict(self) -> dict:
        """Plain-JSON form (benchmark reports, worker sync messages)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "entries": self.entries,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "hash_seconds": self.hash_seconds,
            "scatter_seconds": self.scatter_seconds,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "HashPlanStats":
        return cls(
            hits=int(payload["hits"]),
            misses=int(payload["misses"]),
            evictions=int(payload["evictions"]),
            bypasses=int(payload.get("bypasses", 0)),
            entries=int(payload["entries"]),
            capacity=int(payload["capacity"]),
            hash_seconds=float(payload["hash_seconds"]),
            scatter_seconds=float(payload["scatter_seconds"]),
        )


class HashPlan:
    """Precomputed, cached scatter-index producer for one set of coins.

    Parameters
    ----------
    hashes:
        The per-sketch hash functions, as returned by
        :meth:`repro.core.family.SketchSpec.hashes`.  All first-level
        polynomials must share a degree and all second-level banks the
        shape's ``s`` (guaranteed for spec-drawn hashes).
    shape:
        The sketch shape the indices target.
    cache_size:
        Bound on the element → index-row cache, in entries; ``0`` disables
        caching (every batch is hashed from scratch).
    """

    __slots__ = (
        "shape",
        "num_sketches",
        "row_width",
        "cache_size",
        "_coeffs",
        "_masks",
        "_flips",
        "_row_dtype",
        "_slots",
        "_rows",
        "_lock",
        "_hits",
        "_misses",
        "_evictions",
        "_bypasses",
        "_hash_seconds",
        "_scatter_seconds",
    )

    def __init__(
        self,
        hashes: Sequence[SketchHashes],
        shape: SketchShape,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if not hashes:
            raise ValueError("a hash plan needs at least one sketch's hashes")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        degrees = {h.first_level.independence for h in hashes}
        if len(degrees) != 1:
            raise IncompatibleSketchesError(
                "stacked evaluation needs equal-degree first-level hashes"
            )
        if any(h.second_level.size != shape.num_second_level for h in hashes):
            raise IncompatibleSketchesError(
                "second-level bank size does not match the sketch shape"
            )
        self.shape = shape
        self.num_sketches = len(hashes)
        self.row_width = self.num_sketches * shape.num_second_level
        self.cache_size = cache_size
        # (r, t) stacked polynomial coefficients, (r, s) masks/flips.
        self._coeffs = np.asarray(
            [h.first_level.coefficients for h in hashes], dtype=np.uint64
        )
        self._masks = np.asarray(
            [h.second_level.masks for h in hashes], dtype=np.uint64
        )
        self._flips = np.asarray(
            [h.second_level.flips for h in hashes], dtype=np.uint8
        )
        flat_cells = self.num_sketches * shape.num_levels * shape.num_second_level * 2
        self._row_dtype = np.int32 if flat_cells <= np.iinfo(np.int32).max else np.int64
        # element → slot (recency-ordered); slot → row in a growable buffer.
        # The lock guards the cache maps and counters: one plan is shared
        # across every family of a spec, including the sharded engine's
        # concurrent shard threads, and an eviction must not reuse a slot
        # another thread is still copying from.  Hashing itself (the
        # expensive part) runs outside the lock.
        self._slots: OrderedDict[int, int] = OrderedDict()
        self._rows = np.empty((0, self.row_width), dtype=self._row_dtype)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bypasses = 0
        self._hash_seconds = 0.0
        self._scatter_seconds = 0.0

    # -- hashing -----------------------------------------------------------

    def compute_rows(self, elements: np.ndarray) -> np.ndarray:
        """Hash a batch from scratch: the stacked ``(n, r·s)`` index rows.

        Row ``i`` lists the flat cells of the stacked ``(r, L, s, 2)``
        counter tensor that element ``i`` touches — for sketch ``k`` and
        second-level hash ``j``, cell
        ``((k·L + LSB(h_k(e)))·s + j)·2 + g_{k,j}(e)``.  Bit-identical to
        evaluating each sketch's hashes separately; only the loop structure
        differs.  Small batches (the common case: cache misses trickling in
        behind a warm cache) run the stacked evaluation — one ``(r, t)``
        Horner pass, one broadcast popcount; batches past
        :data:`STACKED_HASH_MAX` fall back to a per-sketch fill whose
        ``(n,)`` temporaries stay cache-resident.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        n = elements.size
        s = self.shape.num_second_level
        dtype = self._row_dtype
        started = time.perf_counter()
        if n <= STACKED_HASH_MAX:
            hashed = horner_mod(self._coeffs, elements)  # (r, n)
            levels = lsb_array(hashed).T.astype(dtype)  # (n, r)
            # All r·s second-level hashes in one broadcast, laid out
            # (n, r, s) so the result reshapes row-major without a copy.
            anded = elements[:, None, None] & self._masks[None, :, :]
            bits = (np.bitwise_count(anded) & np.uint8(1)) ^ self._flips[None, :, :]
            base = (
                np.arange(self.num_sketches, dtype=dtype)[None, :]
                * dtype(self.shape.num_levels)
                + levels
            ) * dtype(s)
            flat = (
                base[:, :, None] + np.arange(s, dtype=dtype)[None, None, :]
            ) * dtype(2)
            flat += bits
            rows = flat.reshape(n, self.row_width)
        else:
            flat = np.empty((n, self.num_sketches, s), dtype=dtype)
            offsets = np.arange(s, dtype=dtype)
            for k in range(self.num_sketches):
                hashed = horner_mod(self._coeffs[k], elements)
                levels = lsb_array(hashed).astype(dtype)
                anded = elements[:, None] & self._masks[k][None, :]
                bits = (np.bitwise_count(anded) & np.uint8(1)) ^ self._flips[k][None, :]
                base = (dtype(k * self.shape.num_levels) + levels) * dtype(s)
                flat[:, k, :] = (base[:, None] + offsets) * dtype(2) + bits
            rows = flat.reshape(n, self.row_width)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._hash_seconds += elapsed
        return rows

    def bucket_keys(self, rows: np.ndarray) -> np.ndarray:
        """Per-(element, sketch) first-level bucket keys from index rows.

        Returns an ``(n, r)`` array of ``sketch·levels + level`` keys —
        flat indices into an ``(r, levels)`` aggregate such as
        :meth:`repro.core.family.SketchFamily.level_totals`.  Derived
        from the ``j = 0`` column of each sketch's row segment (the cell
        pair whose sum is the bucket total), so incremental aggregate
        maintenance piggybacks on rows the scatter already computed
        instead of hashing again.
        """
        n = rows.shape[0]
        s = self.shape.num_second_level
        first_cells = rows.reshape(n, self.num_sketches, s)[:, :, 0]
        # cell = ((k·L + level)·s + 0)·2 + bit  ⇒  (cell >> 1) // s
        return (first_cells >> 1) // s

    # -- scattering --------------------------------------------------------

    def scatter(self, target: np.ndarray, rows: np.ndarray, scale: int = 1) -> None:
        """Add ``scale`` into flat int64 ``target`` at every cell of ``rows``.

        Chooses between one stacked ``bincount`` over the whole counter
        tensor (small batches) and a per-sketch histogram loop whose
        outputs stay cache-resident (past :data:`STACKED_SCATTER_MAX`
        total indices); both accumulate in exact int64, so the choice
        never affects the resulting counters.
        """
        if rows.size <= STACKED_SCATTER_MAX:
            binned = np.bincount(rows.reshape(-1), minlength=target.size)
            target += binned if scale == 1 else binned * scale
            return
        s = self.shape.num_second_level
        cells = self.shape.num_levels * s * 2
        grouped = rows.reshape(rows.shape[0], self.num_sketches, s)
        for k in range(self.num_sketches):
            local = grouped[:, k, :].ravel() - self._row_dtype(k * cells)
            binned = np.bincount(local, minlength=cells)
            slab = target[k * cells : (k + 1) * cells]
            slab += binned if scale == 1 else binned * scale

    def scatter_rows(self, elements: np.ndarray) -> np.ndarray | None:
        """Index rows for a batch, served from the cache where possible.

        Returns the same ``(n, r·s)`` matrix as :meth:`compute_rows`;
        cached elements skip hashing entirely.  Rows are returned by value
        semantics — callers must not mutate the result if it may alias the
        cache (it never does: cache hits are copied into a fresh output).

        Returns ``None`` — "run classic per-sketch maintenance instead" —
        when the batch is a *scan flood*: more uncached elements than the
        cache could ever hold and too many for the stacked evaluation to
        beat per-sketch hashing.  Materialising (and thrashing the LRU
        with) rows that will never be reused costs more than it saves, so
        the plan declines; the decision is recorded in
        :attr:`HashPlanStats.bypasses`.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        n = elements.size
        if self.cache_size == 0:
            if n > STACKED_HASH_MAX:
                with self._lock:
                    self._bypasses += 1
                return None
            with self._lock:
                self._misses += n
            return self.compute_rows(elements)

        out = np.empty((n, self.row_width), dtype=self._row_dtype)
        # Phase 1 (locked): partition into hits/misses and copy the hit
        # rows out while their slots are pinned — an eviction by another
        # thread after the lock drops can no longer corrupt them.
        with self._lock:
            slots = self._slots
            hit_positions: list[int] = []
            hit_slots: list[int] = []
            miss_positions: list[int] = []
            for position, element in enumerate(elements.tolist()):
                slot = slots.get(element)
                if slot is None:
                    miss_positions.append(position)
                else:
                    slots.move_to_end(element)
                    hit_positions.append(position)
                    hit_slots.append(slot)
            misses = len(miss_positions)
            if (
                misses > STACKED_HASH_MAX
                and misses >= self.cache_size
                and misses > len(hit_positions)
            ):
                self._bypasses += 1
                return None
            self._hits += len(hit_positions)
            self._misses += misses
            if hit_positions:
                out[hit_positions] = self._rows[hit_slots]
        # Phase 2 (unlocked): hash the misses — pure computation.
        if miss_positions:
            fresh = self.compute_rows(elements[miss_positions])
            out[miss_positions] = fresh
            if misses < self.cache_size:
                # Phase 3 (locked): publish the fresh rows.  _store
                # re-checks for duplicates, so a concurrent insert of the
                # same element is harmless.
                with self._lock:
                    for row_index, position in enumerate(miss_positions):
                        self._store(int(elements[position]), fresh[row_index])
        return out

    def _store(self, element: int, row: np.ndarray) -> None:
        slots = self._slots
        slot = slots.get(element)
        if slot is not None:  # duplicate within one batch
            slots.move_to_end(element)
            return
        if len(slots) >= self.cache_size:
            _, slot = slots.popitem(last=False)
            self._evictions += 1
        else:
            slot = len(slots)
            if slot >= self._rows.shape[0]:
                self._grow(slot + 1)
        self._rows[slot] = row
        slots[element] = slot

    def _grow(self, needed: int) -> None:
        grown = min(
            self.cache_size, max(needed, _INITIAL_SLOTS, 2 * self._rows.shape[0])
        )
        buffer = np.empty((grown, self.row_width), dtype=self._row_dtype)
        buffer[: self._rows.shape[0]] = self._rows
        self._rows = buffer

    def same_coins_as(self, other: "HashPlan") -> bool:
        """Whether two plans embed identical hash functions (and shape)."""
        return (
            self.shape == other.shape
            and np.array_equal(self._coeffs, other._coeffs)
            and np.array_equal(self._masks, other._masks)
            and np.array_equal(self._flips, other._flips)
        )

    # -- bookkeeping -------------------------------------------------------

    def note_scatter_seconds(self, seconds: float) -> None:
        """Accumulate counter-scatter wall-clock (reported by families)."""
        with self._lock:
            self._scatter_seconds += seconds

    def stats(self) -> HashPlanStats:
        """A frozen snapshot of the plan's cache and timing counters."""
        with self._lock:
            return HashPlanStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                bypasses=self._bypasses,
                entries=len(self._slots),
                capacity=self.cache_size,
                hash_seconds=self._hash_seconds,
                scatter_seconds=self._scatter_seconds,
            )

    def clear_cache(self) -> None:
        """Drop every cached row (counters keep accumulating)."""
        with self._lock:
            self._slots.clear()
            self._rows = np.empty((0, self.row_width), dtype=self._row_dtype)

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/timing counters (cache kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._bypasses = 0
            self._hash_seconds = 0.0
            self._scatter_seconds = 0.0


@lru_cache(maxsize=32)
def _shared_plan(spec: "SketchSpec") -> HashPlan:
    return HashPlan(spec.hashes(), spec.shape)


def plan_for(spec: "SketchSpec") -> HashPlan:
    """The shared :class:`HashPlan` of a spec (memoised per distinct spec).

    Every family built from an equal spec — across streams, engines, and
    in-process shards — receives the *same* plan object, so the element
    cache is shared exactly as far as the coins are: two different specs
    never observe each other's cache state (their keys differ, so they
    get distinct plans).
    """
    return _shared_plan(spec)
