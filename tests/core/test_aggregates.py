"""Property tests for the incrementally maintained per-level aggregates.

The invariant under test: after *any* sequence of maintenance operations
(scalar updates, plan/legacy batches, churn, merges, serialisation
round-trips), ``SketchFamily.level_totals()`` and
``level_nonempty_counts()`` equal what a recomputation from the raw
``(r, levels, s, 2)`` counters yields — and the per-level dirty versions
honour the ``levels_clean_since`` contract the engine's query cache
relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec, sum_families
from repro.core.sketch import SketchShape

SHAPE = SketchShape(domain_bits=16, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=32, shape=SHAPE, seed=71)


def recomputed_totals(family) -> np.ndarray:
    return family.counters[:, :, 0, 0] + family.counters[:, :, 0, 1]


def assert_aggregates_fresh(family) -> None:
    totals = recomputed_totals(family)
    np.testing.assert_array_equal(family.level_totals(), totals)
    np.testing.assert_array_equal(
        family.level_nonempty_counts(), (totals > 0).sum(axis=0)
    )


class TestMaintenancePaths:
    def test_scalar_updates(self):
        family = SPEC.build()
        rng = np.random.default_rng(0)
        for element in rng.integers(0, 2**16, size=50):
            family.update(int(element), 1)
        assert_aggregates_fresh(family)

    def test_plan_batches_weighted_and_unweighted(self):
        family = SPEC.build()
        rng = np.random.default_rng(1)
        family.update_batch(rng.integers(0, 2**16, size=200))
        family.update_batch(
            rng.integers(0, 2**16, size=64),
            rng.integers(1, 5, size=64),
        )
        # uniform-count fast path
        family.update_batch(rng.integers(0, 2**16, size=64), np.full(64, 3))
        assert_aggregates_fresh(family)

    def test_legacy_per_sketch_path(self):
        family = SPEC.build()
        rng = np.random.default_rng(2)
        family.update_batch(rng.integers(0, 2**16, size=100), plan=None)
        assert_aggregates_fresh(family)

    def test_churn_and_deletions(self):
        family = SPEC.build()
        rng = np.random.default_rng(3)
        elements = rng.integers(0, 2**16, size=150)
        family.ingest_batch(elements, np.ones(150, dtype=np.int64))
        family.ingest_batch(elements[:70], -np.ones(70, dtype=np.int64))
        assert_aggregates_fresh(family)
        # exact insert/delete churn inside one batch
        mixed = np.concatenate([elements[:30], elements[:30]])
        deltas = np.concatenate([np.ones(30, np.int64), -np.ones(30, np.int64)])
        family.ingest_batch(mixed, deltas)
        assert_aggregates_fresh(family)

    def test_merges_and_sums(self):
        rng = np.random.default_rng(4)
        parts = []
        for _ in range(3):
            family = SPEC.build()
            family.update_batch(rng.integers(0, 2**16, size=120))
            parts.append(family)
        merged = parts[0].merged_with(parts[1])
        assert_aggregates_fresh(merged)
        parts[0].merge_in_place(parts[1])
        assert_aggregates_fresh(parts[0])
        total = sum_families(parts)
        assert_aggregates_fresh(total)
        # out= reuse must refresh the destination's aggregates too
        total2 = sum_families(parts[1:], out=total)
        assert total2 is total
        assert_aggregates_fresh(total)

    def test_serialisation_round_trip(self):
        family = SPEC.build()
        rng = np.random.default_rng(5)
        family.update_batch(rng.integers(0, 2**16, size=200))
        restored = type(family).from_bytes(family.to_bytes(), SPEC)
        assert_aggregates_fresh(restored)
        np.testing.assert_array_equal(
            restored.level_totals(), family.level_totals()
        )

    def test_direct_counter_writes_need_refresh(self):
        family = SPEC.build()
        family.counters[:, :, 0, 0] = 1
        family.refresh_aggregates()
        assert_aggregates_fresh(family)

    def test_randomised_operation_sequences(self):
        rng = np.random.default_rng(6)
        for round_ in range(5):
            family = SPEC.build()
            other = SPEC.build()
            other.update_batch(rng.integers(0, 2**16, size=80))
            for _ in range(8):
                op = rng.integers(5)
                if op == 0:
                    family.update(int(rng.integers(2**16)), 1)
                elif op == 1:
                    family.update_batch(rng.integers(0, 2**16, size=40))
                elif op == 2:
                    family.ingest_batch(
                        rng.integers(0, 2**16, size=40),
                        rng.choice([-1, 1, 2], size=40).astype(np.int64),
                    )
                elif op == 3:
                    family.merge_in_place(other)
                else:
                    family = type(family).from_bytes(family.to_bytes(), SPEC)
                assert_aggregates_fresh(family)


class TestDirtyVersions:
    def test_version_moves_with_every_mutation(self):
        family = SPEC.build()
        seen = {family.version}
        family.update(1, 1)
        seen.add(family.version)
        family.update_batch([2, 3, 4])
        seen.add(family.version)
        assert len(seen) == 3  # strictly monotone

    def test_levels_clean_since_prefix(self):
        family = SPEC.build()
        rng = np.random.default_rng(7)
        family.update_batch(rng.integers(0, 2**16, size=100))
        version = family.version
        assert family.levels_clean_since(version, SHAPE.num_levels - 1)
        family.update_batch([int(rng.integers(2**16))])
        # one element touches exactly one level per sketch; with r sketches
        # some shallow level is dirtied almost surely
        assert not family.levels_clean_since(version, SHAPE.num_levels - 1)
        # ... but untouched deep levels stay clean
        dirty = family.level_dirty_versions()
        deepest_clean = int(np.max(np.nonzero(dirty <= version)[0]))
        assert family.levels_clean_since(
            version, -1, start=deepest_clean, stop=deepest_clean + 1
        )

    def test_window_check(self):
        family = SPEC.build()
        family.update_batch([5])
        version = family.version
        family.update_batch([5])  # same element: dirties the same levels again
        dirty = family.level_dirty_versions()
        touched = np.nonzero(dirty > version)[0]
        assert touched.size > 0
        level = int(touched[0])
        assert not family.levels_clean_since(
            version, -1, start=level, stop=level + 1
        )

    def test_views_snapshot_aggregates(self):
        family = SPEC.build()
        rng = np.random.default_rng(8)
        family.update_batch(rng.integers(0, 2**16, size=100))
        half = family.prefix(16)
        np.testing.assert_array_equal(
            half.level_totals(), recomputed_totals(half)
        )


class TestBitIdenticalEstimates:
    """Estimators on maintained aggregates == estimators on raw counters."""

    def test_union_matches_recompute(self):
        from repro.core.union import estimate_union

        rng = np.random.default_rng(9)
        family_a = SPEC.build()
        family_b = SPEC.build()
        family_a.update_batch(rng.integers(0, 2**16, size=400))
        family_b.update_batch(rng.integers(0, 2**16, size=300))
        fast = estimate_union([family_a, family_b], 0.2)
        # force the slow path by rebuilding from raw counters
        rebuilt_a = type(family_a).from_bytes(family_a.to_bytes(), SPEC)
        rebuilt_b = type(family_b).from_bytes(family_b.to_bytes(), SPEC)
        slow = estimate_union([rebuilt_a, rebuilt_b], 0.2)
        assert fast == slow

    def test_single_family_fast_path(self):
        from repro.core.union import estimate_union

        rng = np.random.default_rng(10)
        family = SPEC.build()
        family.update_batch(rng.integers(0, 2**16, size=400))
        memoised = estimate_union([family], 0.2)
        assert memoised == estimate_union([family.copy()], 0.2)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
