"""SQL set-operator cardinality estimation for query optimisation.

The paper notes that UNION / INTERSECT / EXCEPT are part of the SQL
standard, and that one-pass synopses for their result cardinalities are
useful for optimising queries over very large tables.  This example plays
a retail warehouse: three "tables" of customer ids arrive as streams of
row inserts and deletes, and the optimiser asks for result-size estimates
of candidate set queries — using SQL keyword spellings, which the
expression parser accepts directly.

Run:  python examples/sql_cardinality.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactStreamStore, SketchSpec, StreamEngine, Update
from repro.datagen.distributions import zipf_multiset

CANDIDATE_QUERIES = (
    "online_buyers INTERSECT store_buyers",
    "online_buyers EXCEPT store_buyers",
    "(online_buyers UNION store_buyers) EXCEPT churned",
    "online_buyers INTERSECT store_buyers INTERSECT churned",
)


def main() -> None:
    rng = np.random.default_rng(55)
    spec = SketchSpec(num_sketches=384, seed=31)
    engine = StreamEngine(spec)
    exact = ExactStreamStore()

    customers = rng.choice(2**30, size=60_000, replace=False)
    online = customers[:40_000]
    in_store = customers[25_000:55_000]
    churned = customers[50_000:]

    # Rows arrive with Zipf-skewed repetition (regulars shop repeatedly) —
    # cardinality counts distinct customers regardless of row multiplicity.
    print("loading transaction rows (Zipf-skewed multiplicities) ...")
    tables = {
        "online_buyers": zipf_multiset(online, 80_000, rng, skew=1.05),
        "store_buyers": zipf_multiset(in_store, 60_000, rng, skew=1.05),
        "churned": churned,
    }
    for table, rows in tables.items():
        for customer in rows:
            update = Update(table, int(customer), +1)
            engine.process(update)
            exact.apply(update)

    # GDPR erasure: some customers' rows are deleted outright.
    print("applying row deletions (account erasure) ...")
    for customer in online[:2_000]:
        frequency = exact.frequency("online_buyers", int(customer))
        if frequency:
            update = Update("online_buyers", int(customer), -frequency)
            engine.process(update)
            exact.apply(update)

    print(f"\nprocessed {engine.updates_processed:,} row updates\n")
    print(f"{'candidate query':58s} {'est. rows':>10s} {'actual':>8s} {'err':>6s}")
    for query in CANDIDATE_QUERIES:
        estimate = engine.query(query, epsilon=0.1)
        truth = exact.cardinality(query)
        error = abs(estimate.value - truth) / truth if truth else 0.0
        print(
            f"{query:58s} {estimate.value:10,.0f} {truth:8,} {100 * error:5.1f}%"
        )

    # The expression language round-trips to executable SQL.
    from repro.expr import parse, to_sql

    print("\nthe first candidate as executable SQL:")
    print(f"  {to_sql(parse(CANDIDATE_QUERIES[0]), column='customer_id')}")


if __name__ == "__main__":
    main()
