"""The Flajolet-Martin distinct-count estimator (paper Figure 2).

The classical bit-vector synopsis for *insert-only* streams: hash each
incoming element, set the bit at ``LSB(h(e))``, and estimate the distinct
count from the position of the leftmost zero, averaged over ``r``
independent synopses and scaled by the Flajolet-Martin correction factor
``1.2928 = 1/0.77351``.

Included as the historical baseline the 2-level hash sketch generalises:
it supports **only** insertions and **only** the union operation.  A
deletion raises — a bit, once set, cannot be unset; that limitation is
precisely what the paper's counter-based first level fixes.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import _draw_family_hashes
from repro.core.sketch import SketchShape
from repro.errors import DomainError, IllegalDeletionError
from repro.hashing.lsb import NUM_LEVELS, lsb_array

__all__ = ["FlajoletMartin", "FM_CORRECTION"]

#: The magic constant of Figure 2: ``E[2**leftmostZero] = phi * n`` with
#: ``phi ≈ 0.77351``; the estimator multiplies by ``1/phi``.
FM_CORRECTION = 1.2928


class FlajoletMartin:
    """``r`` independent FM bit-vector synopses over one insertion stream.

    Hash functions are drawn with the same prefix-stable scheme as
    :class:`~repro.core.family.SketchFamily` (seeded per synopsis index),
    so two FM summaries with equal ``(seed, num_sketches)`` are comparable
    and can be OR-merged to summarise a union of streams.
    """

    def __init__(
        self, num_sketches: int = 64, seed: int = 0, domain_bits: int = 30
    ) -> None:
        if num_sketches < 1:
            raise ValueError("need at least one synopsis")
        self.num_sketches = num_sketches
        self.seed = seed
        self.domain_bits = domain_bits
        shape = SketchShape(domain_bits=domain_bits)
        self._hashes = _draw_family_hashes(seed, 0, num_sketches, shape)
        self.bits = np.zeros((num_sketches, NUM_LEVELS), dtype=bool)

    # -- maintenance -------------------------------------------------------

    def insert(self, element: int) -> None:
        """Process one element insertion."""
        self.insert_batch(np.asarray([element], dtype=np.uint64))

    def insert_batch(self, elements) -> None:
        """Insert a batch of elements (vectorised per synopsis)."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        if int(elements.max()) >= (1 << self.domain_bits):
            raise DomainError("batch contains elements outside [0, M)")
        for index in range(self.num_sketches):
            levels = lsb_array(self._hashes[index].first_level(elements))
            self.bits[index, levels] = True

    def delete(self, element: int) -> None:
        """FM synopses cannot process deletions — that is the point."""
        raise IllegalDeletionError(
            "the Flajolet-Martin bit-vector synopsis supports insertions "
            "only; use TwoLevelHashSketch for update streams"
        )

    # -- combination / estimation ------------------------------------------

    def merged_with(self, other: "FlajoletMartin") -> "FlajoletMartin":
        """OR-combine: summarises the union of the two input streams."""
        if (self.seed, self.num_sketches, self.domain_bits) != (
            other.seed,
            other.num_sketches,
            other.domain_bits,
        ):
            raise ValueError("FM summaries built with different coins")
        merged = FlajoletMartin(self.num_sketches, self.seed, self.domain_bits)
        merged.bits = self.bits | other.bits
        return merged

    def estimate(self) -> float:
        """The Figure 2 estimate ``1.2928 * 2**(mean leftmost zero)``."""
        if not self.bits.any():
            return 0.0
        leftmost_zeros = np.argmin(self.bits, axis=1).astype(np.float64)
        # argmin returns 0 both for "bit 0 unset" and "all bits set"; the
        # all-set case (needs > 2**64 distinct values) cannot happen here.
        return float(FM_CORRECTION * 2.0 ** leftmost_zeros.mean())
