"""Unit tests for confidence intervals."""

from __future__ import annotations

import pytest

from repro.core.intervals import (
    ConfidenceInterval,
    wilson_interval,
    witness_confidence_interval,
)
from repro.core.results import WitnessEstimate


class TestWilson:
    def test_contains_point_estimate(self):
        interval = wilson_interval(40, 100)
        assert 0.4 in interval

    def test_symmetric_at_half(self):
        interval = wilson_interval(50, 100)
        assert interval.low == pytest.approx(1 - interval.high, abs=1e-9)

    def test_zero_successes_has_zero_low(self):
        interval = wilson_interval(0, 50)
        assert interval.low == 0.0
        assert interval.high > 0.0  # does not collapse like Wald

    def test_all_successes(self):
        interval = wilson_interval(50, 50)
        assert interval.high == 1.0
        assert interval.low < 1.0

    def test_narrows_with_trials(self):
        wide = wilson_interval(4, 10)
        narrow = wilson_interval(400, 1000)
        assert narrow.width < wide.width

    def test_widens_with_confidence(self):
        assert (
            wilson_interval(40, 100, 0.99).width
            > wilson_interval(40, 100, 0.80).width
        )

    def test_interpolated_confidence(self):
        mid = wilson_interval(40, 100, 0.925)
        assert wilson_interval(40, 100, 0.90).width < mid.width
        assert mid.width < wilson_interval(40, 100, 0.95).width

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=0.0)

    def test_bounds_clamped(self):
        interval = wilson_interval(1, 2, 0.99)
        assert 0.0 <= interval.low <= interval.high <= 1.0


class TestWitnessInterval:
    def make(self, num_valid=50, num_witnesses=20, union=1000.0):
        return WitnessEstimate(
            value=(num_witnesses / max(num_valid, 1)) * union,
            level=10,
            union_estimate=union,
            num_valid=num_valid,
            num_witnesses=num_witnesses,
            num_sketches=256,
        )

    def test_contains_point_estimate(self):
        estimate = self.make()
        interval = witness_confidence_interval(estimate)
        assert estimate.value in interval

    def test_no_valid_observations_collapses(self):
        interval = witness_confidence_interval(self.make(num_valid=0, num_witnesses=0))
        assert interval.low == interval.high == 0.0

    def test_union_margin_widens(self):
        estimate = self.make()
        tight = witness_confidence_interval(estimate, union_relative_error=0.0)
        wide = witness_confidence_interval(estimate, union_relative_error=0.2)
        assert wide.width > tight.width

    def test_more_valid_observations_narrow(self):
        loose = witness_confidence_interval(self.make(num_valid=10, num_witnesses=4))
        tight = witness_confidence_interval(self.make(num_valid=400, num_witnesses=160))
        assert tight.width < loose.width

    def test_negative_union_margin_rejected(self):
        with pytest.raises(ValueError):
            witness_confidence_interval(self.make(), union_relative_error=-0.1)

    def test_width_property(self):
        interval = ConfidenceInterval(2.0, 5.0, 0.95)
        assert interval.width == 3.0
        assert 3.0 in interval
        assert 6.0 not in interval
