"""Engine checkpointing.

Stream processing is one-pass: if the process dies, the stream cannot be
replayed to rebuild the synopses.  A checkpoint writes the engine's whole
state — the sketch spec (the coins) and every stream's counter array — to
a directory that :func:`restore_engine` turns back into a live engine.

Layout (format version 2)::

    <checkpoint>/
        manifest.json            # version, spec, stream-name -> file map
        streams/<escaped>.sketch # counter payload (SketchFamily.to_bytes)

Stream names are user data and may contain anything (``/``, ``..``,
``NUL``, characters illegal on the target filesystem), so they are never
used as file names directly: each name is percent-escaped into a safe
file stem and the manifest records the exact ``name -> file`` mapping.
Version-1 checkpoints (raw names, no mapping) are still restorable.

Sharded engines (:class:`~repro.streams.sharded.ShardedEngine`) checkpoint
through the same format — :func:`checkpoint_sharded_engine` writes one
payload per *(shard, stream)* slice plus the shard layout, and
:func:`restore_sharded_engine` rebuilds each slice in place so a restored
engine keeps ingesting with the same partitioning.  A sharded checkpoint
is also a superset of the flat format: :func:`restore_engine` on one
yields a single :class:`~repro.streams.engine.StreamEngine` holding the
merged synopses (linearity again).

The counters are the only state; hash functions regenerate from the spec
seed, so checkpoints are small and portable across machines.
"""

from __future__ import annotations

import json
import pathlib
from urllib.parse import quote, unquote

from repro.core.family import SketchFamily, SketchSpec, sum_families
from repro.errors import ReproError
from repro.streams.engine import StreamEngine

__all__ = [
    "checkpoint_engine",
    "restore_engine",
    "checkpoint_sharded_engine",
    "restore_sharded_engine",
    "read_checkpoint_extra",
    "read_checkpoint_spec",
    "CheckpointError",
]

_FORMAT_VERSION = 2


class CheckpointError(ReproError, ValueError):
    """A checkpoint directory is missing, malformed, or incompatible."""


def _escape_stream_name(name: str) -> str:
    """A filesystem-safe, collision-free file stem for a stream name.

    Percent-escapes everything outside ``[A-Za-z0-9_-]`` (``safe=""``
    escapes ``/`` too, so names cannot nest or traverse directories) and
    caps the stem length; the manifest mapping — not the escaping — is
    authoritative on restore, so the cap cannot cause ambiguity.
    """
    escaped = quote(name, safe="")
    escaped = escaped.replace(".", "%2E")  # forbid "..", hidden files
    if not escaped:
        escaped = "%00empty"
    return escaped[:150]


def _write_stream_payloads(streams_dir, named_payloads) -> dict[str, str]:
    """Write payloads under escaped names; return name -> file mapping."""
    files: dict[str, str] = {}
    used: set[str] = set()
    for name, payload in named_payloads:
        stem = _escape_stream_name(name)
        candidate = stem
        suffix = 0
        while candidate in used:  # length-capped stems may collide
            suffix += 1
            candidate = f"{stem}~{suffix}"
        used.add(candidate)
        files[name] = f"{candidate}.sketch"
        (streams_dir / files[name]).write_bytes(payload)
    return files


def checkpoint_engine(
    engine: StreamEngine,
    directory: str | pathlib.Path,
    extra: dict | None = None,
) -> None:
    """Write the engine's flushed state into ``directory`` (created if
    needed; existing checkpoint files are overwritten).

    ``extra`` is an optional JSON-serialisable mapping stored verbatim in
    the manifest and returned by :func:`read_checkpoint_extra` — layers
    above the engine (e.g. the network coordinator's per-site delta
    sequence map, :mod:`repro.streams.net`) ride their fail-over metadata
    along in the same atomic-enough unit as the counters they describe.
    Restore functions ignore it, so checkpoints with extra metadata stay
    readable by every existing consumer.

    A windowed engine's ring state rides automatically: the window
    config, shared clock, and live bucket indices land in
    ``extra["windows"]`` (a reserved key) and each non-zero bucket's
    counter payload is written next to the stream payloads under the key
    ``window/<stream>@<bucket>``.  :func:`restore_engine` rebuilds the
    rings; every other consumer — including format-v1/v2 readers that
    predate windows — simply ignores them and restores the all-time
    synopses as before.
    """
    directory = pathlib.Path(directory)
    streams_dir = directory / "streams"
    streams_dir.mkdir(parents=True, exist_ok=True)

    engine.flush()
    stream_names = engine.stream_names()
    named_payloads = [
        (name, engine.family(name).to_bytes()) for name in stream_names
    ]
    window_meta = None
    if getattr(engine, "is_windowed", False):
        window_meta, bucket_payloads = engine.window_state()
        named_payloads.extend(
            (_window_key(key), payload) for key, payload in bucket_payloads
        )
    files = _write_stream_payloads(streams_dir, named_payloads)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "spec": engine.spec.to_json_dict(),
        "streams": stream_names,
        "stream_files": files,
        "updates_processed": engine.updates_processed,
    }
    extra = dict(extra) if extra else {}
    if window_meta is not None:
        extra["windows"] = window_meta
    if extra:
        manifest["extra"] = dict(extra)
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))


def read_checkpoint_extra(directory: str | pathlib.Path) -> dict:
    """The ``extra`` metadata stored with a checkpoint (``{}`` if none)."""
    manifest = _load_manifest(pathlib.Path(directory))
    extra = manifest.get("extra", {})
    if not isinstance(extra, dict):
        raise CheckpointError("manifest 'extra' is not a mapping")
    return extra


def read_checkpoint_spec(directory: str | pathlib.Path) -> SketchSpec:
    """The :class:`~repro.core.family.SketchSpec` a checkpoint was written
    under, without restoring any counters.

    Lets a consumer build its own fold target first — e.g. a
    coordinator restoring into a factory-built
    :class:`~repro.streams.sharded.ShardedEngine` — and then adopt the
    restored families into it.
    """
    manifest = _load_manifest(pathlib.Path(directory))
    try:
        return SketchSpec.from_json_dict(manifest["spec"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"manifest spec is unusable: {exc}") from exc


def _load_manifest(directory: pathlib.Path) -> dict:
    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        raise CheckpointError(f"no manifest.json under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt manifest: {exc}") from exc
    version = manifest.get("format_version")
    if version not in (1, _FORMAT_VERSION):
        raise CheckpointError(
            f"checkpoint format {version!r} not supported (expected "
            f"{_FORMAT_VERSION})"
        )
    return manifest


def _stream_file(manifest: dict, name: str) -> str:
    """The payload file for ``name`` (mapping in v2, raw name in v1)."""
    files = manifest.get("stream_files")
    if files is not None:
        try:
            return files[name]
        except KeyError:
            raise CheckpointError(
                f"manifest has no payload file for stream {name!r}"
            ) from None
    return f"{name}.sketch"  # format v1: raw names on disk


def _read_family(
    directory: pathlib.Path, manifest: dict, name: str, spec: SketchSpec
) -> SketchFamily:
    payload_path = directory / "streams" / _stream_file(manifest, name)
    if not payload_path.is_file():
        raise CheckpointError(f"missing sketch payload for stream {name!r}")
    # from_bytes rebuilds the family's incremental per-level aggregates
    # from the restored counters, so queries on a restored engine go
    # straight to the maintained-totals fast path.
    return SketchFamily.from_bytes(payload_path.read_bytes(), spec)


def _window_key(bucket_key: str) -> str:
    """Payload-map key of one ring bucket (``bucket_key`` is
    ``"<stream>@<bucket>"`` from :meth:`StreamEngine.window_state`)."""
    return f"window/{bucket_key}"


def _window_meta(manifest: dict) -> dict | None:
    """The ``extra["windows"]`` section, validated shallowly (None if absent)."""
    extra = manifest.get("extra")
    if not isinstance(extra, dict):
        return None
    windows = extra.get("windows")
    if windows is None:
        return None
    if not isinstance(windows, dict) or "window_span" not in windows:
        raise CheckpointError("manifest 'extra[\"windows\"]' is malformed")
    return windows


def restore_engine(
    directory: str | pathlib.Path, batch_size: int = 4096
) -> StreamEngine:
    """Rebuild a live engine from a checkpoint directory.

    Accepts flat checkpoints (format 1 or 2) and sharded checkpoints —
    for the latter the per-shard slices of each stream are summed into
    one family per stream, which by linearity is exactly the synopsis of
    the full stream.

    A checkpoint written by a windowed engine restores as a windowed
    engine: the window config and ring clock come from
    ``extra["windows"]``, the live buckets from their payload files, and
    each ring's in-window total is rebuilt by summation (bit-identical
    by linearity).  Checkpoints without the section — anything written
    before windows existed — restore unwindowed, exactly as before.
    """
    directory = pathlib.Path(directory)
    manifest = _load_manifest(directory)
    spec = SketchSpec.from_json_dict(manifest["spec"])
    windows = _window_meta(manifest)
    if windows is None:
        engine = StreamEngine(spec, batch_size=batch_size)
    else:
        engine = StreamEngine(
            spec,
            batch_size=batch_size,
            window_span=windows["window_span"],
            bucket_width=windows.get("bucket_width"),
            clock_policy=windows.get("clock_policy", "raise"),
        )
    shards = manifest.get("shards")
    for name in manifest["streams"]:
        if shards is None:
            family = _read_family(directory, manifest, name, spec)
        else:
            parts = [
                _read_family(directory, manifest, slice_key, spec)
                for slice_key in _slice_keys(manifest, name)
            ]
            family = sum_families(parts) if parts else spec.build()
        engine.adopt_family(name, family)
    if windows is not None:
        files = manifest.get("stream_files", {})
        buckets_by_stream: dict[str, dict[int, SketchFamily]] = {}
        for stream, indices in windows.get("streams", {}).items():
            decoded: dict[int, SketchFamily] = {}
            for index in indices:
                key = _window_key(f"{stream}@{index}")
                if key in files:
                    decoded[int(index)] = _read_family(
                        directory, manifest, key, spec
                    )
            buckets_by_stream[stream] = decoded
        engine.restore_window_state(windows, buckets_by_stream)
    engine.mark_replayed(int(manifest.get("updates_processed", 0)))
    return engine


# -- sharded engines ---------------------------------------------------------


def _slice_name(shard: int, stream: str) -> str:
    return f"shard{shard}/{stream}"


def _slice_keys(manifest: dict, stream: str) -> list[str]:
    """The per-shard payload keys recorded for ``stream``."""
    return [
        _slice_name(shard, stream)
        for shard in range(int(manifest["shards"]))
        if _slice_name(shard, stream) in manifest.get("stream_files", {})
    ]


def checkpoint_sharded_engine(
    engine,
    directory: str | pathlib.Path,
    extra: dict | None = None,
) -> None:
    """Write a :class:`~repro.streams.sharded.ShardedEngine`'s state.

    One payload per non-empty *(shard, stream)* slice, keyed
    ``shard<i>/<stream>`` in the manifest's ``stream_files`` mapping (the
    key goes through the same escaping as any stream name, so the ``/``
    never reaches the filesystem).  ``extra`` rides in the manifest
    exactly as for :func:`checkpoint_engine` — a coordinator leaf folding
    into a sharded engine stores its per-site sequence map and uplink
    state through the same field whichever fold target it runs.
    """
    directory = pathlib.Path(directory)
    streams_dir = directory / "streams"
    streams_dir.mkdir(parents=True, exist_ok=True)

    engine.flush()
    stream_names = engine.stream_names()
    named_payloads = []
    for stream in stream_names:
        for shard, family in sorted(engine._iter_shard_families(stream)):
            named_payloads.append(
                (_slice_name(shard, stream), family.to_bytes())
            )
    files = _write_stream_payloads(streams_dir, named_payloads)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "spec": engine.spec.to_json_dict(),
        "streams": stream_names,
        "stream_files": files,
        "updates_processed": engine.updates_processed,
        "shards": engine.num_shards,
    }
    if extra:
        manifest["extra"] = dict(extra)
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))


def restore_sharded_engine(
    directory: str | pathlib.Path,
    num_shards: int | None = None,
    batch_size: int = 4096,
    executor: str = "threads",
):
    """Rebuild a live :class:`~repro.streams.sharded.ShardedEngine`.

    From a sharded checkpoint with the same shard count, every slice is
    restored onto its original shard, so the restored engine's per-shard
    state — not just the merged view — matches the checkpointed one.
    From a flat checkpoint, or when ``num_shards`` differs, each stream's
    merged family lands on shard 0 (safe by linearity; the partitioner
    still routes *future* updates by element).
    """
    from repro.streams.sharded import ShardedEngine

    directory = pathlib.Path(directory)
    manifest = _load_manifest(directory)
    spec = SketchSpec.from_json_dict(manifest["spec"])
    checkpoint_shards = manifest.get("shards")
    if num_shards is None:
        num_shards = int(checkpoint_shards) if checkpoint_shards else 4
    engine = ShardedEngine(
        spec, num_shards=num_shards, batch_size=batch_size, executor=executor
    )
    try:
        aligned = checkpoint_shards is not None and int(checkpoint_shards) == num_shards
        for name in manifest["streams"]:
            if aligned:
                for shard in range(num_shards):
                    key = _slice_name(shard, name)
                    if key in manifest.get("stream_files", {}):
                        engine.adopt_shard_family(
                            shard, name, _read_family(directory, manifest, key, spec)
                        )
            elif checkpoint_shards is not None:
                parts = [
                    _read_family(directory, manifest, key, spec)
                    for key in _slice_keys(manifest, name)
                ]
                engine.adopt_family(
                    name, sum_families(parts) if parts else spec.build()
                )
            else:
                engine.adopt_family(
                    name, _read_family(directory, manifest, name, spec)
                )
        engine.mark_replayed(int(manifest.get("updates_processed", 0)))
    except BaseException:
        engine.close()
        raise
    return engine
