"""Insert-only bitmap synopses (the paper's Section 5.1 space note).

The paper's experiments observe that for insert-only streams the sketch
cells can be "simple bits (instead of counters)": every property check
the estimators perform — emptiness, singleton detection, occupancy
comparison — reads only whether a cell is *occupied*, never how many
items it holds.  :class:`BitmapFamily` is that variant: one byte per cell
(occupancy flag) instead of an 8-byte counter, an 8× space saving, with
**bit-identical estimates** (the checks see the same occupancy pattern).

The price is deletions: occupancy cannot be decremented, so ``update``
with a negative count raises — this synopsis is for the insert-only
regime, exactly like the baselines, while sharing the estimator stack.
:meth:`BitmapFamily.from_family` compresses an existing counter family
(useful before shipping synopses of insert-only streams to a
coordinator).

Duck-typing contract: estimators consume ``spec``, ``num_sketches``,
``shape``, ``level_totals()``, ``level_slab()``, and ``prefix()`` — all
provided here with occupancy semantics.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import SketchFamily, SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import DomainError, IllegalDeletionError, IncompatibleSketchesError
from repro.hashing.lsb import lsb_array

__all__ = ["BitmapFamily"]


class BitmapFamily:
    """``r`` insert-only occupancy-bit sketches summarising one stream."""

    __slots__ = ("spec", "_hashes", "counters")

    def __init__(self, spec: SketchSpec, counters: np.ndarray | None = None) -> None:
        self.spec = spec
        self._hashes = spec.hashes()
        expected = (spec.num_sketches,) + spec.shape.counter_shape
        if counters is None:
            counters = np.zeros(expected, dtype=np.uint8)
        elif counters.shape != expected:
            raise IncompatibleSketchesError(
                f"occupancy array has shape {counters.shape}, expected {expected}"
            )
        self.counters = counters

    # -- construction ------------------------------------------------------

    @classmethod
    def from_family(cls, family: SketchFamily) -> "BitmapFamily":
        """Compress a counter family into occupancy bits.

        Only meaningful for families whose streams were insert-only (net
        counts are then guaranteed non-negative and occupancy is exact).
        """
        return cls(family.spec, (family.counters > 0).astype(np.uint8))

    # -- structure -----------------------------------------------------------

    @property
    def num_sketches(self) -> int:
        return self.spec.num_sketches

    @property
    def shape(self) -> SketchShape:
        return self.spec.shape

    def prefix(self, num_sketches: int) -> "BitmapFamily":
        """Zero-copy family over the first ``num_sketches`` members."""
        if not (1 <= num_sketches <= self.spec.num_sketches):
            raise ValueError("prefix size out of range")
        return BitmapFamily(
            self.spec.with_num_sketches(num_sketches),
            self.counters[:num_sketches],
        )

    @property
    def memory_bytes(self) -> int:
        """Occupancy storage size (1/8 of the counter family's)."""
        return self.counters.nbytes

    def is_empty(self) -> bool:
        """True iff no element was ever inserted."""
        return not bool(self.counters.any())

    # -- maintenance -----------------------------------------------------------

    def update(self, element: int, count: int = 1) -> None:
        """Insert ``count`` copies of ``element`` (count must be positive)."""
        if count < 1:
            raise IllegalDeletionError(
                "BitmapFamily is insert-only; use SketchFamily for update "
                "streams with deletions"
            )
        self.update_batch(np.asarray([element], dtype=np.uint64))

    def update_batch(self, elements, counts=None) -> None:
        """Insert a batch of elements (counts, if given, must be positive)."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        if counts is not None:
            counts = np.asarray(counts)
            if (counts < 1).any():
                raise IllegalDeletionError(
                    "BitmapFamily is insert-only; deletions are unsupported"
                )
        if int(elements.max()) >= self.spec.shape.domain_size:
            raise DomainError("batch contains elements outside [0, M)")
        s = self.spec.shape.num_second_level
        for index in range(self.spec.num_sketches):
            hashes = self._hashes[index]
            levels = lsb_array(hashes.first_level(elements))
            bits = hashes.second_level.bits(elements).astype(np.int64)
            flat = (levels[:, None] * s + np.arange(s)[None, :]) * 2 + bits
            self.counters[index].reshape(-1)[flat.reshape(-1)] = 1

    # -- level aggregates (estimator interface) ----------------------------------

    def level_totals(self) -> np.ndarray:
        """Occupancy totals per bucket: positive iff the bucket is
        non-empty (which is all the union estimator consults)."""
        return (
            self.counters[:, :, 0, 0].astype(np.int64)
            + self.counters[:, :, 0, 1].astype(np.int64)
        )

    def level_slab(self, level: int) -> np.ndarray:
        """All members' occupancy at one bucket: ``(r, s, 2)`` of 0/1."""
        return self.counters[:, level].astype(np.int64)

    # -- serialisation (ships 64x smaller than counter payloads) ------------------

    def to_bytes(self) -> bytes:
        """Bit-packed occupancy payload (1 bit per cell)."""
        return np.packbits(self.counters.reshape(-1)).tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes, spec: SketchSpec) -> "BitmapFamily":
        """Rebuild a bitmap family from :meth:`to_bytes` output."""
        family = cls(spec)
        num_cells = family.counters.size
        expected = (num_cells + 7) // 8
        if len(payload) != expected:
            raise IncompatibleSketchesError(
                f"payload is {len(payload)} bytes, expected {expected}"
            )
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[:num_cells]
        family.counters = bits.reshape(family.counters.shape).copy()
        return family

    # -- equality ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitmapFamily):
            return NotImplemented
        return self.spec == other.spec and np.array_equal(self.counters, other.counters)

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("BitmapFamily is mutable and unhashable")
