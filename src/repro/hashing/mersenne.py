"""Vectorised modular arithmetic over the Mersenne prime ``p = 2**61 - 1``.

The hash families used throughout this library (see
:mod:`repro.hashing.families`) are polynomials evaluated modulo a prime
field.  For the first-level hash of a 2-level hash sketch the paper asks for
a mapping ``h : [M] -> [M**k]`` (with ``k`` a small constant, e.g. 2) so
that ``h`` is injective over the stream elements with high probability.
With the default domain of ``M = 2**30`` elements, the field
``GF(2**61 - 1)`` gives a range comparable to ``[M**2]`` and is the largest
prime field whose multiplication can be carried out exactly with 64-bit
integer limbs, which is what the functions in this module implement.

All functions accept either Python ints or ``numpy`` arrays of ``uint64``
and are branch-free so they vectorise cleanly; they are the innermost hot
loop of sketch maintenance.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MERSENNE_P",
    "MERSENNE_EXP",
    "mod_p",
    "mulmod",
    "addmod",
    "horner_mod",
]

#: Exponent of the Mersenne prime used by every hash family in this library.
MERSENNE_EXP = 61

#: The Mersenne prime ``2**61 - 1``.
MERSENNE_P = np.uint64((1 << MERSENNE_EXP) - 1)

_LOW32 = np.uint64(0xFFFFFFFF)
_EXP = np.uint64(MERSENNE_EXP)
_THIRTYTWO = np.uint64(32)
_P64 = np.uint64(MERSENNE_P)


def mod_p(x):
    """Reduce ``x`` (any value < 2**64) modulo ``p = 2**61 - 1``.

    Uses the Mersenne identity ``2**61 === 1 (mod p)``: splitting ``x`` into
    its low 61 bits and the remaining high bits and adding them is a partial
    reduction; two rounds plus one conditional subtraction give the exact
    residue for any 64-bit input.
    """
    x = np.asarray(x, dtype=np.uint64)
    x = (x >> _EXP) + (x & _P64)
    x = (x >> _EXP) + (x & _P64)
    # x is now < p + 2; a masked subtract canonicalises without branching.
    return x - (x >= _P64).astype(np.uint64) * _P64


def addmod(a, b):
    """Return ``(a + b) mod p`` for residues ``a, b < p``.

    The sum of two residues is below ``2**62`` so a single 64-bit addition
    followed by :func:`mod_p` is exact.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    return mod_p(a + b)


def mulmod(a, b):
    """Return ``(a * b) mod p`` for residues ``a, b < p``, without overflow.

    Standard 32-bit limb decomposition: with ``a = ah*2**32 + al`` and
    ``b = bh*2**32 + bl``::

        a*b = ah*bh*2**64 + (ah*bl + al*bh)*2**32 + al*bl

    Each partial product fits in 64 bits (limbs are < 2**32, and for the
    cross terms the inputs are < 2**61 so ``ah, bh < 2**29``), and the
    power-of-two factors reduce via ``2**61 === 1 (mod p)``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)

    ah = a >> _THIRTYTWO  # < 2**29 since a < 2**61
    al = a & _LOW32
    bh = b >> _THIRTYTWO
    bl = b & _LOW32

    # a*b = ah*bh*2**64 + (ah*bl + al*bh)*2**32 + al*bl.  Partial sums use
    # lazy reduction: only the final mod_p canonicalises.
    high = ah * bh  # < 2**58, coefficient of 2**64 === 2**3 (mod p)
    mid = ah * bl + al * bh  # < 2**62, coefficient of 2**32
    low = al * bl  # < 2**64

    # mid*2**32 = (mid >> 29)*2**61 + (mid & (2**29-1))*2**32
    #          === (mid >> 29) + ((mid & (2**29-1)) << 32)   (mod p)
    acc = (high << np.uint64(3)) + (mid >> np.uint64(29))
    acc += (mid & np.uint64((1 << 29) - 1)) << _THIRTYTWO
    # acc < 2**61 + 2**61 + 2**33 < 2**63; one fold keeps headroom for `low`.
    acc = (acc >> _EXP) + (acc & _P64)
    acc += (low >> _EXP) + (low & _P64)
    return mod_p(acc)


def horner_mod(coefficients, x):
    """Evaluate one or many polynomials at ``x`` modulo ``p`` by Horner's rule.

    ``coefficients`` is ordered from the highest-degree term to the constant
    term (as produced by the hash-family seed generators) and may be

    * a 1-D iterable/array of ``t`` residues — one polynomial, evaluated at
      ``x`` (scalar or array); the result has the shape of ``x``; or
    * a 2-D ``(r, t)`` ``uint64`` array — ``r`` polynomials sharing a degree,
      evaluated at every entry of ``x`` in one stacked pass; the result has
      shape ``(r,) + x.shape``.  This is the kernel behind
      :class:`repro.core.plan.HashPlan`: the loop runs ``t - 1`` times total
      instead of once per polynomial.

    Passing an existing ``uint64`` array avoids any per-call conversion
    (:class:`repro.hashing.families.PolynomialHash` stores one).
    """
    coefficients = np.asarray(coefficients, dtype=np.uint64)
    if coefficients.size == 0:
        raise ValueError("polynomial needs at least one coefficient")
    if coefficients.ndim > 2:
        raise ValueError("coefficients must be a 1-D or 2-D array")
    x = np.asarray(x, dtype=np.uint64)
    if coefficients.ndim == 1:
        acc = np.broadcast_to(coefficients[0], x.shape).copy()
        for coefficient in coefficients[1:]:
            acc = addmod(mulmod(acc, x), coefficient)
        return acc
    # Stacked form: column k holds every polynomial's degree-(t-1-k)
    # coefficient, broadcast as an (r, 1) addend against the (r, n) residues.
    stacked = np.broadcast_to(
        coefficients[:, 0].reshape(coefficients.shape[:1] + (1,) * x.ndim),
        coefficients.shape[:1] + x.shape,
    ).copy()
    for k in range(1, coefficients.shape[1]):
        column = coefficients[:, k].reshape(
            coefficients.shape[:1] + (1,) * x.ndim
        )
        stacked = addmod(mulmod(stacked, x), column)
    return stacked
