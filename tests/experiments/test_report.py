"""Unit tests for the report generator."""

from __future__ import annotations

import pytest

from repro.experiments.compare import to_csv
from repro.experiments.config import FIGURES, scaled_config
from repro.experiments.report import load_sweep_csv, main, render_report
from repro.experiments.runner import SweepResult, SweepSeries


def synthetic_result(scale="bench", figure="fig7a") -> SweepResult:
    config = scaled_config(FIGURES[figure], scale)
    series = []
    for index, ratio in enumerate(config.target_ratios):
        series.append(
            SweepSeries(
                target_ratio=ratio,
                target_size=int(config.union_size * ratio),
                sketch_counts=config.sketch_counts,
                errors=tuple(
                    0.5 / (count ** 0.5) + 0.01 * index
                    for count in config.sketch_counts
                ),
            )
        )
    return SweepResult(config=config, series=tuple(series), elapsed_seconds=1.0)


class TestCsvRoundTrip:
    def test_load_recovers_series(self, tmp_path):
        result = synthetic_result()
        path = tmp_path / "fig7a_bench.csv"
        path.write_text(to_csv(result))
        loaded = load_sweep_csv(path, "fig7a", "bench")
        assert len(loaded.series) == len(result.series)
        for original, recovered in zip(result.series, loaded.series):
            assert recovered.target_ratio == pytest.approx(original.target_ratio)
            assert recovered.sketch_counts == original.sketch_counts
            for a, b in zip(recovered.errors, original.errors):
                assert a == pytest.approx(b, abs=1e-6)

    def test_table_renders_from_loaded(self, tmp_path):
        result = synthetic_result()
        path = tmp_path / "fig7a_bench.csv"
        path.write_text(to_csv(result))
        loaded = load_sweep_csv(path, "fig7a", "bench")
        assert "Figure 7(a)" in loaded.as_table()


class TestRenderReport:
    def test_full_report(self, tmp_path):
        for figure in ("fig7a", "fig7b"):
            result = synthetic_result(figure=figure)
            (tmp_path / f"{figure}_bench.csv").write_text(to_csv(result))
        report = render_report(tmp_path, "bench")
        assert "Figure 7(a)" in report
        assert "Figure 7(b)" in report
        assert "fig8: no results file" in report

    def test_empty_directory(self, tmp_path):
        report = render_report(tmp_path, "bench")
        assert "No result CSVs found" in report

    def test_main_writes_file(self, tmp_path, capsys):
        (tmp_path / "fig7a_bench.csv").write_text(to_csv(synthetic_result()))
        out = tmp_path / "REPORT.md"
        assert main(
            ["--results", str(tmp_path), "--scale", "bench", "--out", str(out)]
        ) == 0
        assert out.is_file()
        assert "Figure 7(a)" in out.read_text()

    def test_main_prints_without_out(self, tmp_path, capsys):
        assert main(["--results", str(tmp_path), "--scale", "bench"]) == 0
        assert "Experiment report" in capsys.readouterr().out
