"""The set-union cardinality estimator (Section 3.3).

``estimate_union`` implements procedure ``SetUnionEstimator`` of Figure 5,
generalised to any number of streams: scan first-level bucket indices from
0 upward, at each index counting how many of the ``r`` parallel sketches
have a non-empty bucket for the combined stream; stop at the first index
where that count drops to at most ``f = (1+ε)·r / 8``.  At that index the
hit probability of a bucket is ``p = 1 − (1 − 1/R)^u`` with ``R = 2^(i+1)``
and ``u = |∪ᵢ Aᵢ|``, so inverting with the observed fraction ``p̂`` yields
the estimate ``log(1 − p̂) / log(1 − 1/R)``.

Only bucket totals are consulted — the union estimator never needs the
second-level structure, which is why the paper notes it could run on a
plain (counter-augmented) Flajolet-Martin synopsis.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.family import SketchFamily, check_same_coins
from repro.core.results import UnionEstimate

__all__ = ["estimate_union"]


def estimate_union(
    families: Sequence[SketchFamily], epsilon: float = 0.1
) -> UnionEstimate:
    """Estimate ``|A₁ ∪ … ∪ Aₙ|`` from the streams' sketch families.

    Parameters
    ----------
    families:
        One :class:`SketchFamily` per stream, all built from the same
        :class:`~repro.core.family.SketchSpec`.
    epsilon:
        Target relative error; enters the stopping threshold
        ``(1+ε)·r / 8``.  The number of sketches in the families governs
        the confidence actually achieved (``r = Θ(log(1/δ)/ε²)``).

    Returns
    -------
    UnionEstimate
        Estimate plus the level and non-empty fraction it derives from.
        An all-empty input yields an estimate of exactly ``0.0``.
    """
    if not (0 < epsilon < 1):
        raise ValueError("epsilon must be in (0, 1)")
    check_same_coins(*families)

    # Non-empty bucket counts for the combined stream, per level: the
    # bucket of the union is non-empty iff any stream's bucket is.  The
    # totals are the families' incrementally maintained (r, levels)
    # aggregates — no (r, levels, s, 2) slab is touched on this path.
    if len(families) == 1 and hasattr(families[0], "level_nonempty_counts"):
        # Single stream: the memoised per-level non-empty counts are the
        # statistic directly (same computation, cached per family version).
        non_empty_counts = families[0].level_nonempty_counts()
    else:
        combined_totals = families[0].level_totals().copy()
        for family in families[1:]:
            combined_totals += family.level_totals()
        non_empty_counts = (combined_totals > 0).sum(axis=0)  # (levels,)

    num_sketches = families[0].num_sketches
    threshold = (1.0 + epsilon) * num_sketches / 8.0

    # First level whose non-empty count drops to the threshold; if every
    # level stays above it, fall back to the last level (argmax over an
    # all-False condition would report index 0, hence the guard).
    num_levels = non_empty_counts.shape[0]
    below = non_empty_counts <= threshold
    level = int(np.argmax(below)) if bool(below.any()) else num_levels - 1

    count = int(non_empty_counts[level])
    fraction = count / num_sketches
    saturated = count == num_sketches
    if count == 0:
        value = 0.0
    else:
        # When the scan runs out of levels with *every* sketch still
        # non-empty (fraction == 1.0), the inversion formula degenerates to
        # log(0).  Saturate: evaluate at the largest observable fraction
        # short of 1 (a half-count continuity correction), which yields the
        # finite estimate R·ln(2r) — the smallest union size that would
        # plausibly fill all r buckets at this level — and flag the result
        # so callers know the synopsis was too small for the stream.
        effective = fraction
        if saturated:
            effective = (num_sketches - 0.5) / num_sketches
        scale = float(1 << (level + 1))  # R = 2^(level+1)
        # log1p keeps the denominator non-zero at the deepest levels,
        # where 1 - 1/R rounds to exactly 1.0 in float64.
        value = math.log1p(-effective) / math.log1p(-1.0 / scale)
    return UnionEstimate(
        value=value,
        level=level,
        non_empty_fraction=fraction,
        num_sketches=num_sketches,
        saturated=saturated,
    )
