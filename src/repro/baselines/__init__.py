"""Baseline synopses the paper compares against (all insert-only)."""

from repro.baselines.bjkst import BJKSTSketch
from repro.baselines.distinct_sampling import DistinctSampler
from repro.baselines.fm import FM_CORRECTION, FlajoletMartin
from repro.baselines.minhash import BottomKSketch, KMinsSignature, estimate_jaccard
from repro.baselines.mip_expressions import (
    estimate_expression_mip,
    estimate_union_mip,
)

__all__ = [
    "BJKSTSketch",
    "DistinctSampler",
    "FlajoletMartin",
    "FM_CORRECTION",
    "BottomKSketch",
    "KMinsSignature",
    "estimate_jaccard",
    "estimate_expression_mip",
    "estimate_union_mip",
]
