"""The set-difference cardinality estimator (Section 3.4).

``estimate_difference`` implements procedure ``SetDifferenceEstimator`` of
Figure 6.  Per sketch, the atomic estimator looks at the bucket index
chosen slightly above ``log |A ∪ B|``:

* if the bucket is not a singleton for ``A ∪ B`` → ``noEstimate``;
* otherwise the atomic estimate is 1 iff the bucket is a (non-empty)
  singleton for ``A`` and empty for ``B`` — the **Set-Difference Witness
  Condition**, whose conditional probability is exactly
  ``|A − B| / |A ∪ B|``.

Averaging the valid 0/1 observations and scaling by the union estimate
``û`` yields the estimate for ``|A − B|``.
"""

from __future__ import annotations

import numpy as np

from repro.core.checks import empty_mask, singleton_mask, singleton_union_mask
from repro.core.family import SketchFamily
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.sketch import TwoLevelHashSketch
from repro.core.witness import run_witness_estimator

__all__ = ["estimate_difference", "atomic_difference_estimate"]


def atomic_difference_estimate(
    sketch_a: TwoLevelHashSketch, sketch_b: TwoLevelHashSketch, level: int
) -> int | None:
    """One sketch pair's atomic observation (``AtomicDiffEstimator``).

    Returns ``None`` for ``noEstimate`` (the bucket is not usable), else
    ``1`` if a witness for ``A − B`` was found and ``0`` otherwise.
    Exposed mainly for tests and didactic use; the family-level estimator
    below evaluates the same logic vectorised.
    """
    from repro.core.checks import singleton_bucket, singleton_union_bucket

    if not singleton_union_bucket(sketch_a, sketch_b, level):
        return None
    found_witness = singleton_bucket(sketch_a, level) and sketch_b.bucket_total(level) == 0
    return 1 if found_witness else 0


def estimate_difference(
    family_a: SketchFamily,
    family_b: SketchFamily,
    epsilon: float = 0.1,
    union_estimate: float | UnionEstimate | None = None,
    pool_levels: int = 1,
) -> WitnessEstimate:
    """Estimate ``|A − B|`` from the two streams' sketch families.

    Parameters
    ----------
    family_a, family_b:
        Families built from the same :class:`~repro.core.family.SketchSpec`.
    epsilon:
        Target relative error.
    union_estimate:
        Optional pre-computed ``û ≈ |A ∪ B|``; computed internally when
        omitted.
    """

    def witness_masks(slabs: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        slab_a, slab_b = slabs
        valid = singleton_union_mask(slab_a, slab_b)
        witness = singleton_mask(slab_a) & empty_mask(slab_b)
        return valid, witness

    return run_witness_estimator(
        [family_a, family_b], witness_masks, epsilon, union_estimate,
        pool_levels=pool_levels,
    )
