"""Unit tests for the Flajolet-Martin baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fm import FM_CORRECTION, FlajoletMartin
from repro.errors import DomainError, IllegalDeletionError


class TestEstimation:
    def test_empty_estimates_zero(self):
        assert FlajoletMartin(num_sketches=16).estimate() == 0.0

    @pytest.mark.parametrize("true_count", [500, 5000, 50_000])
    def test_accuracy_within_fm_guarantees(self, true_count: int):
        rng = np.random.default_rng(true_count)
        elements = rng.choice(2**30, size=true_count, replace=False)
        fm = FlajoletMartin(num_sketches=64, seed=1)
        fm.insert_batch(elements)
        estimate = fm.estimate()
        # FM with r=64 averages is typically within ~30%; allow 2x slack.
        assert true_count / 2 < estimate < true_count * 2

    def test_duplicates_do_not_inflate(self):
        fm_once = FlajoletMartin(num_sketches=32, seed=2)
        fm_many = FlajoletMartin(num_sketches=32, seed=2)
        elements = np.arange(1000, dtype=np.uint64)
        fm_once.insert_batch(elements)
        for _ in range(5):
            fm_many.insert_batch(elements)
        assert fm_once.estimate() == fm_many.estimate()

    def test_correction_constant(self):
        assert FM_CORRECTION == pytest.approx(1.2928)

    def test_scalar_insert(self):
        fm = FlajoletMartin(num_sketches=8)
        fm.insert(123)
        assert fm.estimate() > 0


class TestLimitations:
    def test_deletion_raises(self):
        fm = FlajoletMartin(num_sketches=8)
        fm.insert(1)
        with pytest.raises(IllegalDeletionError):
            fm.delete(1)

    def test_domain_enforced(self):
        fm = FlajoletMartin(num_sketches=8, domain_bits=10)
        with pytest.raises(DomainError):
            fm.insert_batch(np.asarray([1 << 10], dtype=np.uint64))


class TestMerging:
    def test_or_merge_estimates_union(self):
        rng = np.random.default_rng(103)
        pool = rng.choice(2**30, size=8000, replace=False)
        fm_a = FlajoletMartin(num_sketches=64, seed=3)
        fm_b = FlajoletMartin(num_sketches=64, seed=3)
        fm_a.insert_batch(pool[:5000])
        fm_b.insert_batch(pool[3000:])
        merged = fm_a.merged_with(fm_b)
        estimate = merged.estimate()
        assert 8000 / 2 < estimate < 8000 * 2

    def test_merge_equals_single_pass(self):
        elements = np.arange(2000, dtype=np.uint64)
        fm_a = FlajoletMartin(num_sketches=16, seed=4)
        fm_b = FlajoletMartin(num_sketches=16, seed=4)
        fm_whole = FlajoletMartin(num_sketches=16, seed=4)
        fm_a.insert_batch(elements[:1000])
        fm_b.insert_batch(elements[1000:])
        fm_whole.insert_batch(elements)
        assert np.array_equal(fm_a.merged_with(fm_b).bits, fm_whole.bits)

    def test_merge_requires_same_coins(self):
        with pytest.raises(ValueError):
            FlajoletMartin(seed=1).merged_with(FlajoletMartin(seed=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            FlajoletMartin(num_sketches=0)
