"""Randomized multi-life schedules through the fault-injecting proxy.

Each seed drives one complete schedule: several sites observe random
update batches and ship them through a :class:`~tests.streams.net.faults.
FaultyTransport` that drops, duplicates, delays, and cuts frames, while
the coordinator is killed and restored from its checkpoint mid-run and
one site is restarted under a reused id.  Whatever the schedule did, the
surviving coordinator must be **bit-identical** to one flat
:class:`~repro.streams.engine.StreamEngine` fed the same updates — the
delta protocol's invariants (idempotent duplicates, gap detection,
retention until durable ack, incarnation-scoped numbering) leave no
failure mode that merely degrades accuracy.

A failing seed reproduces deterministically; the assertion message
carries it so CI logs are actionable.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.updates import Update

from tests.streams.net.faults import FaultyTransport

SHAPE = SketchShape(domain_bits=14, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=16, shape=SHAPE, seed=77)

TIMEOUT = 60.0
STREAMS = "ABC"
SITE_IDS = ("alpha", "beta", "gamma")

FAST_SEEDS = range(3)
SLOW_SEEDS = range(3, 15)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def make_client(site_id: str, port: int, seed: int) -> SiteClient:
    return SiteClient(
        site_id=site_id,
        spec=SPEC,
        port=port,
        connect_timeout=1.0,
        io_timeout=0.3,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


def random_batch(rng: random.Random, size: int) -> list[Update]:
    return [
        Update(
            stream=rng.choice(STREAMS),
            element=rng.randrange(1, 8000),
            delta=rng.choice([1, 1, 1, -1]),
        )
        for _ in range(size)
    ]


async def run_schedule(seed: int, tmp_path):
    """One full randomized life: returns (server, truth, proxy, clients)."""
    rng = random.Random(seed)
    truth = StreamEngine(SPEC)
    server = CoordinatorServer(
        SPEC,
        port=0,
        checkpoint_dir=tmp_path,
        checkpoint_every=rng.choice([1, 2, 3]),
    )
    await server.start()
    port = server.port
    proxy = FaultyTransport(
        port,
        random.Random(seed + 10_000),
        drop=0.08,
        duplicate=0.12,
        cut=0.08,
        delay=0.05,
        delay_seconds=0.02,
        max_faults=18,
    )
    await proxy.start()
    clients = {
        site_id: make_client(site_id, proxy.port, seed + i)
        for i, site_id in enumerate(SITE_IDS)
    }

    restarted_coordinator = False
    restarted_site = False
    rounds = rng.randrange(6, 10)
    for round_no in range(rounds):
        for site_id, client in clients.items():
            batch = random_batch(rng, rng.randrange(10, 30))
            client.observe_many(batch)
            truth.process_many(batch)
            if rng.random() < 0.7:
                await client.ship()
        if not restarted_coordinator and round_no == rounds // 2:
            # Coordinator life 2: killed, restored from the checkpoint,
            # back on the same port.  Applied-but-not-durable exports
            # are re-shipped from the sites' retained tails.
            await server.stop()
            server = CoordinatorServer.restore(
                tmp_path, port=port, checkpoint_every=rng.choice([1, 2])
            )
            await server.start()
            restarted_coordinator = True
        if not restarted_site and round_no == (2 * rounds) // 3:
            # Site life 2 under the same id: ship everything, make it
            # durable, then replace the process — the fresh incarnation
            # restarts numbering at 1 without shadowing the old life.
            victim = rng.choice(SITE_IDS)
            await clients[victim].ship()
            server.checkpoint()
            await clients[victim].close()
            clients[victim] = make_client(victim, proxy.port, seed + 99)
            restarted_site = True

    for client in clients.values():
        await client.ship()
    return server, truth, proxy, clients


def assert_schedule_converged(seed, server, truth, proxy, clients):
    context = (
        f"fault-harness seed={seed} faults="
        f"drop:{proxy.dropped} dup:{proxy.duplicated} "
        f"cut:{proxy.cut_connections} delay:{proxy.delayed}"
    )
    truth.flush()
    coordinator = server.coordinator
    assert coordinator.stream_names() == truth.stream_names(), context
    for name, family in truth.families().items():
        assert coordinator.families()[name] == family, f"{context} stream={name}"
    assert (
        coordinator.query_union(list(STREAMS), 0.25).value
        == truth.query_union(list(STREAMS), 0.25).value
    ), context
    assert (
        coordinator.query("(A - B) | C", 0.25).value
        == truth.query("(A - B) | C", 0.25).value
    ), context


def check_seed(seed: int, tmp_path) -> None:
    async def scenario():
        server, truth, proxy, clients = await run_schedule(seed, tmp_path)
        try:
            assert_schedule_converged(seed, server, truth, proxy, clients)
        finally:
            for client in clients.values():
                await client.close()
            await proxy.stop()
            await server.stop()

    run(scenario())


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_randomized_schedule_bit_identical(seed, tmp_path):
    check_seed(seed, tmp_path)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_randomized_schedule_bit_identical_slow(seed, tmp_path):
    check_seed(seed, tmp_path)


def test_duplicate_faults_fire_and_are_dropped():
    """Deterministic check that the proxy's faults are real: with
    ``duplicate=1.0`` every post-hello frame goes through twice, and the
    coordinator drops the copies idempotently."""

    async def scenario():
        server = CoordinatorServer(SPEC, port=0)
        await server.start()
        proxy = FaultyTransport(
            server.port, random.Random(1), duplicate=1.0, max_faults=4
        )
        await proxy.start()
        client = make_client("dup-site", proxy.port, seed=1)
        rng = random.Random(2)
        for _ in range(3):
            client.observe_many(random_batch(rng, 10))
            await client.ship()
        assert proxy.duplicated >= 1
        assert server.coordinator.duplicates_dropped >= 1
        assert server.coordinator.applied_sequence("dup-site") == 3
        await client.close()
        await proxy.stop()
        await server.stop()

    run(scenario())
