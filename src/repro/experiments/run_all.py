"""Command-line driver regenerating every figure of the paper.

Usage::

    python -m repro.experiments.run_all [--scale bench|medium|paper]
                                        [--figure fig7a fig7b fig8]
                                        [--out experiments_output]

Writes one text table per figure (and prints them), in the shape of the
published plots: trimmed-average relative error per (sketch count, target
size) cell.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments.compare import check_anchors, to_csv
from repro.experiments.config import FIGURES, scaled_config
from repro.experiments.runner import run_sweep

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Run the requested figures at the requested scale; write tables/CSVs."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("bench", "medium", "paper"),
        default="medium",
        help="run scale (see repro.experiments.config.scaled_config)",
    )
    parser.add_argument(
        "--figure",
        nargs="*",
        choices=sorted(FIGURES),
        default=sorted(FIGURES),
        help="which figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("experiments_output"),
        help="directory for the result tables",
    )
    args = parser.parse_args(argv)

    args.out.mkdir(parents=True, exist_ok=True)
    for name in args.figure:
        config = scaled_config(FIGURES[name], args.scale)
        print(f"== running {name} at scale {args.scale!r} "
              f"(u={config.union_size}, trials={config.trials}) ==")
        result = run_sweep(config, progress=lambda line: print("  " + line))
        table = result.as_table()
        print(table)
        print(f"  elapsed: {result.elapsed_seconds:.1f}s")
        for verdict in check_anchors(result):
            print(f"  {verdict.describe()}")
        output_path = args.out / f"{name}_{args.scale}.txt"
        output_path.write_text(table + "\n")
        csv_path = args.out / f"{name}_{args.scale}.csv"
        csv_path.write_text(to_csv(result))
        print(f"  wrote {output_path} and {csv_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
