"""Unit tests for the estimator result types."""

from __future__ import annotations

import pytest

from repro.core.results import UnionEstimate, WitnessEstimate


class TestUnionEstimate:
    def test_float_coercion(self):
        estimate = UnionEstimate(
            value=123.4, level=5, non_empty_fraction=0.1, num_sketches=64
        )
        assert float(estimate) == 123.4

    def test_frozen(self):
        estimate = UnionEstimate(1.0, 0, 0.0, 1)
        with pytest.raises(AttributeError):
            estimate.value = 2.0


class TestWitnessEstimate:
    def make(self, num_valid=10, num_witnesses=4):
        return WitnessEstimate(
            value=40.0,
            level=7,
            union_estimate=100.0,
            num_valid=num_valid,
            num_witnesses=num_witnesses,
            num_sketches=64,
        )

    def test_float_coercion(self):
        assert float(self.make()) == 40.0

    def test_witness_fraction(self):
        assert self.make().witness_fraction == pytest.approx(0.4)

    def test_witness_fraction_no_valid(self):
        assert self.make(num_valid=0, num_witnesses=0).witness_fraction == 0.0

    def test_frozen(self):
        estimate = self.make()
        with pytest.raises(AttributeError):
            estimate.level = 3
