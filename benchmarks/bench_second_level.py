"""Ablation: number of second-level hash functions ``s`` (Lemma 3.1).

The elementary property checks err with probability 2**-s, so very small
``s`` corrupts the witness statistics (multi-element buckets masquerade as
singletons), while beyond a modest size extra second-level hashes buy
nothing but space.  The bench sweeps ``s`` for a fixed intersection task.
"""

from __future__ import annotations

from _common import build_families, intersection_dataset

from repro.core.intersection import estimate_intersection
from repro.experiments.metrics import relative_error, trimmed_mean_error

SECOND_LEVEL_SIZES = (1, 2, 4, 8, 16, 32)
NUM_SKETCHES = 192
TRIALS = 10


def run_second_level_sweep():
    rows = []
    for s in SECOND_LEVEL_SIZES:
        errors = []
        for trial in range(TRIALS):
            dataset = intersection_dataset(seed=700 + trial, ratio=0.25)
            families = build_families(
                dataset, NUM_SKETCHES, num_second_level=s, seed=trial
            )
            truth = dataset.target_size
            estimate = estimate_intersection(families["A"], families["B"], 0.1)
            errors.append(relative_error(estimate.value, truth))
        rows.append((s, trimmed_mean_error(errors)))
    return rows


def test_second_level_hashes(benchmark):
    rows = benchmark.pedantic(run_second_level_sweep, rounds=1, iterations=1)
    print()
    print("Second-level hash-count ablation, |A ∩ B| at r=192 sketches")
    print(f"{'s':>4s} {'trimmed error':>14s}")
    for s, error in rows:
        print(f"{s:4d} {100 * error:13.1f}%")
    print("paper: s = Θ(log 1/δ) suffices for the property checks (Lemma 3.1)")

    by_s = dict(rows)
    # Moderate s must work; growing it further must not materially help,
    # i.e. the error plateaus (checks already succeed w.h.p.).
    assert by_s[16] < 0.5
    assert abs(by_s[32] - by_s[16]) < 0.25
