"""Figure 7(b): average relative error for |A − B| vs number of sketches.

Same sweep as Figure 7(a) with the set-difference target.  The paper
highlights that the smallest target (|A − B| = u/32) starts near 48%
error at few sketches and that all series reach ~10% at 512 sketches;
at bench scale the same ordering and decay must hold.
"""

from __future__ import annotations

from _common import print_figure

from repro.experiments.config import FIGURES, scaled_config
from repro.experiments.runner import run_sweep


def test_fig7b_difference(benchmark):
    config = scaled_config(FIGURES["fig7b"], "bench")
    result = benchmark.pedantic(run_sweep, args=(config,), rounds=1, iterations=1)
    print_figure(result)

    for series in result.series:
        assert series.errors[-1] <= series.errors[0] + 0.05
    largest_target = result.series[0]
    assert largest_target.errors[-1] < 0.35
    # Larger targets are easier at the final sketch count (allowing noise).
    assert result.series[0].errors[-1] <= result.series[-1].errors[-1] + 0.15
