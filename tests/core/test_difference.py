"""Unit tests for the set-difference estimator (Section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.difference import atomic_difference_estimate, estimate_difference
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.core.witness import choose_witness_level
from repro.errors import EstimationError, IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=24, num_second_level=12, independence=8)


def two_families(only_a, shared, only_b, num_sketches=256, seed=0):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    family_a, family_b = spec.build(), spec.build()
    family_a.update_batch(np.concatenate([only_a, shared]).astype(np.uint64))
    family_b.update_batch(np.concatenate([shared, only_b]).astype(np.uint64))
    return family_a, family_b


def controlled_pools(rng, u, diff_fraction):
    pool = rng.choice(2**24, size=u, replace=False)
    num_diff = int(u * diff_fraction)
    rest = u - num_diff
    only_a = pool[:num_diff]
    shared = pool[num_diff : num_diff + rest // 2]
    only_b = pool[num_diff + rest // 2 :]
    return only_a, shared, only_b


class TestAccuracy:
    @pytest.mark.parametrize("diff_fraction", [0.5, 0.25])
    def test_moderate_targets(self, diff_fraction: float):
        rng = np.random.default_rng(50)
        only_a, shared, only_b = controlled_pools(rng, 4096, diff_fraction)
        family_a, family_b = two_families(only_a, shared, only_b, 512)
        truth = len(only_a)
        estimate = estimate_difference(family_a, family_b, 0.1)
        assert abs(estimate.value - truth) / truth < 0.5

    def test_b_empty_means_difference_is_a(self):
        rng = np.random.default_rng(51)
        pool = rng.choice(2**24, size=2048, replace=False)
        family_a, family_b = two_families(pool, pool[:0], pool[:0], 256)
        estimate = estimate_difference(family_a, family_b, 0.1)
        assert abs(estimate.value - 2048) / 2048 < 0.35

    def test_identical_streams_estimate_zero(self):
        rng = np.random.default_rng(52)
        pool = rng.choice(2**24, size=2048, replace=False)
        family_a, family_b = two_families(pool[:0], pool, pool[:0], 256)
        estimate = estimate_difference(family_a, family_b, 0.1)
        # No witness can exist: every valid singleton is in both streams.
        assert estimate.value == 0.0
        assert estimate.num_witnesses == 0

    def test_both_empty(self):
        family_a, family_b = two_families(
            np.array([], dtype=np.uint64),
            np.array([], dtype=np.uint64),
            np.array([], dtype=np.uint64),
        )
        estimate = estimate_difference(family_a, family_b)
        assert estimate.value == 0.0

    def test_deletions_respected(self):
        """Deleting the shared elements from B turns A - B into A."""
        rng = np.random.default_rng(53)
        only_a, shared, only_b = controlled_pools(rng, 2048, 0.25)
        family_a, family_b = two_families(only_a, shared, only_b, 512)
        family_b.update_batch(
            shared.astype(np.uint64), np.full(len(shared), -1)
        )
        truth = len(only_a) + len(shared)
        estimate = estimate_difference(family_a, family_b, 0.1)
        assert abs(estimate.value - truth) / truth < 0.4


class TestDiagnostics:
    def test_result_fields(self):
        rng = np.random.default_rng(54)
        only_a, shared, only_b = controlled_pools(rng, 2048, 0.5)
        family_a, family_b = two_families(only_a, shared, only_b)
        estimate = estimate_difference(family_a, family_b, 0.1)
        assert estimate.num_sketches == 256
        assert 0 <= estimate.num_witnesses <= estimate.num_valid <= 256
        assert estimate.union_estimate > 0
        assert estimate.witness_fraction == pytest.approx(
            estimate.num_witnesses / estimate.num_valid
        )

    def test_level_matches_formula(self):
        rng = np.random.default_rng(55)
        only_a, shared, only_b = controlled_pools(rng, 2048, 0.5)
        family_a, family_b = two_families(only_a, shared, only_b)
        epsilon = 0.1
        estimate = estimate_difference(family_a, family_b, epsilon)
        expected = choose_witness_level(estimate.union_estimate, epsilon, 64)
        assert estimate.level == expected

    def test_union_estimate_override(self):
        rng = np.random.default_rng(56)
        only_a, shared, only_b = controlled_pools(rng, 2048, 0.5)
        family_a, family_b = two_families(only_a, shared, only_b)
        union = estimate_union([family_a, family_b], 0.1 / 3)
        with_override = estimate_difference(
            family_a, family_b, 0.1, union_estimate=union
        )
        without = estimate_difference(family_a, family_b, 0.1)
        assert with_override.value == pytest.approx(without.value)


class TestAtomicEstimator:
    def test_matches_vectorised_masks(self):
        rng = np.random.default_rng(57)
        only_a, shared, only_b = controlled_pools(rng, 1024, 0.5)
        family_a, family_b = two_families(only_a, shared, only_b, 64)
        estimate = estimate_difference(family_a, family_b, 0.1)
        level = estimate.level
        num_valid = 0
        num_witnesses = 0
        for index in range(64):
            atomic = atomic_difference_estimate(
                family_a.sketch(index), family_b.sketch(index), level
            )
            if atomic is not None:
                num_valid += 1
                num_witnesses += atomic
        assert num_valid == estimate.num_valid
        assert num_witnesses == estimate.num_witnesses

    def test_no_estimate_on_empty_bucket(self):
        spec = SketchSpec(num_sketches=1, shape=SHAPE, seed=1)
        family_a, family_b = spec.build(), spec.build()
        assert (
            atomic_difference_estimate(family_a.sketch(0), family_b.sketch(0), 5)
            is None
        )


class TestValidation:
    def test_bad_epsilon(self):
        family_a, family_b = two_families(
            np.array([1]), np.array([2]), np.array([3])
        )
        with pytest.raises(ValueError):
            estimate_difference(family_a, family_b, 0.0)

    def test_mismatched_specs(self):
        spec_a = SketchSpec(num_sketches=8, shape=SHAPE, seed=1)
        spec_b = SketchSpec(num_sketches=8, shape=SHAPE, seed=2)
        with pytest.raises(IncompatibleSketchesError):
            estimate_difference(spec_a.build(), spec_b.build())

    def test_estimation_error_when_no_valid_observation(self):
        """With a single sketch and a hostile level the singleton test can
        fail for every sketch; the estimator must say so, not guess."""
        spec = SketchSpec(num_sketches=1, shape=SHAPE, seed=3)
        family_a, family_b = spec.build(), spec.build()
        rng = np.random.default_rng(58)
        pool = rng.choice(2**24, size=4096, replace=False).astype(np.uint64)
        family_a.update_batch(pool)
        family_b.update_batch(pool[:10])
        # Force the chosen bucket low (crowded) via a tiny union estimate.
        with pytest.raises(EstimationError):
            estimate_difference(family_a, family_b, 0.1, union_estimate=2.0)
