"""Incremental continuous-query engine tests.

The contract under test: everything the cached / revalidated / batched
paths return is **bit-identical** to a cold ``use_cache=False``
recomputation, across dirty/clean transitions, batch grouping, sharded
synchronisation, and checkpoint restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.continuous import ContinuousQueryProcessor
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=18, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=64, shape=SHAPE, seed=55)

EXPRESSIONS = (
    "A & B",
    "A - B",
    "B - A",
    "A | B",
    "(A - B) | (B - A)",
    "A",
    "(A & B) - C",
)


def loaded_engine(seed: int = 77) -> StreamEngine:
    engine = StreamEngine(SPEC)
    rng = np.random.default_rng(seed)
    pool = rng.choice(2**18, size=1200, replace=False)
    for element in pool[:800]:
        engine.process(Update("A", int(element), 1))
    for element in pool[400:]:
        engine.process(Update("B", int(element), 1))
    for element in pool[200:600]:
        engine.process(Update("C", int(element), 1))
    engine.flush()
    return engine


class TestRevalidation:
    def test_cached_equals_cold_when_clean(self):
        engine = loaded_engine()
        for expression in EXPRESSIONS:
            cached = engine.query(expression, 0.2)
            cold = engine.query(expression, 0.2, use_cache=False)
            assert cached == cold

    def test_unrelated_update_revalidates_not_recomputes(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        engine.process(Update("D", 123, 1))
        engine.flush()
        again = engine.query("A & B", 0.2)
        assert again is first  # served after an O(streams) version check
        assert engine.query_stats().revalidations >= 1
        assert again == engine.query("A & B", 0.2, use_cache=False)

    def test_participating_update_recomputes_bit_identically(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        engine.process(Update("A", 9999, 1))
        second = engine.query("A & B", 0.2)
        assert second is not first
        assert second == engine.query("A & B", 0.2, use_cache=False)

    def test_dirty_clean_transitions(self):
        engine = loaded_engine()
        rng = np.random.default_rng(5)
        for step in range(12):
            stream = ("A", "B", "C", "D")[step % 4]
            engine.process(Update(stream, int(rng.integers(2**18)), 1))
            expression = EXPRESSIONS[step % len(EXPRESSIONS)]
            cached = engine.query(expression, 0.2)
            assert cached == engine.query(expression, 0.2, use_cache=False)

    def test_deletions_also_invalidate(self):
        engine = loaded_engine()
        engine.query("A - B", 0.2)
        engine.process(Update("A", 9999, 1))
        engine.flush()
        engine.process(Update("A", 9999, -1))
        cached = engine.query("A - B", 0.2)
        assert cached == engine.query("A - B", 0.2, use_cache=False)


class TestUnionCache:
    def test_repeat_union_is_cached(self):
        engine = loaded_engine()
        first = engine.query_union(["A", "B"], 0.2)
        assert engine.query_union(["B", "A"], 0.2) is first
        assert engine.query_stats().union_cache_hits >= 1

    def test_union_matches_cold(self):
        from repro.core.union import estimate_union

        engine = loaded_engine()
        cached = engine.query_union(["A", "B"], 0.2)
        cold = estimate_union(
            [engine.family("A"), engine.family("B")], 0.2
        )
        assert cached == cold

    def test_union_revalidates_across_unrelated_updates(self):
        engine = loaded_engine()
        first = engine.query_union(["A", "B"], 0.2)
        engine.process(Update("D", 5, 1))
        engine.flush()
        assert engine.query_union(["A", "B"], 0.2) is first
        assert engine.query_stats().union_revalidations >= 1

    def test_shared_with_expression_subestimates(self):
        engine = loaded_engine()
        # 0.75 / 3 == 0.25 exactly in binary floating point, so the union
        # sub-estimate's cache key collides with a direct 0.25 union query.
        estimate = engine.query("A & B", 0.75)
        union = engine.query_union(["A", "B"], 0.25)
        assert float(union) == estimate.union_estimate
        stats = engine.query_stats()
        assert stats.union_cache_hits >= 1  # query_union reused the entry

    def test_bypass(self):
        engine = loaded_engine()
        first = engine.query_union(["A", "B"], 0.2)
        bypassed = engine.query_union(["A", "B"], 0.2, use_cache=False)
        assert bypassed is not first
        assert bypassed == first


class TestQueryMany:
    def test_matches_single_queries_cold(self):
        engine = loaded_engine()
        batch = engine.query_many(EXPRESSIONS, 0.2, use_cache=False)
        for expression, estimate in zip(EXPRESSIONS, batch):
            assert estimate == engine.query(expression, 0.2, use_cache=False)

    def test_matches_single_queries_cached(self):
        engine = loaded_engine()
        batch = engine.query_many(EXPRESSIONS, 0.2)
        for expression, estimate in zip(EXPRESSIONS, batch):
            assert estimate == engine.query(expression, 0.2, use_cache=False)
            assert engine.query(expression, 0.2) is estimate  # cache shared

    def test_groups_by_stream_set(self):
        engine = loaded_engine()
        engine.query_many(EXPRESSIONS, 0.2, use_cache=False)
        stats = engine.query_stats()
        # {A,B} x5, {A} and {A,B,C} -> three shared evaluation groups
        assert stats.batch_groups == 3
        assert stats.batch_queries == len(EXPRESSIONS)

    def test_pooling_parity(self):
        engine = loaded_engine()
        pooled = engine.query_many(["A - B"], 0.2, pool_levels=3)[0]
        assert pooled == engine.query(
            "A - B", 0.2, pool_levels=3, use_cache=False
        )

    def test_empty_streams_batch(self):
        engine = StreamEngine(SPEC)
        estimates = engine.query_many(["X & Y", "X - Y"], 0.2)
        assert [estimate.value for estimate in estimates] == [0.0, 0.0]

    def test_validation(self):
        engine = loaded_engine()
        with pytest.raises(ValueError):
            engine.query_many(["A"], epsilon=1.5)
        with pytest.raises(ValueError):
            engine.query_many(["A"], 0.2, pool_levels=0)


class TestContinuousBatching:
    def test_shared_tick_matches_cold_queries(self):
        engine = StreamEngine(SPEC)
        processor = ContinuousQueryProcessor(engine)
        for index, expression in enumerate(EXPRESSIONS):
            processor.register(f"q{index}", expression, epsilon=0.2, every=400)
        processor.register("coarse", "A | C", epsilon=0.3, every=400)
        rng = np.random.default_rng(11)
        pool = rng.choice(2**18, size=1200, replace=False)
        streams = ("A", "B", "C")
        for index, element in enumerate(pool):
            processor.process(
                Update(streams[index % 3], int(element), 1)
            )
        for index, expression in enumerate(EXPRESSIONS):
            query = processor[f"q{index}"]
            assert len(query.history) == 3  # ticks at 400/800/1200
            latest = query.latest
            assert latest.estimate == engine.query(
                expression, 0.2, use_cache=False
            )
        assert processor["coarse"].latest.estimate == engine.query(
            "A | C", 0.3, use_cache=False
        )

    def test_max_history_ring_buffer(self):
        engine = StreamEngine(SPEC)
        processor = ContinuousQueryProcessor(engine)
        processor.register("bounded", "A", epsilon=0.2, every=10, max_history=4)
        processor.register("unbounded", "A", epsilon=0.2, every=10,
                           max_history=None)
        rng = np.random.default_rng(12)
        for element in rng.choice(2**18, size=100, replace=False):
            processor.process(Update("A", int(element), 1))
        bounded = processor["bounded"]
        unbounded = processor["unbounded"]
        assert len(unbounded.history) == 10
        assert len(bounded.history) == 4
        # the *newest* observations are kept
        assert bounded.history == unbounded.history[-4:]
        assert bounded.latest.at_update == 100

    def test_alerts_trimmed_too(self):
        engine = StreamEngine(SPEC)
        processor = ContinuousQueryProcessor(engine)
        fired = []
        # realert_every=1 pages on every breaching evaluation (alerts are
        # edge-triggered by default), so the alert log actually fills.
        processor.register(
            "alerting", "A", epsilon=0.2, every=10, threshold=0.5,
            on_alert=lambda query, observation: fired.append(observation),
            max_history=3, realert_every=1,
        )
        rng = np.random.default_rng(13)
        for element in rng.choice(2**18, size=80, replace=False):
            processor.process(Update("A", int(element), 1))
        query = processor["alerting"]
        assert len(query.alerts) == 3
        assert len(fired) == 8  # callback saw every breach
        assert query.alerts == fired[-3:]

    def test_max_history_validation(self):
        processor = ContinuousQueryProcessor(StreamEngine(SPEC))
        with pytest.raises(ValueError):
            processor.register("bad", "A", max_history=0)


class TestShardedParity:
    def test_sharded_queries_match_flat_engine(self):
        from repro.streams.sharded import ShardedEngine

        flat = StreamEngine(SPEC)
        sharded = ShardedEngine(SPEC, num_shards=2, executor="serial")
        rng = np.random.default_rng(21)
        pool = rng.choice(2**18, size=600, replace=False)
        for index, element in enumerate(pool):
            update = Update("A" if index % 2 else "B", int(element), 1)
            flat.process(update)
            sharded.process(update)
        for expression in ("A & B", "A - B"):
            assert sharded.query(expression, 0.2) == flat.query(
                expression, 0.2, use_cache=False
            )
        assert sharded.query_union(["A", "B"], 0.2) == flat.query_union(
            ["A", "B"], 0.2, use_cache=False
        )
        # repeat queries hit the merged engine's cache
        first = sharded.query("A & B", 0.2)
        assert sharded.query("A & B", 0.2) is first
        assert sharded.query_stats().cache_hits >= 1

    def test_cache_survives_checkpoint_restore(self, tmp_path):
        from repro.streams.checkpoint import checkpoint_engine, restore_engine

        engine = loaded_engine()
        expected = engine.query("A & B", 0.2, use_cache=False)
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        assert restored.query("A & B", 0.2) == expected
        assert restored.query("A & B", 0.2, use_cache=False) == expected


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
