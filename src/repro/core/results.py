"""Structured estimator results.

Every estimator returns a small frozen dataclass instead of a bare float so
that callers (and the experiment harness) can inspect *how* the estimate
was produced — the level the estimator settled on, how many sketches
yielded valid atomic observations, and so on.  The objects coerce to
``float`` for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["UnionEstimate", "WitnessEstimate"]


@dataclass(frozen=True)
class UnionEstimate:
    """Result of the set-union estimator (Section 3.3).

    Attributes
    ----------
    value:
        The cardinality estimate for ``|A ∪ B|`` (or an n-ary union).
    level:
        The first-level bucket index the scan settled on — the smallest
        index whose non-empty fraction fell below the ``(1+ε)/8``
        threshold.
    non_empty_fraction:
        The observed fraction ``p̂`` of non-empty buckets at that level.
    num_sketches:
        Number of sketches averaged over (the ``r`` of the analysis).
    saturated:
        True when the level scan exhausted every first-level bucket index
        with all ``r`` sketches still non-empty (``p̂ == 1``).  The
        inversion formula is undefined there, so ``value`` is the
        saturation floor ``≈ R·ln(2r)`` — treat it as "at least this
        large" and re-plan the synopsis (more levels / larger domain).
    """

    value: float
    level: int
    non_empty_fraction: float
    num_sketches: int
    saturated: bool = False

    def __float__(self) -> float:
        return self.value


@dataclass(frozen=True)
class WitnessEstimate:
    """Result of a witness-based estimator (Sections 3.4, 3.5, 4).

    Attributes
    ----------
    value:
        The cardinality estimate for ``|E|``.
    level:
        The first-level bucket index ``⌈log₂(β·û/(1−ε))⌉`` used.
    union_estimate:
        The union estimate ``û`` the witness fraction was scaled by.
    num_valid:
        Number of sketches whose chosen bucket passed the singleton-union
        test (the ``r'`` valid atomic observations).
    num_witnesses:
        Among the valid observations, how many satisfied the witness
        condition for the operator/expression.
    num_sketches:
        Total number of sketches examined (``r``).
    """

    value: float
    level: int
    union_estimate: float
    num_valid: int
    num_witnesses: int
    num_sketches: int

    def __float__(self) -> float:
        return self.value

    @property
    def witness_fraction(self) -> float:
        """The ``p̂ = num_witnesses / num_valid`` ratio (0 if no valid obs)."""
        if self.num_valid == 0:
            return 0.0
        return self.num_witnesses / self.num_valid
