"""Checkpoint manifest migration and extra-metadata round-trips.

A version-1 checkpoint (raw stream-name files, no ``stream_files``
mapping, no ``extra``) must restore into every modern consumer — a flat
engine, a :class:`~repro.streams.net.coordinator.CoordinatorServer`,
and a factory-built :class:`~repro.streams.sharded.ShardedEngine` fold
target — and re-checkpointing then *migrates* it to the current format.
The ``extra`` mapping (per-site sequence map, uplink state) must ride
unchanged through :func:`~repro.streams.checkpoint.
checkpoint_sharded_engine`, i.e. through a ShardedEngine leaf of a
federation tree, not just the flat writer.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.checkpoint import (
    CheckpointError,
    checkpoint_sharded_engine,
    read_checkpoint_extra,
    read_checkpoint_spec,
    restore_engine,
    restore_sharded_engine,
)
from repro.streams.distributed import StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.sharded import ShardedEngine
from repro.streams.updates import Update, insertions

SHAPE = SketchShape(domain_bits=16, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=32, shape=SHAPE, seed=9)


def loaded_engine() -> StreamEngine:
    engine = StreamEngine(SPEC)
    rng = np.random.default_rng(123)
    for stream in ("A", "B"):
        for element in rng.integers(0, 2**16, size=300):
            engine.process(Update(stream, int(element), 1))
    engine.flush()
    return engine


def write_v1_checkpoint(directory, engine: StreamEngine) -> None:
    """A checkpoint exactly as format version 1 wrote it."""
    (directory / "streams").mkdir(parents=True)
    for name in engine.stream_names():
        (directory / "streams" / f"{name}.sketch").write_bytes(
            engine.family(name).to_bytes()
        )
    (directory / "manifest.json").write_text(
        json.dumps(
            {
                "format_version": 1,
                "spec": SPEC.to_json_dict(),
                "streams": engine.stream_names(),
                "updates_processed": engine.updates_processed,
            }
        )
    )


class TestV1Migration:
    def test_v1_restores_into_sharded_fold_target(self, tmp_path):
        """v1 checkpoint → CoordinatorServer.restore with an
        engine_factory: the migration path a leaf upgraded in place
        takes."""
        engine = loaded_engine()
        write_v1_checkpoint(tmp_path, engine)
        server = CoordinatorServer.restore(
            tmp_path,
            engine_factory=lambda spec: ShardedEngine(
                spec, num_shards=2, executor="serial"
            ),
        )
        fold = server.coordinator.fold_engine
        assert isinstance(fold, ShardedEngine)
        assert fold.updates_processed == engine.updates_processed
        for name in engine.stream_names():
            assert server.coordinator.families()[name] == engine.family(name)
        assert (
            server.query_union(["A", "B"], 0.25).value
            == engine.query_union(["A", "B"], 0.25).value
        )
        fold.close()

    def test_recheckpoint_migrates_v1_to_current_format(self, tmp_path):
        """Restoring a v1 checkpoint and checkpointing again writes the
        current manifest format (stream_files mapping, shard layout)."""
        engine = loaded_engine()
        v1 = tmp_path / "v1"
        write_v1_checkpoint(v1, engine)
        server = CoordinatorServer.restore(
            v1,
            engine_factory=lambda spec: ShardedEngine(
                spec, num_shards=2, executor="serial"
            ),
        )
        server._checkpoint_dir = tmp_path / "v2"
        server.checkpoint()
        manifest = json.loads((tmp_path / "v2" / "manifest.json").read_text())
        assert manifest["format_version"] == 2
        assert manifest["shards"] == 2
        # Slices are keyed per shard in the v2 mapping.
        assert all(key.startswith("shard") for key in manifest["stream_files"])
        assert manifest["stream_files"]
        restored = restore_engine(tmp_path / "v2")
        for name in engine.stream_names():
            assert restored.family(name) == engine.family(name)
        server.coordinator.fold_engine.close()

    def test_v1_has_no_extra_and_no_spec_surprises(self, tmp_path):
        engine = loaded_engine()
        write_v1_checkpoint(tmp_path, engine)
        assert read_checkpoint_extra(tmp_path) == {}
        assert read_checkpoint_spec(tmp_path) == SPEC


class TestReadCheckpointSpec:
    def test_reads_spec_without_restoring(self, tmp_path):
        with ShardedEngine(SPEC, num_shards=2, executor="serial") as engine:
            engine.process_many(insertions("S", range(50)))
            checkpoint_sharded_engine(engine, tmp_path)
        assert read_checkpoint_spec(tmp_path) == SPEC

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint_spec(tmp_path / "nope")

    def test_unusable_spec_raises(self, tmp_path):
        engine = loaded_engine()
        write_v1_checkpoint(tmp_path, engine)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["spec"] = {"not": "a spec"}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError):
            read_checkpoint_spec(tmp_path)


class TestExtraThroughShardedLeaf:
    def test_extra_round_trips_through_sharded_writer(self, tmp_path):
        """The extra mapping rides a sharded checkpoint verbatim and the
        counters still restore both sharded and flat."""
        extra = {
            "site_sequences": {"s1": {"inc-a": 3, "inc-b": 1}},
            "uplink": {"site_id": "leaf", "sequence": 2},
        }
        with ShardedEngine(SPEC, num_shards=3, executor="serial") as engine:
            engine.process_many(insertions("A", range(200)))
            engine.process_many(insertions("B", range(100, 260)))
            checkpoint_sharded_engine(engine, tmp_path, extra=extra)
            merged = engine.families()
        assert read_checkpoint_extra(tmp_path) == extra
        flat = restore_engine(tmp_path)
        for name, family in merged.items():
            assert flat.family(name) == family
        with restore_sharded_engine(tmp_path, executor="serial") as again:
            for name, family in merged.items():
                assert again.family(name) == family

    def test_sharded_leaf_checkpoint_restores_uplink_state(self, tmp_path):
        """Full loop through a ShardedEngine-leaf CoordinatorServer:
        checkpoint persists site sequences + uplink state in extra, and
        restore rebuilds both over a fresh sharded fold."""

        async def scenario():
            leaf = CoordinatorServer(
                SPEC,
                port=0,
                checkpoint_dir=tmp_path,
                engine_factory=lambda spec: ShardedEngine(
                    spec, num_shards=2, executor="serial"
                ),
                parent_port=65_000,  # never dialled in this test
                uplink_id="leaf",
            )
            site = StreamSite("s1", SPEC)
            site.observe_many(insertions("A", range(150)))
            leaf.coordinator.collect(site.export())
            leaf.checkpoint()

            extra = read_checkpoint_extra(tmp_path)
            assert extra["site_sequences"] == {
                "s1": {site.incarnation: 1}
            }
            assert extra["uplink"]["site_id"] == "leaf"
            assert extra["uplink"]["sequence"] == 1  # cut by checkpoint()
            assert extra["uplink"]["retained"], "export retained until ack"

            restored = CoordinatorServer.restore(
                tmp_path,
                engine_factory=lambda spec: ShardedEngine(
                    spec, num_shards=2, executor="serial"
                ),
                parent_port=65_000,
                uplink_options=dict(max_retries=0),
            )
            assert isinstance(
                restored.coordinator.fold_engine, ShardedEngine
            )
            assert (
                restored.uplink.site.incarnation
                == leaf.uplink.site.incarnation
            )
            assert restored.uplink.site.sequence == 1
            assert restored.uplink.site.retained_exports == 1
            # The retained export is byte-identical to the pre-crash cut.
            original = leaf.uplink.site.exports_after(0)[0]
            replayed = restored.uplink.site.exports_after(0)[0]
            assert replayed.payloads == dict(original.payloads)
            assert (
                restored.coordinator.applied_sequence(
                    "s1", site.incarnation
                )
                == 1
            )
            leaf.coordinator.fold_engine.close()
            restored.coordinator.fold_engine.close()

        asyncio.run(asyncio.wait_for(scenario(), 30))
