"""BJKST distinct-count estimator (Bar-Yossef et al., RANDOM 2002).

The paper cites this as the state-of-the-art distinct-element counter it
matches for the union case.  The algorithm keeps the set of (hashed)
elements whose hash level ``LSB(h(e))`` is at least a rising threshold
``z``; when the kept set exceeds its budget, ``z`` increases and lower-
level elements are discarded.  The estimate is ``|kept| * 2**z``.

Compared to Flajolet-Martin bit vectors, BJKST gives an (ε, δ) guarantee
with budget ``O(1/ε²)``; like every insert-only synopsis in this module
it cannot process deletions (discarded elements would have to be
recovered by rescanning) — which is the gap the 2-level hash sketch
closes.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import _draw_family_hashes
from repro.core.sketch import SketchShape
from repro.errors import IllegalDeletionError
from repro.hashing.lsb import lsb

__all__ = ["BJKSTSketch"]


class BJKSTSketch:
    """One BJKST distinct-count synopsis over an insertion stream."""

    def __init__(
        self, epsilon: float = 0.1, seed: int = 0, domain_bits: int = 30
    ) -> None:
        if not (0.0 < epsilon < 1.0):
            raise ValueError("epsilon must lie in (0, 1)")
        self.epsilon = epsilon
        self.seed = seed
        self.domain_bits = domain_bits
        #: Kept-set budget ~ c/ε²; c = 24 is a conventional constant.
        self.capacity = max(8, int(np.ceil(24.0 / epsilon**2)))
        shape = SketchShape(domain_bits=domain_bits)
        self._hash = _draw_family_hashes(seed, 0, 1, shape)[0].first_level
        self.threshold = 0
        self._kept: dict[int, int] = {}  # element -> level

    # -- maintenance ---------------------------------------------------------

    def insert(self, element: int) -> None:
        """Process one element insertion."""
        element = int(element)
        level = lsb(self._hash(element))
        if level < self.threshold or element in self._kept:
            return
        self._kept[element] = level
        while len(self._kept) > self.capacity:
            self.threshold += 1
            self._kept = {
                kept: kept_level
                for kept, kept_level in self._kept.items()
                if kept_level >= self.threshold
            }

    def insert_batch(self, elements) -> None:
        """Insert many elements (vectorised hashing, same semantics as insert)."""
        values = np.asarray(elements, dtype=np.uint64)
        if values.size == 0:
            return
        hashed = self._hash(values)
        from repro.hashing.lsb import lsb_array

        levels = lsb_array(hashed)
        for element, level in zip(values, levels):
            if level < self.threshold:
                continue
            element = int(element)
            if element in self._kept:
                continue
            self._kept[element] = int(level)
            while len(self._kept) > self.capacity:
                self.threshold += 1
                self._kept = {
                    kept: kept_level
                    for kept, kept_level in self._kept.items()
                    if kept_level >= self.threshold
                }

    def delete(self, element: int) -> None:
        """BJKST discards elements it cannot recover — no deletions."""
        raise IllegalDeletionError(
            "the BJKST synopsis supports insertions only; use "
            "TwoLevelHashSketch for update streams"
        )

    # -- estimation ---------------------------------------------------------

    def estimate_distinct(self) -> float:
        """``|kept| * 2**threshold``."""
        return float(len(self._kept) * (1 << self.threshold))

    @property
    def kept_size(self) -> int:
        return len(self._kept)
