"""Windowed federation: a 2-level tree answering windowed queries.

The acceptance scenario: two windowed leaf coordinators with two
windowed sites each, fault-injecting proxies on both hops, and one leaf
restarted from its (windowed) checkpoint mid-run.  Exports are cut per
bucket and stamped with the shipping site's watermark, so every delta
folds into its true bucket at each fold point.  At every bucket
boundary the root's windowed 3-stream expression must be
**bit-identical** to the same query on a flat engine fed the
concatenated trace through a :class:`SlidingWindowDriver` — whole-bucket
expiry at the tree and per-update expiry at the driver meet exactly at
boundaries, and linearity makes the tree's shape (and its failures)
invisible.
"""

from __future__ import annotations

import asyncio
import random

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.distributed import StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.updates import Update
from repro.streams.windows import SlidingWindowDriver

from tests.streams.net.faults import FaultyTransport

SHAPE = SketchShape(domain_bits=14, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=16, shape=SHAPE, seed=41)

TIMEOUT = 60.0
STREAMS = "ABC"
SPAN = 12.0
WIDTH = 3.0
NUM_BUCKETS = 4
EXPR = "(A & B) - C"


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def windowed_factory(spec: SketchSpec) -> StreamEngine:
    return StreamEngine(spec, window_span=SPAN, bucket_width=WIDTH)


def make_client(site_id: str, port: int, seed: int) -> SiteClient:
    site = StreamSite(site_id, SPEC, engine=windowed_factory(SPEC))
    return SiteClient(
        site,
        port=port,
        connect_timeout=1.0,
        io_timeout=0.3,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


def uplink_options(seed: int) -> dict:
    return dict(
        connect_timeout=1.0,
        io_timeout=0.5,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


def bucket_trace(rng: random.Random, bucket: int, per_site: int, sites):
    """Per-site timestamped updates inside bucket ``bucket``'s interval.

    Timestamps are nondecreasing per site *and* globally sortable; the
    last update of the first site lands exactly on the closing boundary
    (the duplicate-boundary-timestamp case rides along in every round).
    """
    lo = (bucket - 1) * WIDTH
    trace = {site_id: [] for site_id in sites}
    for index, site_id in enumerate(sites):
        for i in range(per_site):
            at = round(lo + (i + 1) * WIDTH / (per_site + 1), 6)
            if index == 0 and i == per_site - 1:
                at = bucket * WIDTH  # exactly on the boundary
            update = Update(
                stream=rng.choice(STREAMS),
                element=rng.randrange(1, 4000),
                delta=rng.choice([1, 1, 1, -1]),
            )
            trace[site_id].append((update, at))
    return trace


def assert_root_matches_driver(root, flat: StreamEngine, boundary: float):
    """Bit-identity of the root's windowed state against the driver-fed
    flat engine, both advanced to the same bucket boundary."""
    fold = root.coordinator.fold_engine
    fold.advance_to(boundary)
    fold.flush()
    flat.flush()
    for name in STREAMS:
        assert np.array_equal(
            fold.window_family(name).counters,
            flat.family(name).counters,
        ), (name, boundary)
    windowed = root.coordinator.query(EXPR, 0.25, window=SPAN)
    truth = flat.query(EXPR, 0.25)
    assert windowed.value == truth.value
    assert windowed.union_estimate == truth.union_estimate


class TestWindowedFederation:
    def test_windowed_tree_matches_driver_at_every_boundary(self, tmp_path):
        """The acceptance scenario (see module docstring)."""

        async def scenario():
            rng = random.Random(90)
            # Truth: one flat engine fed through the per-update driver,
            # and one all-time engine fed everything (never expires).
            flat = StreamEngine(SPEC)
            driver = SlidingWindowDriver(SPAN, flat)
            alltime = StreamEngine(SPEC)

            root = CoordinatorServer(
                SPEC, port=0, engine_factory=windowed_factory
            )
            await root.start()

            up1 = FaultyTransport(
                root.port, random.Random(1), duplicate=0.25, cut=0.2,
                max_faults=4,
            )
            up2 = FaultyTransport(
                root.port, random.Random(2), duplicate=0.25, cut=0.2,
                max_faults=4,
            )
            await up1.start()
            await up2.start()

            leaf1_dir = tmp_path / "leaf1"
            leaf1 = CoordinatorServer(
                SPEC,
                port=0,
                checkpoint_dir=leaf1_dir,
                engine_factory=windowed_factory,
                parent_port=up1.port,
                uplink_id="leaf1",
                uplink_options=uplink_options(21),
            )
            leaf2 = CoordinatorServer(
                SPEC,
                port=0,
                engine_factory=windowed_factory,
                parent_port=up2.port,
                uplink_id="leaf2",
                uplink_options=uplink_options(22),
            )
            await leaf1.start()
            await leaf2.start()
            leaf1_port = leaf1.port

            site_leaves = [
                ("s1", leaf1), ("s2", leaf1), ("s3", leaf2), ("s4", leaf2)
            ]
            site_proxies = {}
            for i, (site_id, leaf) in enumerate(site_leaves):
                proxy = FaultyTransport(
                    leaf.port, random.Random(30 + i),
                    duplicate=0.2, cut=0.15, max_faults=4,
                )
                await proxy.start()
                site_proxies[site_id] = proxy
            clients = {
                site_id: make_client(site_id, proxy.port, seed=40 + i)
                for i, (site_id, proxy) in enumerate(site_proxies.items())
            }

            async def feed_bucket(bucket: int) -> None:
                """One bucket's worth of traffic: observe per site, ship
                every hop, and mirror the trace into both truth engines."""
                trace = bucket_trace(rng, bucket, 10, list(clients))
                merged = sorted(
                    (pair for pairs in trace.values() for pair in pairs),
                    key=lambda pair: pair[1],
                )
                for update, at in merged:
                    driver.observe(update, at=at)
                    alltime.process(update)
                for site_id, pairs in trace.items():
                    for update, at in pairs:
                        clients[site_id].observe(update, at)
                    await clients[site_id].ship()
                await leaf1.ship_upstream()
                await leaf2.ship_upstream()

            # Buckets 1-3 flow through the intact tree; compare at each
            # closing boundary.
            for bucket in (1, 2, 3):
                await feed_bucket(bucket)
                boundary = bucket * WIDTH
                driver.advance_to(boundary)
                assert_root_matches_driver(root, flat, boundary)

            # Bucket 4 reaches leaf1 but dies with it: the deltas applied
            # after its last checkpoint-cut are lost, and the restored
            # (windowed) leaf re-syncs them from the sites' retained
            # tails — window stamps intact.
            trace = bucket_trace(rng, 4, 10, ["s1", "s2"])
            for update, at in sorted(
                (pair for pairs in trace.values() for pair in pairs),
                key=lambda pair: pair[1],
            ):
                driver.observe(update, at=at)
                alltime.process(update)
            for site_id, pairs in trace.items():
                for update, at in pairs:
                    clients[site_id].observe(update, at)
                await clients[site_id].ship()
            await leaf1.stop()
            leaf1 = CoordinatorServer.restore(
                leaf1_dir,
                port=leaf1_port,
                parent_port=up1.port,
                uplink_id="leaf1",
                uplink_options=uplink_options(23),
            )
            assert leaf1.uplink.site.incarnation  # restored, not fresh
            assert leaf1.coordinator.is_windowed
            await leaf1.start()
            for site_id in ("s1", "s2"):
                await clients[site_id].connect()  # re-sync the lost tail
            await leaf1.ship_upstream()
            driver.advance_to(4 * WIDTH)
            assert_root_matches_driver(root, flat, 4 * WIDTH)

            # Buckets 5-6 roll the window: by bucket 6 the root has
            # expired buckets 1-2, federated and flat paths alike.
            for bucket in (5, 6):
                await feed_bucket(bucket)
                boundary = bucket * WIDTH
                driver.advance_to(boundary)
                assert_root_matches_driver(root, flat, boundary)
            fold = root.coordinator.fold_engine
            assert fold.window_stats().buckets_expired > 0

            # The all-time synopsis is untouched by expiry on every path.
            alltime.flush()
            for name in STREAMS:
                assert np.array_equal(
                    fold.family(name).counters,
                    alltime.family(name).counters,
                ), name

            # The faults were real.
            injected = sum(
                p.faults_injected
                for p in [up1, up2, *site_proxies.values()]
            )
            assert injected > 0

            for client in clients.values():
                await client.close()
            for proxy in [up1, up2, *site_proxies.values()]:
                await proxy.stop()
            await leaf1.stop()
            await leaf2.stop()
            await root.stop()

        run(scenario())
