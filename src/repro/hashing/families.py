"""Hash-function families used by 2-level hash sketches.

Two kinds of hash functions appear in the paper:

* **First-level** hashes ``h : [M] -> [M**k]`` that feed the ``LSB``
  bucketing.  The analysis in Section 3.6 of the paper shows that
  ``t = Theta(log 1/eps)``-wise independence suffices; a *t*-wise
  independent family is realised here as degree-``t - 1`` polynomials with
  random coefficients over ``GF(2**61 - 1)`` (the classical Carter-Wegman
  construction, storable as a seed of ``t`` field elements).
* **Second-level** binary hashes ``g_j : [M] -> {0, 1}``, for which
  pairwise independence suffices (Lemma 3.1).  These are GF(2)-linear
  hashes ``g(e) = parity(mask & e) XOR flip`` with a uniformly random
  64-bit ``mask`` and a random ``flip`` bit.  For distinct elements
  ``x != y`` the inner product ``<mask, x XOR y>`` is a uniform bit and
  ``flip`` makes each output marginally uniform, so the family is exactly
  pairwise independent — and it vectorises to three word operations,
  which matters because second-level hashing dominates maintenance cost.

Every family is deterministic given its coefficient seed, so two sketches
built from equal seeds are *comparable* — the property that lets sketches
for different streams be combined by the estimators, and that implements
the "stored coins" of the distributed-streams model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.mersenne import MERSENNE_P, horner_mod

__all__ = [
    "PolynomialHash",
    "PairwiseBinaryHash",
    "BinaryHashBank",
    "random_polynomial_hash",
    "random_binary_bank",
]

_P_INT = int(MERSENNE_P)
_WORD = 1 << 64


@dataclass(frozen=True)
class PolynomialHash:
    """A ``t``-wise independent hash ``h : [p] -> [p]`` over ``GF(2**61-1)``.

    ``coefficients`` are ordered highest degree first; the degree of the
    polynomial is ``len(coefficients) - 1`` and the family is
    ``len(coefficients)``-wise independent.  To keep the map injective over
    the element domain (the role of the ``[M] -> [M**k]`` range in the
    paper), the leading coefficient is forced non-zero by the constructor
    helpers below.
    """

    coefficients: tuple[int, ...]
    _coeff_arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ValueError("a polynomial hash needs at least one coefficient")
        if any(not (0 <= c < _P_INT) for c in self.coefficients):
            raise ValueError("coefficients must be residues modulo 2**61 - 1")
        object.__setattr__(
            self, "_coeff_arr", np.asarray(self.coefficients, dtype=np.uint64)
        )

    @property
    def independence(self) -> int:
        """The ``t`` for which this family is ``t``-wise independent."""
        return len(self.coefficients)

    def __call__(self, element):
        """Hash a scalar element or a ``uint64`` array of elements."""
        scalar = np.isscalar(element)
        values = np.atleast_1d(np.asarray(element, dtype=np.uint64))
        if values.size and int(values.max()) >= _P_INT:
            raise ValueError("elements must lie in [0, 2**61 - 1)")
        hashed = horner_mod(self._coeff_arr, values)
        return int(hashed[0]) if scalar else hashed


@dataclass(frozen=True)
class PairwiseBinaryHash:
    """A pairwise-independent binary hash ``g : [2**64] -> {0, 1}``.

    GF(2)-linear: ``g(e) = parity(popcount(mask & e)) XOR flip``.
    """

    mask: int
    flip: int

    def __post_init__(self) -> None:
        if not (0 <= self.mask < _WORD):
            raise ValueError("mask must be a 64-bit word")
        if self.flip not in (0, 1):
            raise ValueError("flip must be 0 or 1")

    def __call__(self, element):
        scalar = np.isscalar(element)
        values = np.atleast_1d(np.asarray(element, dtype=np.uint64))
        bits = (
            np.bitwise_count(values & np.uint64(self.mask)) & np.uint8(1)
        ) ^ np.uint8(self.flip)
        return int(bits[0]) if scalar else bits.astype(np.int64)


@dataclass(frozen=True)
class BinaryHashBank:
    """A bank of ``s`` independent pairwise binary hashes.

    The bank evaluates all ``s`` functions at once: ``bits(elements)``
    returns an ``(n, s)`` 0/1 matrix computed with a single broadcast
    AND / popcount / XOR — the innermost hot path of sketch maintenance.
    """

    masks: tuple[int, ...]
    flips: tuple[int, ...]
    _mask_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _flip_arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.masks) != len(self.flips) or not self.masks:
            raise ValueError("need equal, non-empty mask/flip tuples")
        if any(not (0 <= m < _WORD) for m in self.masks):
            raise ValueError("every mask must be a 64-bit word")
        if any(f not in (0, 1) for f in self.flips):
            raise ValueError("every flip must be 0 or 1")
        object.__setattr__(self, "_mask_arr", np.asarray(self.masks, dtype=np.uint64))
        object.__setattr__(self, "_flip_arr", np.asarray(self.flips, dtype=np.uint8))

    @property
    def size(self) -> int:
        return len(self.masks)

    def __getitem__(self, j: int) -> PairwiseBinaryHash:
        return PairwiseBinaryHash(self.masks[j], self.flips[j])

    def bits(self, elements) -> np.ndarray:
        """Evaluate all ``s`` hashes: returns an ``(n, s)`` 0/1 int8 matrix."""
        values = np.atleast_1d(np.asarray(elements, dtype=np.uint64))
        anded = values[:, None] & self._mask_arr[None, :]
        return ((np.bitwise_count(anded) & np.uint8(1)) ^ self._flip_arr).astype(np.int8)


def random_polynomial_hash(rng: np.random.Generator, independence: int) -> PolynomialHash:
    """Draw a ``t``-wise independent polynomial hash from ``rng``.

    The leading coefficient is drawn from ``[1, p)`` so the polynomial has
    true degree ``t - 1``; the rest are uniform over ``[0, p)``.
    """
    if independence < 1:
        raise ValueError("independence must be at least 1")
    leading = int(rng.integers(1, _P_INT))
    rest = [int(c) for c in rng.integers(0, _P_INT, size=independence - 1)]
    return PolynomialHash(tuple([leading] + rest))


def random_binary_bank(rng: np.random.Generator, size: int) -> BinaryHashBank:
    """Draw a bank of ``size`` independent pairwise binary hashes."""
    if size < 1:
        raise ValueError("bank size must be at least 1")
    masks = tuple(int(m) for m in rng.integers(0, _WORD, size=size, dtype=np.uint64))
    flips = tuple(int(f) for f in rng.integers(0, 2, size=size))
    return BinaryHashBank(masks, flips)
