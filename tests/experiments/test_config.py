"""Unit tests for experiment configurations."""

from __future__ import annotations

import pytest

from repro.experiments.config import FIGURES, ExperimentConfig, scaled_config


class TestFigures:
    def test_all_three_figures_defined(self):
        assert sorted(FIGURES) == ["fig7a", "fig7b", "fig8"]

    def test_expressions_match_paper(self):
        assert FIGURES["fig7a"].expression == "A & B"
        assert FIGURES["fig7b"].expression == "A - B"
        assert FIGURES["fig8"].expression == "(A - B) & C"

    def test_paper_scale_parameters(self):
        config = FIGURES["fig7a"]
        assert config.union_size == 2**18
        assert config.num_second_level == 32
        assert 512 in config.sketch_counts

    def test_paper_target_ratios_include_u_over_32(self):
        """Section 5.2 names |A - B| = 8192 = u / 32 explicitly."""
        config = FIGURES["fig7b"]
        assert 1 / 32 in config.target_ratios
        assert config.target_size(1 / 32) == 8192


class TestExperimentConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", title="x", expression="A", target_ratios=())
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", title="x", expression="A", sketch_counts=())
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", title="x", expression="A", trials=0)

    def test_max_sketches(self):
        config = ExperimentConfig(
            name="x", title="x", expression="A", sketch_counts=(8, 64, 32)
        )
        assert config.max_sketches == 64

    def test_target_size(self):
        config = ExperimentConfig(name="x", title="x", expression="A", union_size=1000)
        assert config.target_size(0.25) == 250


class TestScaledConfig:
    def test_bench_scale_is_smaller(self):
        base = FIGURES["fig7a"]
        bench = scaled_config(base, "bench")
        assert bench.union_size < base.union_size
        assert bench.trials <= base.trials
        assert bench.expression == base.expression

    def test_paper_scale_is_identity(self):
        base = FIGURES["fig8"]
        assert scaled_config(base, "paper") == base

    def test_medium_between(self):
        base = FIGURES["fig7b"]
        medium = scaled_config(base, "medium")
        bench = scaled_config(base, "bench")
        assert bench.union_size < medium.union_size <= base.union_size

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            scaled_config(FIGURES["fig7a"], "huge")
