"""Unit tests for the distributed-streams model (delta protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import DeltaSequenceError, UnknownStreamError
from repro.streams.distributed import Coordinator, DeltaExport, StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update, insertions

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=128, shape=SHAPE, seed=17)


class TestSite:
    def test_export_contains_observed_streams(self):
        site = StreamSite("site-1", SPEC)
        site.observe(Update("A", 1, 1))
        site.observe(Update("B", 2, 1))
        export = site.export()
        assert export.site_id == "site-1"
        assert export.sequence == 1
        assert sorted(export.payloads) == ["A", "B"]
        assert all(isinstance(p, bytes) for p in export.payloads.values())

    def test_export_empty_site(self):
        export = StreamSite("idle", SPEC).export()
        assert export.is_empty
        assert export.sequence == 1

    def test_sequences_are_monotone_and_deltas_disjoint(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        first = site.export()
        second = site.export()  # no new updates since
        site.observe(Update("A", 2, 1))
        third = site.export()
        assert [first.sequence, second.sequence, third.sequence] == [1, 2, 3]
        assert not first.is_empty
        assert second.is_empty  # nothing changed between exports
        assert not third.is_empty

    def test_retention_and_acknowledge(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        site.export()
        site.observe(Update("A", 2, 1))
        site.export()
        assert site.retained_exports == 2
        assert [e.sequence for e in site.exports_after(0)] == [1, 2]
        site.acknowledge(1)
        assert site.retained_exports == 1
        assert [e.sequence for e in site.exports_after(1)] == [2]

    def test_restarted_site_gets_a_fresh_incarnation(self):
        """Each StreamSite lifetime has its own incarnation, so a
        restarted process's sequence 1 is distinguishable from — and
        never dropped as a duplicate of — its previous life's."""
        old_life = StreamSite("edge", SPEC)
        new_life = StreamSite("edge", SPEC)
        assert old_life.incarnation != new_life.incarnation
        assert old_life.export().incarnation == old_life.incarnation

    def test_site_restart_exports_apply_despite_sequence_overlap(self):
        """The regression the incarnation exists for: old life ships one
        export, the restarted life's first export also carries sequence
        1 — it must be applied as new data, not dropped."""
        coordinator = Coordinator(SPEC)
        old_life = StreamSite("edge", SPEC)
        old_life.observe_many(insertions("A", range(50)))
        coordinator.collect_from(old_life)
        assert coordinator.applied_sequence("edge") == 1

        new_life = StreamSite("edge", SPEC)  # process restart
        new_life.observe_many(insertions("A", range(50, 80)))
        export = new_life.export()
        assert export.sequence == 1  # numbering collides with old life
        assert coordinator.collect(export)  # applied, not dropped
        assert coordinator.applied_sequence("edge") == 1
        assert coordinator.applied_sequence("edge", old_life.incarnation) == 1
        assert coordinator.applied_sequence("edge", new_life.incarnation) == 1

        truth = StreamEngine(SPEC)
        truth.process_many(insertions("A", range(80)))
        truth.flush()
        assert coordinator._families["A"] == truth.family("A")

    def test_alternating_incarnations_never_double_count(self):
        """Two lives of one site id interleaving collects: each life's
        history is tracked separately, so duplicates within either life
        are still dropped and neither shadows the other."""
        coordinator = Coordinator(SPEC)
        life_a = StreamSite("edge", SPEC, incarnation="life-a")
        life_b = StreamSite("edge", SPEC, incarnation="life-b")
        life_a.observe_many(insertions("A", range(30)))
        export_a = life_a.export()
        life_b.observe_many(insertions("A", range(30, 60)))
        export_b = life_b.export()

        assert coordinator.collect(export_a)
        assert coordinator.collect(export_b)
        assert not coordinator.collect(export_a)  # duplicate of life-a's
        assert not coordinator.collect(export_b)  # duplicate of life-b's

        truth = StreamEngine(SPEC)
        truth.process_many(insertions("A", range(60)))
        truth.flush()
        assert coordinator._families["A"] == truth.family("A")


class TestCoordinator:
    def test_split_stream_merges_to_centralised_sketch(self):
        """A stream split across two sites must merge to exactly the
        sketch a single observer of the whole stream would hold."""
        rng = np.random.default_rng(97)
        elements = rng.integers(0, 2**20, size=500, dtype=np.uint64)
        site_1 = StreamSite("s1", SPEC)
        site_2 = StreamSite("s2", SPEC)
        site_1.observe_many(insertions("A", (int(e) for e in elements[:250])))
        site_2.observe_many(insertions("A", (int(e) for e in elements[250:])))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site_1)
        coordinator.collect_from(site_2)

        centralised = SPEC.build()
        centralised.update_batch(elements)
        assert coordinator._families["A"] == centralised

    def test_repeated_collection_no_longer_double_counts(self):
        """Regression: observe -> export/collect -> observe ->
        export/collect must equal single-engine ground truth (cumulative
        exports used to double-count the first batch)."""
        rng = np.random.default_rng(11)
        first = rng.integers(0, 2**20, size=300, dtype=np.uint64)
        second = rng.integers(0, 2**20, size=300, dtype=np.uint64)

        site = StreamSite("s", SPEC)
        coordinator = Coordinator(SPEC)
        site.observe_many(insertions("A", (int(e) for e in first)))
        coordinator.collect_from(site)
        site.observe_many(insertions("A", (int(e) for e in second)))
        coordinator.collect_from(site)

        ground_truth = SPEC.build()
        ground_truth.update_batch(np.concatenate([first, second]))
        assert coordinator._families["A"] == ground_truth

    def test_duplicate_export_is_dropped_idempotently(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        export = site.export()
        coordinator = Coordinator(SPEC)
        assert coordinator.collect(export) is True
        before = coordinator._families["A"].counters.copy()
        assert coordinator.collect(export) is False  # retransmit
        assert np.array_equal(coordinator._families["A"].counters, before)
        assert coordinator.duplicates_dropped == 1

    def test_sequence_gap_raises(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        site.export()  # sequence 1, never collected
        site.observe(Update("A", 2, 1))
        second = site.export()
        coordinator = Coordinator(SPEC)
        with pytest.raises(DeltaSequenceError, match="missing"):
            coordinator.collect(second)

    def test_resync_after_gap_via_exports_after(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        site.export()
        site.observe(Update("A", 2, 1))
        site.export()
        coordinator = Coordinator(SPEC)
        for export in site.exports_after(coordinator.applied_sequence("s")):
            coordinator.collect(export)
        assert coordinator.applied_sequence("s") == 2

        ground_truth = SPEC.build()
        ground_truth.update_batch(np.array([1, 2], dtype=np.uint64))
        assert coordinator._families["A"] == ground_truth

    def test_sites_collected_counter(self):
        coordinator = Coordinator(SPEC)
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        coordinator.collect_from(site)
        coordinator.collect_from(site)
        assert coordinator.sites_collected == 2

    def test_query_over_distributed_streams(self):
        rng = np.random.default_rng(98)
        pool = rng.choice(2**20, size=3000, replace=False)
        shared, only_a, only_b = pool[:1000], pool[1000:2000], pool[2000:]

        router_1 = StreamSite("router-1", SPEC)
        router_2 = StreamSite("router-2", SPEC)
        router_1.observe_many(
            insertions("A", (int(e) for e in np.concatenate([shared, only_a])))
        )
        router_2.observe_many(
            insertions("B", (int(e) for e in np.concatenate([shared, only_b])))
        )
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(router_1)
        coordinator.collect_from(router_2)

        estimate = coordinator.query("A & B", 0.2)
        assert abs(estimate.value - 1000) / 1000 < 0.5
        union = coordinator.query_union(["A", "B"], 0.2)
        assert abs(union.value - 3000) / 3000 < 0.3

    def test_query_unknown_stream_raises_named_error(self):
        coordinator = Coordinator(SPEC)
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        coordinator.collect_from(site)
        with pytest.raises(UnknownStreamError, match="'Z'"):
            coordinator.query("A & Z")
        # The error also lists what *is* known.
        with pytest.raises(UnknownStreamError, match="known streams: A"):
            coordinator.query("A - Z")

    def test_query_union_unknown_stream_raises_named_error(self):
        coordinator = Coordinator(SPEC)
        with pytest.raises(UnknownStreamError, match="'A'"):
            coordinator.query_union(["A"])
        # UnknownStreamError is a KeyError, so pre-existing callers that
        # caught the builtin keep working.
        with pytest.raises(KeyError):
            coordinator.query_union(["A"])

    def test_deletions_at_a_different_site(self):
        """Insertions at one site, deletions at another — linear merge
        cancels them exactly."""
        site_in = StreamSite("in", SPEC)
        site_out = StreamSite("out", SPEC)
        for element in range(100):
            site_in.observe(Update("A", element, 1))
        for element in range(50):
            site_out.observe(Update("A", element, -1))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site_in)
        coordinator.collect_from(site_out)

        survivors = SPEC.build()
        survivors.update_batch(np.arange(50, 100, dtype=np.uint64))
        assert coordinator._families["A"] == survivors

    def test_stream_names(self):
        coordinator = Coordinator(SPEC)
        site = StreamSite("s", SPEC)
        site.observe(Update("B", 1, 1))
        site.observe(Update("A", 1, 1))
        coordinator.collect_from(site)
        assert coordinator.stream_names() == ["A", "B"]

    def test_restore_roundtrip(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site)

        restored = Coordinator(SPEC)
        for name in coordinator.stream_names():
            restored.adopt_family(name, coordinator._families[name].copy())
        for site_id, history in coordinator.site_sequences().items():
            for incarnation, sequence in history.items():
                restored.set_applied_sequence(site_id, incarnation, sequence)
        assert restored.applied_sequence("s") == 1
        assert restored.applied_sequence("s", site.incarnation) == 1
        # A duplicate of the already-applied export is dropped.
        duplicate = DeltaExport("s", 1, {}, site.incarnation)
        assert restored.collect(duplicate) is False


class TestCoordinatorToEngine:
    def test_handoff_preserves_state_and_accepts_updates(self):
        rng = np.random.default_rng(99)
        elements = rng.integers(0, 2**20, size=400, dtype=np.uint64)
        site = StreamSite("s", SPEC)
        site.observe_many(insertions("A", (int(e) for e in elements)))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site)

        engine = coordinator.to_engine()
        assert engine.stream_names() == ["A"]

        # Continue ingesting at the coordinator-turned-engine.
        engine.process(Update("A", 7, 1))
        engine.flush()
        reference = SPEC.build()
        reference.update_batch(np.concatenate([elements, [7]]))
        assert engine.family("A") == reference


class TestFamilyDelta:
    def test_diff_from_roundtrips_by_linearity(self):
        rng = np.random.default_rng(5)
        base = SPEC.build()
        base.update_batch(rng.integers(0, 2**20, size=100, dtype=np.uint64))
        snapshot = base.copy()
        base.update_batch(rng.integers(0, 2**20, size=100, dtype=np.uint64))
        delta = base.diff_from(snapshot)
        snapshot.merge_in_place(delta)
        assert snapshot == base

    def test_is_zero_vs_is_empty(self):
        family = SPEC.build()
        assert family.is_zero() and family.is_empty()
        family.update_batch(np.array([1], dtype=np.uint64))
        inserted = family.copy()
        family.update_batch(np.array([2], dtype=np.uint64), np.array([-1]))
        # Net item count is zero, but the counters are not all-zero.
        delta = family.diff_from(SPEC.build())
        assert delta.is_empty() and not delta.is_zero()
        assert not inserted.is_zero()

    def test_engine_families_accessor(self):
        engine = StreamEngine(SPEC)
        engine.process(Update("A", 1, 1))
        engine.process(Update("B", 2, 1))
        families = engine.families()
        assert sorted(families) == ["A", "B"]
        assert families["A"] is engine.family("A")


class TestEngineBackedFoldFreshness:
    """Regression: an engine-backed coordinator used to serve a *stale*
    cached estimate after a second collect, because ``merge_delta`` folds
    counters without advancing the engine's updates-processed position.
    The mutation epoch now invalidates those entries."""

    def test_second_collect_invalidates_cached_estimate(self):
        engine = StreamEngine(SPEC)
        coordinator = Coordinator(SPEC, engine=engine)
        site = StreamSite("s", SPEC)
        site.observe_many(insertions("A", range(500)))
        coordinator.collect_from(site)
        first = coordinator.query_union(["A"], 0.2).value

        site.observe_many(insertions("A", range(500, 1000)))
        coordinator.collect_from(site)
        second = coordinator.query_union(["A"], 0.2).value
        assert second != first  # grew ~2x; a stale cache returns first

        fresh = StreamEngine(SPEC)
        fresh.process_many(insertions("A", range(1000)))
        assert second == fresh.query_union(["A"], 0.2).value

    def test_windowed_fold_expiry_invalidates_cached_estimate(self):
        """The windowed twin: a rotation that expires a non-empty bucket
        must invalidate cached windowed estimates even though no new
        updates were processed."""
        engine = StreamEngine(SPEC, window_span=10.0, bucket_width=5.0)
        coordinator = Coordinator(SPEC, engine=engine)
        site = StreamSite("s", SPEC, engine=StreamEngine(
            SPEC, window_span=10.0, bucket_width=5.0
        ))
        for element in range(200):
            site.observe(Update("A", element, 1), at=1.0)
        coordinator.collect(site.export())
        before = coordinator.query_union(["A"], 0.2, window=10.0).value
        assert before > 0
        engine.advance_to(20.0)  # bucket 1 fully expires
        after = coordinator.query_union(["A"], 0.2, window=10.0).value
        assert after == 0.0
        assert after != before
