"""Unit tests for session-trace generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.sessions import session_trace
from repro.streams.exact import ExactStreamStore


def pool(size=200, seed=0):
    return np.random.default_rng(seed).choice(2**20, size=size, replace=False)


class TestSessionTrace:
    def test_event_count(self):
        events = session_trace("S", pool(), 100, np.random.default_rng(1))
        assert len(events) == 200  # one open + one close each

    def test_time_ordered(self):
        events = session_trace("S", pool(), 200, np.random.default_rng(2))
        times = [event.at for event in events]
        assert times == sorted(times)

    def test_trace_is_legal(self):
        """Every close follows its open, so exact replay never underflows."""
        events = session_trace("S", pool(), 500, np.random.default_rng(3))
        store = ExactStreamStore()
        store.apply_many(event.update for event in events)

    def test_net_effect_is_empty(self):
        events = session_trace("S", pool(), 300, np.random.default_rng(4))
        store = ExactStreamStore()
        store.apply_many(event.update for event in events)
        assert store.distinct_count("S") == 0

    def test_prefix_has_live_sessions(self):
        events = session_trace(
            "S", pool(), 400, np.random.default_rng(5), duration_mean=1000.0
        )
        store = ExactStreamStore()
        # Replay only the first half of time; long sessions are still open.
        store.apply_many(event.update for event in events[:400])
        assert store.distinct_count("S") > 0

    def test_sources_come_from_pool(self):
        members = set(int(v) for v in pool(size=50, seed=6))
        events = session_trace(
            "S", pool(size=50, seed=6), 200, np.random.default_rng(7)
        )
        assert {event.update.element for event in events} <= members

    def test_zipf_concentrates_sources(self):
        uniform = session_trace(
            "S", pool(size=500, seed=8), 2000, np.random.default_rng(9)
        )
        skewed = session_trace(
            "S", pool(size=500, seed=8), 2000, np.random.default_rng(9), skew=1.5
        )
        distinct_uniform = len({e.update.element for e in uniform})
        distinct_skewed = len({e.update.element for e in skewed})
        assert distinct_skewed < distinct_uniform

    def test_empty_trace(self):
        assert session_trace("S", pool(), 0, np.random.default_rng(10)) == []

    def test_validation(self):
        rng = np.random.default_rng(11)
        with pytest.raises(ValueError):
            session_trace("S", pool(), -1, rng)
        with pytest.raises(ValueError):
            session_trace("S", pool(), 5, rng, duration_mean=0)
        with pytest.raises(ValueError):
            session_trace("S", pool(), 5, rng, arrival_rate=0)

    def test_open_events_through_sliding_window(self):
        """Integration: windowing the *open* events gives "sources that
        started a session recently" — an insert-only stream the window
        driver turns into a clean expiry-by-deletion workload."""
        from repro.core.family import SketchSpec
        from repro.core.sketch import SketchShape
        from repro.streams.engine import StreamEngine
        from repro.streams.windows import SlidingWindowDriver

        rng = np.random.default_rng(12)
        events = session_trace(
            "S", pool(size=400, seed=13), 800, rng, duration_mean=5.0
        )
        opens = [event for event in events if event.update.is_insertion]
        shape = SketchShape(domain_bits=20, num_second_level=8, independence=6)
        engine = StreamEngine(SketchSpec(num_sketches=32, shape=shape, seed=1))
        exact = ExactStreamStore()
        driver = SlidingWindowDriver(30.0, engine, exact)
        for event in opens:
            driver.observe(event.update, event.at)
        estimate = engine.query_union(["S"], 0.3)
        assert estimate.value >= 0
        assert exact.total_items("S") == driver.in_window_count
