"""The distributed-streams model with stored coins.

The paper notes (Sections 1 and 4) that its estimators extend naturally to
the distributed model of Gibbons and Tirthapura: each stream (or part of a
stream) is observed by its own party, summarised locally, and the synopses
are shipped — e.g. periodically — to a central site where queries over the
whole collection are answered.

Two properties of the 2-level hash sketch make this work:

* **stored coins** — all sites draw their hash functions from the same
  :class:`~repro.core.family.SketchSpec` (a shared seed), so their
  sketches are comparable;
* **linearity** — a stream split across sites is summarised correctly by
  *adding* the sites' counter arrays, because the sketch of a multiset sum
  is the entrywise sum of sketches.

:class:`StreamSite` plays the per-party observer; :class:`Coordinator`
collects serialised synopses and answers set-expression queries.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, SketchSpec
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.union import estimate_union
from repro.expr.ast import SetExpression
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

__all__ = ["StreamSite", "Coordinator"]


class StreamSite:
    """One observing party: summarises its local share of the streams.

    A thin wrapper over :class:`StreamEngine` that adds the ship-to-
    coordinator step: :meth:`export` serialises every locally maintained
    synopsis (counters only — the coins are shared via the spec).
    """

    def __init__(self, site_id: str, spec: SketchSpec) -> None:
        self.site_id = site_id
        self.spec = spec
        self._engine = StreamEngine(spec)

    def observe(self, update: Update) -> None:
        """Observe one local update tuple."""
        self._engine.process(update)

    def observe_many(self, updates: Iterable[Update]) -> None:
        """Observe a sequence of local updates."""
        self._engine.process_many(updates)

    def export(self) -> dict[str, bytes]:
        """Serialised synopses, one payload per locally seen stream."""
        self._engine.flush()
        return {
            name: self._engine.family(name).to_bytes()
            for name in self._engine.stream_names()
        }


class Coordinator:
    """Central site: merges site synopses and answers cardinality queries."""

    def __init__(self, spec: SketchSpec) -> None:
        self.spec = spec
        self._families: dict[str, SketchFamily] = {}
        self._sites_collected = 0

    def collect(self, payloads: Mapping[str, bytes]) -> None:
        """Fold one site's exported synopses into the global ones.

        A stream observed at several sites ends up with the sum of the
        sites' sketches — by linearity, exactly the sketch of the full
        stream.
        """
        for stream, payload in payloads.items():
            incoming = SketchFamily.from_bytes(payload, self.spec)
            if stream in self._families:
                self._families[stream].merge_in_place(incoming)
            else:
                self._families[stream] = incoming
        self._sites_collected += 1

    def collect_from(self, site: StreamSite) -> None:
        """Convenience: export from a site object and collect."""
        self.collect(site.export())

    @property
    def sites_collected(self) -> int:
        return self._sites_collected

    def stream_names(self) -> list[str]:
        """Streams with a merged synopsis at the coordinator."""
        return sorted(self._families)

    def query(
        self, expression: SetExpression | str, epsilon: float = 0.1
    ) -> WitnessEstimate:
        """Estimate ``|E|`` over the merged global synopses."""
        return estimate_expression(expression, self._families, epsilon)

    def query_union(
        self, stream_names: Iterable[str], epsilon: float = 0.1
    ) -> UnionEstimate:
        """Estimate the distinct-element count of a union of streams."""
        families = [self._families[name] for name in stream_names]
        return estimate_union(families, epsilon)

    def to_engine(self, batch_size: int = 4096) -> StreamEngine:
        """Hand the merged global synopses to a live engine.

        The engine adopts each merged family (shared storage) and can then
        keep ingesting updates — e.g. a coordinator that also tails a
        local stream after the periodic collection round.
        """
        engine = StreamEngine(self.spec, batch_size=batch_size)
        for name, family in self._families.items():
            engine.adopt_family(name, family)
        return engine
