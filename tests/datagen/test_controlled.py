"""Unit tests for the controlled stream generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.controlled import generate_binary, generate_controlled


class TestGenerateControlled:
    def test_realised_union_close_to_request(self):
        rng = np.random.default_rng(120)
        dataset = generate_controlled("A & B", 4096, 0.25, rng)
        assert abs(dataset.union_size - 4096) <= 64

    def test_realised_target_close_to_request(self):
        rng = np.random.default_rng(121)
        dataset = generate_controlled("A & B", 8192, 0.25, rng)
        expected = 8192 * 0.25
        assert abs(dataset.target_size - expected) / expected < 0.15

    def test_ground_truth_consistent_with_materialised_sets(self):
        rng = np.random.default_rng(122)
        dataset = generate_controlled("(A - B) & C", 2048, 0.2, rng)
        sets = {name: set(int(e) for e in dataset.elements[name])
                for name in dataset.stream_names()}
        from repro.expr.parser import parse

        expression = parse("(A - B) & C")
        assert dataset.target_size == len(expression.evaluate(sets))
        assert dataset.union_size == len(set().union(*sets.values()))

    def test_exact_cardinality_of_subexpressions(self):
        rng = np.random.default_rng(123)
        dataset = generate_controlled("(A - B) & C", 2048, 0.2, rng)
        sets = {name: set(int(e) for e in dataset.elements[name])
                for name in dataset.stream_names()}
        assert dataset.exact_cardinality("A & B") == len(sets["A"] & sets["B"])
        assert dataset.exact_cardinality("A - C") == len(sets["A"] - sets["C"])

    def test_elements_within_domain(self):
        rng = np.random.default_rng(124)
        dataset = generate_controlled("A & B", 1024, 0.5, rng, domain_bits=16)
        for elements in dataset.elements.values():
            assert elements.size == 0 or int(elements.max()) < 2**16

    def test_streams_have_balanced_sizes(self):
        rng = np.random.default_rng(125)
        dataset = generate_controlled("A & B", 8192, 0.25, rng)
        size_a = len(dataset.elements["A"])
        size_b = len(dataset.elements["B"])
        assert abs(size_a - size_b) / max(size_a, size_b) < 0.1

    def test_elements_are_distinct_within_stream(self):
        rng = np.random.default_rng(126)
        dataset = generate_controlled("A & B", 2048, 0.5, rng)
        for elements in dataset.elements.values():
            assert len(np.unique(elements)) == len(elements)

    def test_validation(self):
        rng = np.random.default_rng(127)
        with pytest.raises(ValueError):
            generate_controlled("A & B", 0, 0.5, rng)

    def test_deterministic_given_seed(self):
        a = generate_controlled("A & B", 512, 0.5, np.random.default_rng(9))
        b = generate_controlled("A & B", 512, 0.5, np.random.default_rng(9))
        assert np.array_equal(a.elements["A"], b.elements["A"])
        assert a.cell_sizes == b.cell_sizes


class TestGenerateBinary:
    def test_intersection(self):
        rng = np.random.default_rng(128)
        dataset = generate_binary("intersection", 4096, 1024, rng)
        assert abs(dataset.target_size - 1024) / 1024 < 0.2
        assert dataset.exact_cardinality("A & B") == dataset.target_size

    def test_difference(self):
        rng = np.random.default_rng(129)
        dataset = generate_binary("difference", 4096, 1024, rng)
        assert abs(dataset.target_size - 1024) / 1024 < 0.2
        assert dataset.exact_cardinality("A - B") == dataset.target_size

    def test_operator_symbols(self):
        rng = np.random.default_rng(130)
        assert generate_binary("&", 256, 64, rng).expression.to_text() == "(A & B)"
        assert generate_binary("-", 256, 64, rng).expression.to_text() == "(A - B)"

    def test_bad_operator(self):
        with pytest.raises(ValueError):
            generate_binary("xor", 256, 64, np.random.default_rng(0))

    def test_bad_target(self):
        with pytest.raises(ValueError):
            generate_binary("&", 256, 300, np.random.default_rng(0))

    def test_domain_overflow_rejected(self):
        with pytest.raises(ValueError):
            generate_controlled("A & B", 2**17, 0.5, np.random.default_rng(0), domain_bits=16)
