"""Asyncio coordinator server: folds shipped deltas, checkpoints, re-syncs.

:class:`CoordinatorServer` is the network face of
:class:`~repro.streams.distributed.Coordinator`.  Each connected site
speaks the framed protocol of :mod:`repro.streams.net.protocol`:

1. The site says ``hello``; the server answers ``welcome`` carrying the
   site's last *applied* sequence and last *durable* (checkpoint-covered)
   sequence.  The site re-ships everything newer — so a server restarted
   from a checkpoint is transparently re-synced by its sites.
2. Each ``delta`` frame is folded into the coordinator by sketch
   linearity.  Duplicates (retransmits after a lost ack) are dropped
   idempotently; a sequence gap is answered with the current applied
   sequence so the site rewinds.  Either way the server acks with the
   applied/durable pair.
3. Every ``checkpoint_every`` applied deltas the merged synopses plus
   the per-site sequence map are written through
   :func:`~repro.streams.checkpoint.checkpoint_engine`; acks then carry
   the new durable sequences, letting sites prune their retained tails.

The server runs every site on one event loop — concurrency, not
parallelism — and all state mutation happens between ``await`` points of
a single-threaded loop, so no locks are needed.
"""

from __future__ import annotations

import asyncio
import pathlib

from repro.core.family import SketchSpec
from repro.streams.checkpoint import (
    checkpoint_engine,
    read_checkpoint_extra,
    restore_engine,
)
from repro.streams.distributed import Coordinator, DeltaExport
from repro.streams.net import protocol
from repro.streams.stats import TransportStats

__all__ = ["CoordinatorServer"]

_SITE_SEQUENCES_KEY = "site_sequences"


class CoordinatorServer:
    """TCP server feeding a :class:`~repro.streams.distributed.Coordinator`.

    Parameters
    ----------
    spec:
        Sketch recipe shared with every site ("stored coins").  Ignored
        when ``coordinator`` is given.
    coordinator:
        An existing coordinator to serve (the restore path); by default
        a fresh one is built from ``spec``.
    host, port:
        Bind address.  ``port=0`` picks a free port — read it back from
        :attr:`port` after :meth:`start`.
    checkpoint_dir:
        Directory for periodic checkpoints (fail-over state).  ``None``
        disables checkpointing; acks then report every applied delta as
        durable, since there is no restart to replay for.
    checkpoint_every:
        Write a checkpoint after this many applied deltas (0 = only
        explicit :meth:`checkpoint` calls).
    """

    def __init__(
        self,
        spec: SketchSpec | None = None,
        *,
        coordinator: Coordinator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_dir: str | pathlib.Path | None = None,
        checkpoint_every: int = 0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        if coordinator is None:
            if spec is None:
                raise ValueError("need a SketchSpec or a Coordinator")
            coordinator = Coordinator(spec)
        self.coordinator = coordinator
        self._host = host
        self._port = port
        self._checkpoint_dir = (
            pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self._checkpoint_every = checkpoint_every
        self._max_frame_bytes = max_frame_bytes
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._stats: dict[str, TransportStats] = {}
        # site id -> incarnation -> last sequence covered by a written
        # checkpoint.
        self._durable: dict[str, dict[str, int]] = {}
        self._applied_since_checkpoint = 0
        self._checkpoints_written = 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str | pathlib.Path,
        **kwargs,
    ) -> "CoordinatorServer":
        """Rebuild a server from a checkpoint written by a previous run.

        The merged synopses come back through
        :func:`~repro.streams.checkpoint.restore_engine`; the per-site
        applied sequences come from the checkpoint's extra metadata, so
        reconnecting sites are greeted with exactly the sequence the
        restored state covers and re-ship everything newer.
        """
        engine = restore_engine(checkpoint_dir)
        coordinator = Coordinator(engine.spec)
        for name, family in engine.families().items():
            coordinator.adopt_family(name, family)
        sequences = read_checkpoint_extra(checkpoint_dir).get(
            _SITE_SEQUENCES_KEY, {}
        )
        for site_id, history in sequences.items():
            for incarnation, sequence in history.items():
                coordinator.set_applied_sequence(
                    str(site_id), str(incarnation), int(sequence)
                )
        server = cls(
            coordinator=coordinator, checkpoint_dir=checkpoint_dir, **kwargs
        )
        server._durable = {
            str(site_id): {
                str(incarnation): int(sequence)
                for incarnation, sequence in history.items()
            }
            for site_id, history in sequences.items()
        }
        return server

    async def start(self) -> None:
        """Bind and start accepting site connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drop live connections, and close the server."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def __aenter__(self) -> "CoordinatorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        return self._port

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, TransportStats]:
        """Per-site transport counters (point-in-time copies)."""
        return {
            site_id: stats.snapshot() for site_id, stats in self._stats.items()
        }

    @property
    def total_deltas_applied(self) -> int:
        return self.coordinator.sites_collected

    @property
    def checkpoints_written(self) -> int:
        return self._checkpoints_written

    # -- queries (pass-through) -------------------------------------------

    def query(self, expression, epsilon: float = 0.1):
        return self.coordinator.query(expression, epsilon)

    def query_union(self, stream_names, epsilon: float = 0.1):
        return self.coordinator.query_union(stream_names, epsilon)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> None:
        """Write the merged state plus the per-site sequence map now."""
        if self._checkpoint_dir is None:
            raise ValueError("no checkpoint_dir configured")
        sequences = self.coordinator.site_sequences()
        checkpoint_engine(
            self.coordinator.to_engine(),
            self._checkpoint_dir,
            extra={_SITE_SEQUENCES_KEY: sequences},
        )
        self._durable = {
            site: dict(history) for site, history in sequences.items()
        }
        self._applied_since_checkpoint = 0
        self._checkpoints_written += 1
        for stats in self._stats.values():
            stats.checkpoints_written += 1

    def _durable_for(self, site_id: str, incarnation: str) -> int:
        if self._checkpoint_dir is None:
            # Nothing to restart from, so applied == durable: sites may
            # prune immediately instead of retaining forever.
            return self.coordinator.applied_sequence(site_id, incarnation)
        return self._durable.get(site_id, {}).get(incarnation, 0)

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_dir is None or self._checkpoint_every == 0:
            return
        if self._applied_since_checkpoint >= self._checkpoint_every:
            self.checkpoint()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            await self._serve_site(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            # Dropped connection (possibly mid-frame): nothing was
            # applied for the partial message — frames are decoded in
            # full before any state changes — so the site simply
            # reconnects and re-syncs.
            pass
        except protocol.ProtocolError as exc:
            await self._send_error(writer, str(exc))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_site(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        header, _, nbytes = await protocol.read_message(
            reader, self._max_frame_bytes
        )
        if header.get("type") != "hello":
            raise protocol.ProtocolError(
                f"expected hello, got {header.get('type')!r}"
            )
        if header.get("version") != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"protocol version {header.get('version')!r} not supported "
                f"(this server speaks {protocol.PROTOCOL_VERSION})"
            )
        site_id = header.get("site_id")
        if not isinstance(site_id, str) or not site_id:
            raise protocol.ProtocolError("hello carries no usable site_id")
        incarnation = header.get("incarnation")
        if not isinstance(incarnation, str) or not incarnation:
            raise protocol.ProtocolError("hello carries no usable incarnation")
        stats = self._stats.setdefault(site_id, TransportStats(site_id=site_id))
        stats.frames_received += 1
        stats.bytes_received += nbytes
        applied = self.coordinator.applied_sequence(site_id, incarnation)
        stats.bytes_sent += await protocol.write_message(
            writer,
            protocol.welcome_message(
                applied, self._durable_for(site_id, incarnation)
            ),
        )
        stats.frames_sent += 1
        stats.resyncs += 1

        while True:
            header, blobs, nbytes = await protocol.read_message(
                reader, self._max_frame_bytes
            )
            stats.frames_received += 1
            stats.bytes_received += nbytes
            if header.get("type") != "delta":
                raise protocol.ProtocolError(
                    f"expected delta, got {header.get('type')!r}"
                )
            export = protocol.export_from_message(header, blobs)
            if export.site_id != site_id or export.incarnation != incarnation:
                raise protocol.ProtocolError(
                    f"delta for site {export.site_id!r} "
                    f"(incarnation {export.incarnation!r}) on a connection "
                    f"that said hello as {site_id!r} ({incarnation!r})"
                )
            self._apply(export, stats)
            stats.bytes_sent += await protocol.write_message(
                writer,
                protocol.ack_message(
                    self.coordinator.applied_sequence(site_id, incarnation),
                    self._durable_for(site_id, incarnation),
                ),
            )
            stats.frames_sent += 1

    def _apply(self, export: DeltaExport, stats: TransportStats) -> None:
        from repro.errors import DeltaSequenceError

        try:
            applied = self.coordinator.collect(export)
        except DeltaSequenceError:
            # A gap: the ack below carries the coordinator's actual
            # applied sequence and the site rewinds from there.
            return
        if applied:
            stats.deltas_applied += 1
            self._applied_since_checkpoint += 1
            self._maybe_checkpoint()
        else:
            stats.duplicates_dropped += 1

    async def _send_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        try:
            await protocol.write_message(
                writer, protocol.error_message(message)
            )
        except (ConnectionError, OSError):
            pass
