"""Robustness bench: behaviour under heavy deletion traffic.

The paper's headline robustness claim is that a 2-level hash sketch after
an update stream is *identical* to one that never saw the deleted items —
so estimate quality is untouched by churn — whereas MIPs and distinct
sampling lose state they cannot rebuild without rescanning.  This bench
quantifies all three on the same churn-heavy workload.
"""

from __future__ import annotations

import numpy as np
from _common import intersection_dataset

from repro.baselines.distinct_sampling import DistinctSampler
from repro.baselines.minhash import BottomKSketch
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.errors import IllegalDeletionError
from repro.experiments.metrics import relative_error

CHURN_FACTOR = 2  # deleted items per surviving item


def run_deletion_robustness():
    rng = np.random.default_rng(4004)
    survivors = rng.choice(2**24, size=4096, replace=False).astype(np.uint64)
    churn = rng.choice(2**24, size=CHURN_FACTOR * 4096, replace=False).astype(np.uint64)

    shape = SketchShape(domain_bits=24, num_second_level=16, independence=8)
    spec = SketchSpec(num_sketches=192, shape=shape, seed=1)

    churned = spec.build()
    churned.update_batch(np.concatenate([survivors, churn]))
    churned.update_batch(churn, np.full(churn.size, -1))
    clean = spec.build()
    clean.update_batch(survivors)

    identical = churned == clean
    sketch_error = relative_error(
        estimate_union([churned], 0.1).value, survivors.size
    )

    # Bottom-k MinHash on the same traffic: count unrecoverable holes.
    bottom_k = BottomKSketch(k=128, seed=2, domain_bits=24)
    for element in np.concatenate([survivors, churn]):
        bottom_k.insert(int(element))
    minhash_depletions = 0
    for element in churn:
        try:
            bottom_k.delete(int(element))
        except IllegalDeletionError:
            minhash_depletions += 1
    minhash_error = relative_error(bottom_k.estimate_distinct(), survivors.size)

    # Distinct sampler on the same traffic.
    sampler = DistinctSampler(capacity=128, seed=3, domain_bits=24)
    for element in np.concatenate([survivors, churn]):
        sampler.insert(int(element))
    sampler_failed = False
    for element in churn:
        try:
            sampler.delete(int(element))
        except IllegalDeletionError:
            sampler_failed = True
            break
    sampler_error = relative_error(sampler.estimate_distinct(), survivors.size)

    return {
        "identical": identical,
        "sketch_error": sketch_error,
        "minhash_depletions": minhash_depletions,
        "minhash_error": minhash_error,
        "sampler_failed": sampler_failed,
        "sampler_error": sampler_error,
    }


def test_deletion_robustness(benchmark):
    outcome = benchmark.pedantic(run_deletion_robustness, rounds=1, iterations=1)
    print()
    print(f"Deletion robustness, {CHURN_FACTOR}x churn over 4096 survivors")
    print(
        f"  2-level hash sketch : state identical to insert-only build: "
        f"{outcome['identical']}; distinct-count error "
        f"{100 * outcome['sketch_error']:.1f}%"
    )
    print(
        f"  bottom-k MinHash    : {outcome['minhash_depletions']} unrecoverable "
        f"holes; distinct-count error {100 * outcome['minhash_error']:.1f}%"
    )
    print(
        f"  distinct sampler    : depleted={outcome['sampler_failed']}; "
        f"distinct-count error {100 * outcome['sampler_error']:.1f}%"
    )
    print("paper: the sketch is impervious to deletions; sampling synopses")
    print("       require rescanning past items once depleted")

    assert outcome["identical"]
    assert outcome["sketch_error"] < 0.3
    assert outcome["minhash_depletions"] > 0
    # The depleted baselines are badly biased on the surviving set.
    assert outcome["minhash_error"] > outcome["sketch_error"]
