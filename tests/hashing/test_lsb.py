"""Unit tests for the least-significant-set-bit utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.lsb import NUM_LEVELS, lsb, lsb_array


class TestScalarLsb:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [(1, 0), (2, 1), (3, 0), (4, 2), (6, 1), (8, 3), (12, 2), (1 << 60, 60)],
    )
    def test_known_values(self, value: int, expected: int):
        assert lsb(value) == expected

    def test_zero_maps_to_top_level(self):
        assert lsb(0) == NUM_LEVELS - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lsb(-1)

    def test_odd_numbers_map_to_zero(self):
        for value in (1, 3, 5, 7, 99, 2**40 + 1):
            assert lsb(value) == 0

    def test_powers_of_two(self):
        for exponent in range(61):
            assert lsb(1 << exponent) == exponent


class TestArrayLsb:
    def test_matches_scalar_randomised(self):
        rng = np.random.default_rng(8)
        values = rng.integers(0, 2**61, size=5000, dtype=np.uint64)
        array_result = lsb_array(values)
        for value, level in zip(values, array_result):
            assert int(level) == lsb(int(value))

    def test_zero_in_array(self):
        values = np.array([0, 1, 0, 4], dtype=np.uint64)
        assert list(lsb_array(values)) == [NUM_LEVELS - 1, 0, NUM_LEVELS - 1, 2]

    def test_empty_array(self):
        assert lsb_array(np.array([], dtype=np.uint64)).shape == (0,)

    def test_result_dtype(self):
        assert lsb_array(np.array([4], dtype=np.uint64)).dtype == np.int64

    def test_geometric_distribution(self):
        """Uniform inputs must hit level l with frequency ~2**-(l+1)."""
        rng = np.random.default_rng(9)
        values = rng.integers(1, 2**61, size=200_000, dtype=np.uint64)
        levels = lsb_array(values)
        for level in range(5):
            frequency = float((levels == level).mean())
            expected = 2.0 ** -(level + 1)
            assert abs(frequency - expected) < 0.01

    def test_high_bit_values(self):
        values = np.array([1 << 63, (1 << 63) + 1], dtype=np.uint64)
        assert list(lsb_array(values)) == [63, 0]
