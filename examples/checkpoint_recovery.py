"""Durable stream processing: update logs, checkpoints, crash recovery.

Streams are one-pass — if the summariser crashes, the data is gone.  This
example shows the operational loop a production deployment runs:

1. traffic is appended to a durable update log as it is summarised;
2. the engine checkpoints its synopses periodically;
3. after a "crash", a fresh engine restores from the checkpoint and
   replays only the log suffix written since — ending bit-for-bit
   identical to an engine that never crashed.

Run:  python examples/checkpoint_recovery.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import SketchSpec, StreamEngine, Update, checkpoint_engine, restore_engine
from repro.streams.sources import load_updates, replay_into, save_updates


def synthesise_traffic(rng: np.random.Generator) -> list[Update]:
    """Interleaved inserts and deletes over two streams."""
    pool = rng.choice(2**30, size=6000, replace=False)
    updates = []
    for element in pool[:4000]:
        updates.append(Update("A", int(element), +1))
    for element in pool[2000:]:
        updates.append(Update("B", int(element), +1))
    for element in pool[2000:3000]:  # churn: remove some shared elements
        updates.append(Update("A", int(element), -1))
    return updates


def main() -> None:
    rng = np.random.default_rng(404)
    spec = SketchSpec(num_sketches=192, seed=11)
    workdir = Path(tempfile.mkdtemp(prefix="repro-recovery-"))
    print(f"working under {workdir}")

    traffic = synthesise_traffic(rng)
    half = len(traffic) // 2
    log_1 = workdir / "segment-1.log.gz"
    log_2 = workdir / "segment-2.log.gz"
    save_updates(log_1, traffic[:half])
    save_updates(log_2, traffic[half:])

    # --- normal operation: summarise segment 1, checkpoint -----------------
    engine = StreamEngine(spec)
    replay_into(log_1, engine)
    checkpoint = workdir / "checkpoint"
    checkpoint_engine(engine, checkpoint)
    print(f"checkpointed after {engine.updates_processed:,} updates")

    # --- continue with segment 2, then "crash" -----------------------------
    replay_into(log_2, engine)
    final_answer = engine.query("A & B", epsilon=0.15)
    print(f"pre-crash  |A ∩ B| ≈ {final_answer.value:,.0f}")
    del engine  # the crash

    # --- recovery: restore + replay the post-checkpoint segment ------------
    recovered = restore_engine(checkpoint)
    print(f"restored engine knows streams {recovered.stream_names()} "
          f"({recovered.updates_processed:,} updates summarised)")
    replay_into(log_2, recovered)
    recovered_answer = recovered.query("A & B", epsilon=0.15)
    print(f"post-crash |A ∩ B| ≈ {recovered_answer.value:,.0f}")

    assert recovered_answer.value == final_answer.value, "recovery must be exact"
    print("recovered estimate identical to the uninterrupted run ✔")

    # Bonus: the log alone reproduces everything (cold rebuild).
    cold = StreamEngine(spec)
    for path in (log_1, log_2):
        for update in load_updates(path):
            cold.process(update)
    assert cold.query("A & B", epsilon=0.15).value == final_answer.value
    print("cold rebuild from logs agrees too ✔")


if __name__ == "__main__":
    main()
