"""Figure 8: average relative error for |(A − B) ∩ C| vs number of sketches.

The paper's three-stream set-expression experiment: trends mirror the
binary-operator figures — error tails off with synopsis space, larger
target expression sizes estimate better.
"""

from __future__ import annotations

from _common import print_figure

from repro.experiments.config import FIGURES, scaled_config
from repro.experiments.runner import run_sweep


def test_fig8_expression(benchmark):
    config = scaled_config(FIGURES["fig8"], "bench")
    result = benchmark.pedantic(run_sweep, args=(config,), rounds=1, iterations=1)
    print_figure(result)

    for series in result.series:
        assert series.errors[-1] <= series.errors[0] + 0.05
    largest_target = result.series[0]
    assert largest_target.errors[-1] < 0.40
