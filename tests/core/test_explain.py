"""Unit tests for the per-subexpression explanation API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.expression import estimate_expression
from repro.core.explain import explain_expression
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.datagen.controlled import generate_controlled
from repro.errors import UnknownStreamError

SHAPE = SketchShape(domain_bits=24, num_second_level=12, independence=8)


def families_for(dataset, num_sketches=256, seed=0):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    built = {}
    for name in dataset.stream_names():
        family = spec.build()
        family.update_batch(dataset.elements[name])
        built[name] = family
    return built


@pytest.fixture(scope="module")
def explained():
    rng = np.random.default_rng(300)
    dataset = generate_controlled("(A - B) & C", 2048, 0.25, rng, domain_bits=24)
    families = families_for(dataset)
    explanation = explain_expression("(A - B) & C", families, 0.1)
    return dataset, families, explanation


class TestConsistency:
    def test_top_level_matches_plain_estimator(self, explained):
        dataset, families, explanation = explained
        union = estimate_union(list(families.values()), 0.1 / 3)
        direct = estimate_expression(
            "(A - B) & C", families, 0.1, union_estimate=union
        )
        assert explanation.estimate.value == pytest.approx(direct.value)
        assert explanation.estimate.num_witnesses == direct.num_witnesses

    def test_all_nodes_share_level_and_union(self, explained):
        _, _, explanation = explained
        levels = {estimate.level for _, estimate in explanation.subexpressions}
        unions = {estimate.union_estimate for _, estimate in explanation.subexpressions}
        assert len(levels) == 1
        assert len(unions) == 1

    def test_depth_first_node_order(self, explained):
        _, _, explanation = explained
        texts = [text for text, _ in explanation.subexpressions]
        assert texts == ["((A - B) & C)", "(A - B)", "A", "B", "C"]

    def test_monotonicity_of_witness_counts(self, explained):
        """E = (A-B) ∩ C can never have more witnesses than A-B or C."""
        _, _, explanation = explained
        top = explanation.cardinality_of("((A - B) & C)")
        diff = explanation.cardinality_of("(A - B)")
        c_only = explanation.cardinality_of("C")
        assert top.num_witnesses <= diff.num_witnesses
        assert top.num_witnesses <= c_only.num_witnesses

    def test_subexpression_estimates_are_plausible(self, explained):
        dataset, _, explanation = explained
        for text in ("(A - B)", "A", "C"):
            truth = dataset.exact_cardinality(text)
            estimate = explanation.cardinality_of(text).value
            assert abs(estimate - truth) / truth < 0.6, (text, estimate, truth)


class TestInterface:
    def test_float_coercion(self, explained):
        _, _, explanation = explained
        assert float(explanation) == explanation.estimate.value

    def test_unknown_node_raises(self, explained):
        _, _, explanation = explained
        with pytest.raises(KeyError):
            explanation.cardinality_of("(X & Y)")

    def test_as_table(self, explained):
        _, _, explanation = explained
        table = explanation.as_table()
        assert "subexpression" in table
        assert "(A - B)" in table

    def test_unknown_stream(self, explained):
        _, families, _ = explained
        with pytest.raises(UnknownStreamError):
            explain_expression("A & Z", families)

    def test_bad_epsilon(self, explained):
        _, families, _ = explained
        with pytest.raises(ValueError):
            explain_expression("A & B", families, epsilon=0.0)

    def test_empty_streams(self):
        spec = SketchSpec(num_sketches=16, shape=SHAPE, seed=0)
        families = {"A": spec.build(), "B": spec.build()}
        explanation = explain_expression("A - B", families)
        assert explanation.estimate.value == 0.0
        assert all(e.value == 0.0 for _, e in explanation.subexpressions)
