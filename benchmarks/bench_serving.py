"""Serving bench: query latency under sustained ingest.

The serving front end answers set-expression queries on the same event
loop that folds site deltas — snapshot consistency comes from drain
atomicity, not locks, so the question this bench answers is *what that
costs*: p50/p99 query latency for N concurrent clients while sites keep
shipping, and whether batching (many clients, one drain) holds the tail.

The workload mounts a query server on a root coordinator
(``CoordinatorServer(..., query_port=...)``), drives sustained ingest
from several site clients, and runs N concurrent query clients issuing
expression and union queries the whole time.  Every update is mirrored
into a flat :class:`~repro.streams.engine.StreamEngine` twin; after the
final quiesce the served answers must be **bit-identical** to the
twin's.

Gates (``--smoke`` runs a scaled-down version as a CI gate, exiting
non-zero on violation):

* zero query errors across every client;
* every client observes **monotone non-decreasing** snapshot positions
  (time never runs backwards for a session);
* post-quiesce served answers bit-identical to the flat twin;
* the plan cache parses each distinct expression text exactly once.

Results (latency percentiles, queries/s, batching counters) land in
``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import pathlib
import random
import sys
import time

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.distributed import StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.serving import QueryClient
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
STREAMS = ("A", "B", "C")

#: Expression texts the clients cycle through; the distinct-text count
#: pins the parse-once gate on the plan cache.
EXPRESSIONS = (
    "A & B",
    "A | B",
    "(A - B) | C",
    "A - C",
    "(A & B) - C",
)
EPSILON = 0.2


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q / 100 * len(ordered)) - 1))
    return ordered[index]


async def run_serving(
    spec: SketchSpec,
    *,
    num_sites: int,
    num_clients: int,
    rounds: int,
    updates_per_round: int,
    seed: int,
) -> dict:
    root = CoordinatorServer(spec, query_port=0)
    await root.start()

    flat = StreamEngine(spec)
    rng = np.random.default_rng(seed)

    sites = [
        SiteClient(
            site=StreamSite(f"site-{index}", spec),
            port=root.port,
            rng=random.Random(seed + 10 + index),
        )
        for index in range(num_sites)
    ]

    # Seed every stream before clients start so no query can race an
    # unknown name.
    for client in sites:
        for stream in STREAMS:
            update = Update(stream, int(rng.integers(0, 2**SHAPE.domain_bits)), 1)
            client.observe(update)
            flat.process(update)
        await client.ship()

    ingest_done = asyncio.Event()
    total_updates = 0

    async def ingest() -> None:
        nonlocal total_updates
        try:
            for _ in range(rounds):
                for client in sites:
                    for stream in STREAMS:
                        elements = rng.integers(
                            0, 2**SHAPE.domain_bits, size=updates_per_round
                        )
                        for element in elements:
                            update = Update(stream, int(element), 1)
                            client.observe(update)
                            flat.process(update)
                        total_updates += updates_per_round
                    await client.ship()
                # Yield generously so parked queries drain mid-round.
                await asyncio.sleep(0)
        finally:
            ingest_done.set()

    async def query_client(offset: int) -> dict:
        latencies: list[float] = []
        errors = 0
        regressions = 0
        answered = 0
        last_position = (-1, -1)
        async with QueryClient("127.0.0.1", root.query_port) as client:
            while not ingest_done.is_set():
                text = EXPRESSIONS[(offset + answered) % len(EXPRESSIONS)]
                started = time.perf_counter()
                try:
                    if (offset + answered) % 7 == 6:
                        await client.query_union(list(STREAMS), EPSILON)
                    else:
                        await client.query(text, EPSILON)
                except Exception:
                    errors += 1
                else:
                    latencies.append(time.perf_counter() - started)
                    if client.last_position < last_position:
                        regressions += 1
                    last_position = client.last_position
                answered += 1
        return {
            "latencies": latencies,
            "errors": errors,
            "position_regressions": regressions,
        }

    started = time.perf_counter()
    outcomes = await asyncio.gather(
        ingest(), *(query_client(index) for index in range(num_clients))
    )
    elapsed = time.perf_counter() - started
    client_outcomes = outcomes[1:]

    # Quiesce: drain every site's retained tail, then the served answers
    # must be bit-identical to the flat twin's.
    for client in sites:
        await client.ship()
        await client.close()
    divergences = 0
    async with QueryClient("127.0.0.1", root.query_port) as client:
        for text in EXPRESSIONS:
            if await client.query(text, EPSILON) != flat.query(text, EPSILON):
                divergences += 1
        if await client.query_union(list(STREAMS), EPSILON) != flat.query_union(
            list(STREAMS), EPSILON
        ):
            divergences += 1

    server = root.query_server
    serving_stats = server.stats()
    tenant_stats = next(iter(serving_stats.values()))
    plan_parses = server.plans.parses
    plan_hits = server.plans.hits
    drains = server.drains
    batched_drains = server.batched_drains
    await root.stop()

    latencies = [
        sample
        for outcome in client_outcomes
        for sample in outcome["latencies"]
    ]
    queries = len(latencies)
    return {
        "updates": total_updates,
        "queries_answered": queries,
        "query_errors": sum(o["errors"] for o in client_outcomes),
        "position_regressions": sum(
            o["position_regressions"] for o in client_outcomes
        ),
        "latency_p50_ms": percentile(latencies, 50) * 1000,
        "latency_p99_ms": percentile(latencies, 99) * 1000,
        "latency_max_ms": (max(latencies) if latencies else float("nan")) * 1000,
        "queries_per_second": queries / elapsed if elapsed else 0.0,
        "updates_per_second": total_updates / elapsed if elapsed else 0.0,
        "elapsed_seconds": elapsed,
        "drains": drains,
        "batched_drains": batched_drains,
        "batched_queries": tenant_stats.batched_queries,
        "plan_parses": plan_parses,
        "plan_hits": plan_hits,
        "quiesced_divergences": divergences,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--sites", type=int, default=2)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--updates-per-round", type=int, default=200)
    parser.add_argument("--sketches", type=int, default=128)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("BENCH_serving.json")
    )
    args = parser.parse_args()
    if args.smoke:
        args.sites, args.clients, args.rounds = 2, 4, 4
        args.updates_per_round, args.sketches = 64, 48

    spec = SketchSpec(num_sketches=args.sketches, shape=SHAPE, seed=5)
    print(
        f"spec: r={args.sketches}; {args.clients} query clients over "
        f"{args.sites} ingesting sites, {args.rounds} rounds"
    )
    result = asyncio.run(
        run_serving(
            spec,
            num_sites=args.sites,
            num_clients=args.clients,
            rounds=args.rounds,
            updates_per_round=args.updates_per_round,
            seed=args.seed,
        )
    )
    print(
        f"{result['queries_answered']} queries during "
        f"{result['updates']:,} updates: p50 "
        f"{result['latency_p50_ms']:.2f} ms, p99 "
        f"{result['latency_p99_ms']:.2f} ms, "
        f"{result['queries_per_second']:,.0f} q/s alongside "
        f"{result['updates_per_second']:,.0f} updates/s"
    )
    print(
        f"batching: {result['batched_drains']}/{result['drains']} drains "
        f"multi-request, {result['batched_queries']} queries shared a "
        f"snapshot; plan cache {result['plan_parses']} parses / "
        f"{result['plan_hits']} hits"
    )

    payload = {
        "workload": {
            "sites": args.sites,
            "query_clients": args.clients,
            "rounds": args.rounds,
            "updates_per_round_per_stream": args.updates_per_round,
            "streams": list(STREAMS),
            "expressions": list(EXPRESSIONS),
            "epsilon": EPSILON,
            "num_sketches": args.sketches,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "result": result,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if result["queries_answered"] == 0:
        failures.append("no queries were answered during ingest")
    if result["query_errors"]:
        failures.append(f"{result['query_errors']} query errors")
    if result["position_regressions"]:
        failures.append(
            f"{result['position_regressions']} snapshot positions ran "
            "backwards"
        )
    if result["quiesced_divergences"]:
        failures.append(
            f"{result['quiesced_divergences']} served answers diverged "
            "from the flat twin after quiesce"
        )
    # EXPRESSIONS plus the quiesce pass re-issuing the same texts: every
    # distinct text parses exactly once, ever.
    if result["plan_parses"] != len(EXPRESSIONS):
        failures.append(
            f"plan cache parsed {result['plan_parses']} times for "
            f"{len(EXPRESSIONS)} distinct texts"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
