"""Unit tests for the stream-processing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.exact import ExactStreamStore
from repro.streams.updates import Update, insertions

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=256, shape=SHAPE, seed=7)


class TestIngest:
    def test_updates_processed_counter(self):
        engine = StreamEngine(SPEC)
        engine.process_many(insertions("A", range(10)))
        assert engine.updates_processed == 10

    def test_stream_names_include_buffered(self):
        engine = StreamEngine(SPEC, batch_size=1000)
        engine.process(Update("X", 1, 1))
        assert engine.stream_names() == ["X"]

    def test_buffering_defers_family_creation(self):
        engine = StreamEngine(SPEC, batch_size=1000)
        engine.process(Update("A", 1, 1))
        assert engine.synopsis_bytes() == 0
        engine.flush()
        assert engine.synopsis_bytes() > 0

    def test_batch_size_triggers_flush(self):
        engine = StreamEngine(SPEC, batch_size=3)
        for element in range(3):
            engine.process(Update("A", element, 1))
        assert engine.synopsis_bytes() > 0

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            StreamEngine(SPEC, batch_size=0)

    def test_engine_state_matches_direct_family(self):
        """Buffered/flushed maintenance must equal a directly built family."""
        engine = StreamEngine(SPEC, batch_size=5)
        rng = np.random.default_rng(95)
        elements = rng.integers(0, 2**20, size=57, dtype=np.uint64)
        deltas = rng.integers(1, 4, size=57)
        for element, delta in zip(elements, deltas):
            engine.process(Update("A", int(element), int(delta)))
        direct = SPEC.build()
        direct.update_batch(elements, deltas)
        assert engine.family("A") == direct

    def test_deletions_flow_through(self):
        engine = StreamEngine(SPEC)
        engine.process(Update("A", 5, 1))
        engine.process(Update("A", 5, -1))
        assert engine.family("A").is_empty()


class TestQueries:
    def _loaded_engine(self):
        engine = StreamEngine(SPEC)
        exact = ExactStreamStore()
        rng = np.random.default_rng(96)
        pool = rng.choice(2**20, size=3000, replace=False)
        batches = {
            "A": pool[:2000],
            "B": pool[1000:3000],
        }
        for stream, elements in batches.items():
            for element in elements:
                update = Update(stream, int(element), 1)
                engine.process(update)
                exact.apply(update)
        return engine, exact

    def test_query_accuracy(self):
        engine, exact = self._loaded_engine()
        for expression in ("A & B", "A - B", "A | B"):
            estimate = engine.query(expression, 0.2)
            truth = exact.cardinality(expression)
            assert abs(estimate.value - truth) / truth < 0.5, expression

    def test_query_union(self):
        engine, exact = self._loaded_engine()
        estimate = engine.query_union(["A", "B"], 0.2)
        truth = exact.cardinality("A | B")
        assert abs(estimate.value - truth) / truth < 0.3

    def test_query_flushes_buffers(self):
        engine = StreamEngine(SPEC, batch_size=10_000)
        engine.process_many(insertions("A", range(100)))
        estimate = engine.query_union(["A"], 0.2)
        assert estimate.value > 0

    def test_query_on_unseen_stream_estimates_zero(self):
        engine = StreamEngine(SPEC)
        engine.process(Update("A", 1, 1))
        assert engine.query("A & Z", 0.2).value == 0.0

    def test_query_with_expression_tree(self):
        from repro.expr import streams

        engine, exact = self._loaded_engine()
        A, B = streams("A", "B")
        estimate = engine.query(A & B, 0.2)
        truth = exact.cardinality("A & B")
        assert abs(estimate.value - truth) / truth < 0.5


class TestExplain:
    def test_explain_consistent_with_query(self):
        engine = StreamEngine(SPEC)
        rng = np.random.default_rng(777)
        pool = rng.choice(2**20, size=2000, replace=False)
        for element in pool[:1500]:
            engine.process(Update("A", int(element), 1))
        for element in pool[500:]:
            engine.process(Update("B", int(element), 1))
        explanation = engine.explain("A - B", 0.2)
        assert explanation.estimate.value >= 0
        texts = [text for text, _ in explanation.subexpressions]
        assert texts == ["(A - B)", "A", "B"]
        # Subexpression estimates share one union estimate and level.
        levels = {estimate.level for _, estimate in explanation.subexpressions}
        assert len(levels) == 1
