"""Space bench: the insert-only bitmap variant (paper Section 5.1).

The paper's byte estimate for its experiments "assumes simple bits
(instead of counters) at each cell" — valid because its accuracy runs are
insert-only.  This bench quantifies that trade on our implementation:
identical estimates, 8× smaller in-memory occupancy arrays, 64× smaller
bit-packed wire payloads, at the cost of giving up deletions.
"""

from __future__ import annotations

from _common import build_families, intersection_dataset

from repro.core.bitmap import BitmapFamily
from repro.core.intersection import estimate_intersection

NUM_SKETCHES = 256


def run_bitmap_comparison():
    dataset = intersection_dataset(seed=500)
    families = build_families(dataset, NUM_SKETCHES, seed=0)
    bitmaps = {
        name: BitmapFamily.from_family(family)
        for name, family in families.items()
    }
    full_estimate = estimate_intersection(families["A"], families["B"], 0.1)
    compact_estimate = estimate_intersection(bitmaps["A"], bitmaps["B"], 0.1)
    return {
        "full_value": full_estimate.value,
        "compact_value": compact_estimate.value,
        "counter_bytes": families["A"].counters.nbytes,
        "occupancy_bytes": bitmaps["A"].memory_bytes,
        "wire_bytes": len(bitmaps["A"].to_bytes()),
    }


def test_bitmap_space_trade(benchmark):
    stats = benchmark.pedantic(run_bitmap_comparison, rounds=1, iterations=1)
    print()
    print(f"Insert-only bitmap variant at r={NUM_SKETCHES} sketches/stream")
    print(f"  counter family : {stats['counter_bytes'] / 1e6:8.2f} MB")
    print(f"  occupancy array: {stats['occupancy_bytes'] / 1e6:8.2f} MB (8x)")
    print(f"  packed payload : {stats['wire_bytes'] / 1e6:8.2f} MB (64x)")
    print(
        f"  estimates identical: "
        f"{stats['full_value'] == stats['compact_value']}"
    )
    print("paper: §5.1's byte accounting assumes exactly this variant")

    assert stats["full_value"] == stats["compact_value"]
    assert stats["occupancy_bytes"] * 8 == stats["counter_bytes"]
    assert stats["wire_bytes"] * 64 <= stats["counter_bytes"]
