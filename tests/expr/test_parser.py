"""Unit tests for the set-expression parser."""

from __future__ import annotations

import pytest

from repro.errors import ExpressionError
from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    StreamRef,
    UnionExpr,
    streams,
)
from repro.expr.parser import parse


class TestBasicParsing:
    def test_single_name(self):
        assert parse("A") == StreamRef("A")

    def test_binary_operators(self):
        A, B = streams("A", "B")
        assert parse("A | B") == A | B
        assert parse("A & B") == A & B
        assert parse("A - B") == A - B

    def test_unicode_operators(self):
        A, B = streams("A", "B")
        assert parse("A ∪ B") == A | B
        assert parse("A ∩ B") == A & B
        assert parse("A − B") == A - B

    def test_alternate_spellings(self):
        A, B = streams("A", "B")
        assert parse("A + B") == A | B
        assert parse("A \\ B") == A - B

    def test_sql_keywords(self):
        A, B = streams("A", "B")
        assert parse("A UNION B") == A | B
        assert parse("A intersect B") == A & B
        assert parse("A EXCEPT B") == A - B
        assert parse("A minus B") == A - B

    def test_multi_character_names(self):
        assert parse("router_1 & router_2") == IntersectionExpr(
            StreamRef("router_1"), StreamRef("router_2")
        )

    def test_whitespace_flexible(self):
        A, B = streams("A", "B")
        assert parse("A|B") == A | B
        assert parse("  A  |  B  ") == A | B


class TestPrecedenceAndAssociativity:
    def test_intersection_binds_tighter_than_union(self):
        A, B, C = streams("A", "B", "C")
        assert parse("A | B & C") == A | (B & C)

    def test_intersection_binds_tighter_than_difference(self):
        A, B, C = streams("A", "B", "C")
        assert parse("A - B & C") == A - (B & C)

    def test_union_difference_left_associative(self):
        A, B, C = streams("A", "B", "C")
        assert parse("A - B - C") == (A - B) - C
        assert parse("A | B - C") == (A | B) - C
        assert parse("A - B | C") == (A - B) | C

    def test_intersection_left_associative(self):
        A, B, C = streams("A", "B", "C")
        assert parse("A & B & C") == (A & B) & C

    def test_parentheses_override(self):
        A, B, C = streams("A", "B", "C")
        assert parse("(A | B) & C") == (A | B) & C
        assert parse("A - (B - C)") == A - (B - C)

    def test_paper_expression(self):
        A, B, C = streams("A", "B", "C")
        assert parse("(A - B) & C") == (A - B) & C

    def test_paper_intro_expression(self):
        """The paper's intro example: A4 - (A3 & (A2 | A1))."""
        A1, A2, A3, A4 = streams("A1", "A2", "A3", "A4")
        assert parse("A4 - (A3 & (A2 | A1))") == A4 - (A3 & (A2 | A1))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "A",
            "(A | B)",
            "(A & B)",
            "(A - B)",
            "((A - B) & C)",
            "((A | B) - (C & D))",
            "(((A - B) - C) | D)",
        ],
    )
    def test_to_text_reparses_identically(self, text: str):
        tree = parse(text)
        assert parse(tree.to_text()) == tree


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "|",
            "A |",
            "| A",
            "A B",
            "(A",
            "A)",
            "()",
            "A & & B",
            "A ? B",
            "1A & B",
        ],
    )
    def test_malformed_inputs(self, bad: str):
        with pytest.raises(ExpressionError):
            parse(bad)

    def test_error_mentions_source(self):
        with pytest.raises(ExpressionError, match="A \\&"):
            parse("A & ")
