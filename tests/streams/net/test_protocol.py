"""Unit tests for the length-framed wire protocol."""

from __future__ import annotations

import asyncio

import pytest

from repro.streams.distributed import DeltaExport
from repro.streams.net import protocol


class TestEncoding:
    def test_header_round_trip(self):
        header, blobs = protocol.decode_message(
            protocol.encode_message({"type": "hello", "site_id": "s"})
        )
        assert header == {"type": "hello", "site_id": "s"}
        assert blobs == []

    def test_blobs_round_trip(self):
        payload = protocol.encode_message(
            {"type": "delta", "x": 1}, [b"abc", b"", b"\x00\xff" * 10]
        )
        header, blobs = protocol.decode_message(payload)
        assert header == {"type": "delta", "x": 1}
        assert blobs == [b"abc", b"", b"\x00\xff" * 10]

    @pytest.mark.parametrize(
        "payload",
        [
            b"",  # no header length
            b"\x00\x00\x00\xff",  # header longer than frame
            b"\x00\x00\x00\x02{}",  # valid JSON but no type
            b"\x00\x00\x00\x03abc",  # not JSON
        ],
    )
    def test_malformed_frames_rejected(self, payload):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(payload)

    def test_trailing_bytes_rejected(self):
        good = protocol.encode_message({"type": "x"})
        with pytest.raises(protocol.ProtocolError, match="trailing"):
            protocol.decode_message(good + b"junk")

    def test_blob_length_mismatch_rejected(self):
        # Declared blob extends past the end of the frame.
        tampered = protocol.encode_message({"type": "x"}, [b"abcd"])[:-2]
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(tampered)


class TestHelloVersion:
    def test_capability_free_hello_announces_version_1(self):
        # A site offering no v2 capability must produce a hello a
        # genuine v1 coordinator (which accepts only version 1) takes —
        # interop cannot depend on coordinator-first rollout.
        assert protocol.hello_message("s", "life-1")["version"] == 1

    def test_v2_capabilities_raise_the_version(self):
        by_encoding = protocol.hello_message(
            "s", "life-1", encodings=("sparse",)
        )
        by_feature = protocol.hello_message(
            "s", "life-1", features=("batch",)
        )
        assert by_encoding["version"] == protocol.PROTOCOL_VERSION
        assert by_feature["version"] == protocol.PROTOCOL_VERSION


class TestDeltaMessages:
    def test_export_round_trip(self):
        export = DeltaExport("site-9", 3, {"B": b"bb", "A": b"aaaa"}, "life-1")
        header, blobs = protocol.delta_message(export)
        rebuilt = protocol.export_from_message(header, blobs)
        assert rebuilt.site_id == "site-9"
        assert rebuilt.sequence == 3
        assert rebuilt.incarnation == "life-1"
        assert dict(rebuilt.payloads) == {"A": b"aaaa", "B": b"bb"}

    def test_empty_export_round_trip(self):
        export = DeltaExport("s", 1, {}, "life-1")
        header, blobs = protocol.delta_message(export)
        rebuilt = protocol.export_from_message(header, blobs)
        assert rebuilt.is_empty and rebuilt.sequence == 1

    @pytest.mark.parametrize(
        "header,blobs",
        [
            ({"type": "ack"}, []),  # wrong type
            (
                {"type": "delta", "site_id": "s", "incarnation": "i",
                 "sequence": 0, "streams": []},
                [],  # sequence below 1
            ),
            (
                {"type": "delta", "site_id": 7, "incarnation": "i",
                 "sequence": 1, "streams": []},
                [],  # non-string site id
            ),
            (
                {"type": "delta", "site_id": "s", "sequence": 1,
                 "streams": []},
                [],  # missing incarnation
            ),
            (
                {"type": "delta", "site_id": "s", "incarnation": "",
                 "sequence": 1, "streams": []},
                [],  # empty incarnation
            ),
            (
                {"type": "delta", "site_id": "s", "incarnation": "i",
                 "sequence": 1, "streams": ["A"]},
                [],  # blob count mismatch
            ),
            (
                {"type": "delta", "site_id": "s", "incarnation": "i",
                 "sequence": 1, "streams": ["A", "A"]},
                [b"x", b"y"],  # duplicate stream names
            ),
        ],
    )
    def test_invalid_delta_messages_rejected(self, header, blobs):
        with pytest.raises(protocol.ProtocolError):
            protocol.export_from_message(header, blobs)


class TestAsyncFraming:
    def _round_trip(self, header, blobs=()):
        async def run():
            reader = asyncio.StreamReader()
            payload = protocol.encode_message(header, blobs)
            import struct

            reader.feed_data(struct.pack(">I", len(payload)) + payload)
            reader.feed_eof()
            return await protocol.read_message(reader)

        return asyncio.run(run())

    def test_read_message(self):
        header, blobs, nbytes = self._round_trip(
            {"type": "delta", "sequence": 2}, [b"counters"]
        )
        assert header["sequence"] == 2
        assert blobs == [b"counters"]
        assert nbytes > len(b"counters")

    def test_oversized_frame_rejected_before_read(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff")
            with pytest.raises(protocol.ProtocolError, match="exceeds"):
                await protocol.read_message(reader, max_bytes=1024)

        asyncio.run(run())

    def test_truncated_frame_raises_incomplete_read(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x01\x00partial")
            reader.feed_eof()
            with pytest.raises(asyncio.IncompleteReadError):
                await protocol.read_message(reader)

        asyncio.run(run())
