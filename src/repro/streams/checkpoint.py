"""Engine checkpointing.

Stream processing is one-pass: if the process dies, the stream cannot be
replayed to rebuild the synopses.  A checkpoint writes the engine's whole
state — the sketch spec (the coins) and every stream's counter array — to
a directory that :func:`restore_engine` turns back into a live engine.

Layout::

    <checkpoint>/
        manifest.json          # format version, spec, stream names
        streams/<name>.sketch  # counter payload (SketchFamily.to_bytes)

The counters are the only state; hash functions regenerate from the spec
seed, so checkpoints are small and portable across machines.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.family import SketchFamily, SketchSpec
from repro.errors import ReproError
from repro.streams.engine import StreamEngine

__all__ = ["checkpoint_engine", "restore_engine", "CheckpointError"]

_FORMAT_VERSION = 1


class CheckpointError(ReproError, ValueError):
    """A checkpoint directory is missing, malformed, or incompatible."""


def checkpoint_engine(engine: StreamEngine, directory: str | pathlib.Path) -> None:
    """Write the engine's flushed state into ``directory`` (created if
    needed; existing checkpoint files are overwritten)."""
    directory = pathlib.Path(directory)
    streams_dir = directory / "streams"
    streams_dir.mkdir(parents=True, exist_ok=True)

    engine.flush()
    stream_names = engine.stream_names()
    for name in stream_names:
        payload = engine.family(name).to_bytes()
        (streams_dir / f"{name}.sketch").write_bytes(payload)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "spec": engine.spec.to_json_dict(),
        "streams": stream_names,
        "updates_processed": engine.updates_processed,
    }
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))


def restore_engine(
    directory: str | pathlib.Path, batch_size: int = 4096
) -> StreamEngine:
    """Rebuild a live engine from a checkpoint directory."""
    directory = pathlib.Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        raise CheckpointError(f"no manifest.json under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt manifest: {exc}") from exc

    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {version!r} not supported (expected "
            f"{_FORMAT_VERSION})"
        )
    spec = SketchSpec.from_json_dict(manifest["spec"])
    engine = StreamEngine(spec, batch_size=batch_size)
    for name in manifest["streams"]:
        payload_path = directory / "streams" / f"{name}.sketch"
        if not payload_path.is_file():
            raise CheckpointError(f"missing sketch payload for stream {name!r}")
        family = SketchFamily.from_bytes(payload_path.read_bytes(), spec)
        engine.adopt_family(name, family)
    engine.mark_replayed(int(manifest.get("updates_processed", 0)))
    return engine
