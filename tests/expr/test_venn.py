"""Unit tests for the Venn-partition algebra."""

from __future__ import annotations

import pytest

from repro.expr.parser import parse
from repro.expr.venn import (
    Cell,
    all_cells,
    cells_of_expression,
    expression_size_from_cells,
)


class TestAllCells:
    def test_counts(self):
        assert len(all_cells(["A"])) == 1
        assert len(all_cells(["A", "B"])) == 3
        assert len(all_cells(["A", "B", "C"])) == 7
        assert len(all_cells(["A", "B", "C", "D"])) == 15

    def test_deterministic_order(self):
        assert all_cells(["B", "A"]) == all_cells(["A", "B"])

    def test_two_stream_contents(self):
        cells = all_cells(["A", "B"])
        assert cells == [Cell({"A"}), Cell({"B"}), Cell({"A", "B"})]

    def test_duplicates_collapsed(self):
        assert all_cells(["A", "A", "B"]) == all_cells(["A", "B"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_cells([])


class TestCellsOfExpression:
    def test_intersection(self):
        assert cells_of_expression(parse("A & B")) == [Cell({"A", "B"})]

    def test_difference(self):
        assert cells_of_expression(parse("A - B")) == [Cell({"A"})]

    def test_union(self):
        assert set(cells_of_expression(parse("A | B"))) == {
            Cell({"A"}),
            Cell({"B"}),
            Cell({"A", "B"}),
        }

    def test_paper_figure8_expression(self):
        cells = set(cells_of_expression(parse("(A - B) & C")))
        assert cells == {Cell({"A", "C"})}

    def test_unsatisfiable(self):
        assert cells_of_expression(parse("A - A")) == []

    def test_tautology_over_union(self):
        names = parse("A | B").streams()
        assert len(cells_of_expression(parse("A | B"))) == 2 ** len(names) - 1


class TestExpressionSize:
    SIZES = {
        Cell({"A"}): 10,
        Cell({"B"}): 20,
        Cell({"A", "B"}): 5,
    }

    def test_union(self):
        assert expression_size_from_cells(parse("A | B"), self.SIZES) == 35

    def test_intersection(self):
        assert expression_size_from_cells(parse("A & B"), self.SIZES) == 5

    def test_difference(self):
        assert expression_size_from_cells(parse("A - B"), self.SIZES) == 10
        assert expression_size_from_cells(parse("B - A"), self.SIZES) == 20

    def test_missing_cells_treated_empty(self):
        assert expression_size_from_cells(parse("A & B"), {Cell({"A"}): 3}) == 0

    def test_superset_cells_projected(self):
        """Cells over extra streams project onto the expression's streams."""
        sizes = {Cell({"A", "C"}): 7, Cell({"B", "C"}): 9, Cell({"C"}): 100}
        assert expression_size_from_cells(parse("A - B"), sizes) == 7

    def test_matches_brute_force_random_cases(self):
        import numpy as np

        rng = np.random.default_rng(80)
        expressions = [
            "A & B",
            "A - B",
            "A | B",
            "(A - B) & C",
            "A - (B | C)",
            "(A & B) | (B & C)",
        ]
        for text in expressions:
            expression = parse(text)
            names = sorted(expression.streams())
            cells = all_cells(names)
            sizes = {cell: int(size) for cell, size in zip(cells, rng.integers(0, 50, len(cells)))}
            # Brute force: materialise disjoint element sets per cell.
            sets: dict[str, set] = {name: set() for name in names}
            next_element = 0
            for cell, size in sizes.items():
                members = set(range(next_element, next_element + size))
                next_element += size
                for name in cell:
                    sets[name] |= members
            expected = len(expression.evaluate(sets))
            assert expression_size_from_cells(expression, sizes) == expected
