"""Unit tests for the general set-expression estimator (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.difference import estimate_difference
from repro.core.expression import estimate_expression
from repro.core.family import SketchSpec
from repro.core.intersection import estimate_intersection
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.datagen.controlled import generate_controlled
from repro.errors import UnknownStreamError
from repro.expr import parse, streams

SHAPE = SketchShape(domain_bits=24, num_second_level=12, independence=8)


def families_for(dataset, num_sketches=256, seed=0):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    built = {}
    for name in dataset.stream_names():
        family = spec.build()
        family.update_batch(dataset.elements[name])
        built[name] = family
    return built


class TestAgainstDedicatedEstimators:
    """On the same synopses, the general estimator and the specialised
    difference/intersection estimators check identical witness conditions,
    so they must produce identical counts when given the same û."""

    def _dataset(self, seed):
        rng = np.random.default_rng(seed)
        return generate_controlled("A & B", 2048, 0.3, rng, domain_bits=24)

    def test_intersection_agreement(self):
        dataset = self._dataset(70)
        families = families_for(dataset)
        union = estimate_union(list(families.values()), 0.1 / 3)
        direct = estimate_intersection(
            families["A"], families["B"], 0.1, union_estimate=union
        )
        general = estimate_expression(
            "A & B", families, 0.1, union_estimate=union
        )
        assert general.num_valid == direct.num_valid
        assert general.num_witnesses == direct.num_witnesses
        assert general.value == pytest.approx(direct.value)

    def test_difference_agreement(self):
        dataset = self._dataset(71)
        families = families_for(dataset)
        union = estimate_union(list(families.values()), 0.1 / 3)
        direct = estimate_difference(
            families["A"], families["B"], 0.1, union_estimate=union
        )
        general = estimate_expression(
            "A - B", families, 0.1, union_estimate=union
        )
        assert general.num_valid == direct.num_valid
        assert general.num_witnesses == direct.num_witnesses
        assert general.value == pytest.approx(direct.value)


class TestThreeStreamExpression:
    def test_paper_figure8_expression(self):
        rng = np.random.default_rng(72)
        dataset = generate_controlled(
            "(A - B) & C", 4096, 0.25, rng, domain_bits=24
        )
        families = families_for(dataset, num_sketches=512)
        truth = dataset.target_size
        estimate = estimate_expression("(A - B) & C", families, 0.1)
        assert abs(estimate.value - truth) / truth < 0.5

    def test_nested_union(self):
        rng = np.random.default_rng(73)
        dataset = generate_controlled(
            "A - (B | C)", 4096, 0.25, rng, domain_bits=24
        )
        families = families_for(dataset, num_sketches=512)
        truth = dataset.target_size
        estimate = estimate_expression("A - (B | C)", families, 0.1)
        assert abs(estimate.value - truth) / truth < 0.5

    def test_tree_and_text_inputs_agree(self):
        rng = np.random.default_rng(74)
        dataset = generate_controlled("(A - B) & C", 1024, 0.25, rng, domain_bits=24)
        families = families_for(dataset)
        A, B, C = streams("A", "B", "C")
        union = estimate_union(list(families.values()), 0.1 / 3)
        from_text = estimate_expression(
            "(A - B) & C", families, 0.1, union_estimate=union
        )
        from_tree = estimate_expression(
            (A - B) & C, families, 0.1, union_estimate=union
        )
        assert from_text.value == pytest.approx(from_tree.value)


class TestEdgeCases:
    def test_unknown_stream(self):
        rng = np.random.default_rng(75)
        dataset = generate_controlled("A & B", 256, 0.5, rng, domain_bits=24)
        families = families_for(dataset)
        with pytest.raises(UnknownStreamError):
            estimate_expression("A & Z", families)

    def test_extra_families_ignored(self):
        rng = np.random.default_rng(76)
        dataset = generate_controlled("A & B", 1024, 0.5, rng, domain_bits=24)
        families = families_for(dataset)
        families["UNUSED"] = families["A"]
        estimate = estimate_expression("A & B", families, 0.1)
        assert estimate.value >= 0

    def test_all_empty_streams(self):
        spec = SketchSpec(num_sketches=32, shape=SHAPE, seed=0)
        families = {"A": spec.build(), "B": spec.build()}
        estimate = estimate_expression("A - B", families)
        assert estimate.value == 0.0

    def test_unsatisfiable_expression_estimates_zero(self):
        rng = np.random.default_rng(77)
        pool = rng.choice(2**24, size=1024, replace=False).astype(np.uint64)
        spec = SketchSpec(num_sketches=128, shape=SHAPE, seed=0)
        family = spec.build()
        family.update_batch(pool)
        # A - A is empty by construction; the estimator must see no witness.
        estimate = estimate_expression("A - A", {"A": family}, 0.1)
        assert estimate.value == 0.0

    def test_single_stream_expression(self):
        rng = np.random.default_rng(78)
        pool = rng.choice(2**24, size=2048, replace=False).astype(np.uint64)
        spec = SketchSpec(num_sketches=256, shape=SHAPE, seed=0)
        family = spec.build()
        family.update_batch(pool)
        estimate = estimate_expression("A", {"A": family}, 0.1)
        # Every valid singleton is a witness: estimate == û exactly.
        assert estimate.value == pytest.approx(estimate.union_estimate)


class TestWitnessSemantics:
    def test_witness_counts_consistent_across_operators(self):
        """Over one set of synopses: witnesses(A-B) + witnesses(A&B)
        == witnesses(A), because the conditions partition A's bucket
        occupancy given the union-singleton event."""
        rng = np.random.default_rng(79)
        dataset = generate_controlled("A & B", 2048, 0.4, rng, domain_bits=24)
        families = families_for(dataset)
        union = estimate_union(list(families.values()), 0.1 / 3)
        w_diff = estimate_expression("A - B", families, 0.1, union_estimate=union)
        w_int = estimate_expression("A & B", families, 0.1, union_estimate=union)
        w_a = estimate_expression("A", families, 0.1, union_estimate=union)
        assert w_diff.num_witnesses + w_int.num_witnesses == w_a.num_witnesses
