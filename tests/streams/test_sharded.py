"""Unit tests for the sharded parallel-ingest engine.

The load-bearing property is *exact* equivalence: by sketch linearity a
sharded engine's merged counters must be bit-identical to a single
:class:`StreamEngine` fed the same updates — for every executor backend,
on workloads mixing insertions and deletions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import DomainError, IncompatibleSketchesError
from repro.streams.engine import StreamEngine
from repro.streams.sharded import ShardedEngine, shard_for, shard_vector
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=32, shape=SHAPE, seed=21)

EXECUTORS = ("serial", "threads", "processes")


def mixed_workload(num_updates=6000, seed=123):
    """Skewed mixed insert/delete updates over two streams."""
    rng = np.random.default_rng(seed)
    updates = []
    for _ in range(num_updates):
        stream = ("A", "B")[int(rng.integers(0, 2))]
        element = int(rng.integers(0, 2**12))  # small range -> repeats
        delta = 1 if rng.random() < 0.7 else -1
        updates.append(Update(stream, element, delta))
    return updates


def reference_engine(updates) -> StreamEngine:
    engine = StreamEngine(SPEC, batch_size=512)
    engine.process_many(updates)
    engine.flush()
    return engine


class TestPartitioner:
    def test_scalar_vector_parity(self):
        elements = np.arange(2048, dtype=np.uint64) * 7919
        routed = shard_vector("S", elements, 4)
        for element, shard in zip(elements[:256], routed[:256]):
            assert shard_for("S", int(element), 4) == int(shard)

    def test_deterministic_and_in_range(self):
        for element in (0, 1, 2**20 - 1, 123456):
            shard = shard_for("stream", element, 8)
            assert 0 <= shard < 8
            assert shard == shard_for("stream", element, 8)

    def test_streams_get_different_layouts(self):
        elements = np.arange(4096, dtype=np.uint64)
        a = shard_vector("A", elements, 4)
        b = shard_vector("B", elements, 4)
        assert not np.array_equal(a, b)

    def test_all_shards_used(self):
        elements = np.arange(10_000, dtype=np.uint64)
        counts = np.bincount(shard_vector("S", elements, 7), minlength=7)
        assert (counts > 0).all()
        # roughly balanced: no shard more than 2x the mean
        assert counts.max() < 2 * elements.size / 7


class TestEquivalence:
    """ShardedEngine merged counters == StreamEngine counters, bitwise."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_bit_identical_on_mixed_workload(self, executor):
        updates = mixed_workload()
        reference = reference_engine(updates)
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=512, executor=executor
        ) as sharded:
            sharded.process_many(updates)
            sharded.flush()
            assert sharded.stream_names() == reference.stream_names()
            for name in reference.stream_names():
                assert np.array_equal(
                    sharded.family(name).counters,
                    reference.family(name).counters,
                )
            assert sharded.updates_processed == reference.updates_processed

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_queries_identical(self, executor):
        updates = mixed_workload()
        reference = reference_engine(updates)
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=512, executor=executor
        ) as sharded:
            sharded.process_many(updates)
            assert (
                sharded.query("A & B", 0.2).value
                == reference.query("A & B", 0.2).value
            )
            assert (
                sharded.query_union(["A", "B"], 0.2).value
                == reference.query_union(["A", "B"], 0.2).value
            )

    def test_shard_count_does_not_change_results(self):
        updates = mixed_workload()
        reference = reference_engine(updates)
        for num_shards in (1, 2, 7):
            with ShardedEngine(
                SPEC, num_shards=num_shards, batch_size=256, executor="serial"
            ) as sharded:
                sharded.process_many(updates)
                for name in reference.stream_names():
                    assert np.array_equal(
                        sharded.family(name).counters,
                        reference.family(name).counters,
                    )

    def test_process_batch_equivalent_to_tuples(self):
        rng = np.random.default_rng(5)
        elements = rng.integers(0, 2**20, size=3000, dtype=np.uint64)
        deltas = np.where(rng.random(3000) < 0.6, 1, -1).astype(np.int64)
        reference = reference_engine(
            [Update("Z", int(e), int(d)) for e, d in zip(elements, deltas)]
        )
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=256, executor="serial"
        ) as sharded:
            sharded.process_batch("Z", elements, deltas)
            assert np.array_equal(
                sharded.family("Z").counters, reference.family("Z").counters
            )
            assert sharded.updates_processed == 3000

    def test_shards_hold_disjoint_slices(self):
        updates = mixed_workload()
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=256, executor="serial"
        ) as sharded:
            sharded.process_many(updates)
            parts = sharded.shard_families("A")
            assert len(parts) > 1
            merged = parts[0].copy()
            for part in parts[1:]:
                merged.merge_in_place(part)
            assert np.array_equal(
                merged.counters, sharded.family("A").counters
            )


class TestStats:
    def test_counters_add_up(self):
        updates = mixed_workload(4000)
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=256, executor="serial"
        ) as sharded:
            sharded.process_many(updates)
            sharded.flush()
            stats = sharded.stats()
            assert stats.updates_routed == 4000
            assert sum(s.updates_routed for s in stats.shards) == 4000
            assert 0 < stats.updates_applied <= stats.updates_routed
            assert 0.0 < stats.aggregation_ratio <= 1.0
            assert stats.busiest_shard is not None

    def test_processes_stats_reflect_sync_point(self):
        updates = mixed_workload(2000)
        with ShardedEngine(
            SPEC, num_shards=2, batch_size=128, executor="processes"
        ) as sharded:
            sharded.process_many(updates)
            sharded.flush()
            stats = sharded.stats()
            assert stats.updates_routed == 2000
            assert len(stats.shards) == 2

    def test_merge_metrics_count_query_merges(self):
        with ShardedEngine(
            SPEC, num_shards=2, batch_size=128, executor="serial"
        ) as sharded:
            sharded.process_many(mixed_workload(1000))
            sharded.query("A | B", 0.3)
            sharded.query("A | B", 0.3)  # cached merge, no rebuild
            assert sharded.stats().merges == 1
            sharded.process(Update("A", 1, 1))
            sharded.query("A | B", 0.3)
            assert sharded.stats().merges == 2

    def test_as_table_renders(self):
        with ShardedEngine(
            SPEC, num_shards=2, batch_size=128, executor="serial"
        ) as sharded:
            sharded.process_many(mixed_workload(1000))
            sharded.flush()
            table = sharded.stats().as_table()
            assert "shard" in table and "routed" in table
            # header + 2 shards + total + hash-plan row
            assert len(table.splitlines()) == 5
            assert "row-cache" in table.splitlines()[-1]


class TestHandOffAndAdoption:
    def test_merged_engine_is_independent(self):
        updates = mixed_workload(3000)
        reference = reference_engine(updates)
        with ShardedEngine(
            SPEC, num_shards=3, batch_size=256, executor="serial"
        ) as sharded:
            sharded.process_many(updates)
            merged = sharded.merged_engine()
        assert merged.updates_processed == reference.updates_processed
        for name in reference.stream_names():
            assert np.array_equal(
                merged.family(name).counters, reference.family(name).counters
            )
        merged.process(Update("A", 9, 1))  # usable after close()
        merged.flush()

    def test_adopt_family_then_continue(self):
        seeded = reference_engine(mixed_workload(2000, seed=9))
        with ShardedEngine(
            SPEC, num_shards=3, batch_size=128, executor="serial"
        ) as sharded:
            sharded.adopt_family("A", seeded.family("A"))
            sharded.mark_replayed(seeded.updates_processed)
            extra = [Update("A", i, 1) for i in range(500)]
            sharded.process_many(extra)
            seeded.process_many(extra)
            seeded.flush()
            assert np.array_equal(
                sharded.family("A").counters, seeded.family("A").counters
            )
            assert sharded.updates_processed == seeded.updates_processed

    def test_adopt_requires_matching_spec(self):
        with ShardedEngine(SPEC, num_shards=2, executor="serial") as sharded:
            other = SketchSpec(num_sketches=8, shape=SHAPE, seed=21).build()
            with pytest.raises(IncompatibleSketchesError):
                sharded.adopt_family("A", other)


class TestValidationAndFailures:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedEngine(SPEC, num_shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(SPEC, batch_size=0)
        with pytest.raises(ValueError):
            ShardedEngine(SPEC, executor="fibers")

    def test_thread_worker_errors_surface_on_flush(self):
        with ShardedEngine(
            SPEC, num_shards=2, batch_size=4, executor="threads"
        ) as sharded:
            for i in range(8):
                sharded.process(Update("A", SHAPE.domain_size + i, 1))
            with pytest.raises(DomainError):
                sharded.flush()

    def test_process_worker_errors_surface_on_flush(self):
        with ShardedEngine(
            SPEC, num_shards=2, batch_size=4, executor="processes"
        ) as sharded:
            for i in range(8):
                sharded.process(Update("A", SHAPE.domain_size + i, 1))
            with pytest.raises(RuntimeError, match="DomainError"):
                sharded.flush()

    def test_close_is_idempotent(self):
        sharded = ShardedEngine(SPEC, num_shards=2, executor="processes")
        sharded.process(Update("A", 1, 1))
        sharded.flush()
        sharded.close()
        sharded.close()


class TestPlanStatsAccounting:
    """Regression tests for the two sharded plan-stats bugs: summed
    per-shard busy clocks exceeding elapsed wall time, and shard plans
    thrashing one shared LRU."""

    @staticmethod
    def _skewed_updates(num_updates=20_000, domain=1 << 14, seed=77):
        """Zipf-skewed inserts over a domain larger than the row cache,
        so hit rate actually depends on cache pressure."""
        rng = np.random.default_rng(seed)
        elements = (rng.zipf(1.2, size=num_updates) - 1) % domain
        return [Update("A", int(element), 1) for element in elements]

    def test_sharded_hit_rate_not_worse_than_single_engine(self):
        """Per-shard private caches (disjoint element slices) must not
        hit less than one engine-wide cache over the same workload.

        The workload is repeated passes over a distinct-element set
        larger than one LRU but smaller than the per-shard caches
        combined: a single shared cache thrashes on every pass (the
        pre-fix sharded behaviour), while disjoint per-shard slices fit
        their private caches and hit from pass two on.  Distinct
        elements per pass keep batch-level aggregation from absorbing
        duplicates, so the two engines' hit rates are comparable.
        """
        from repro.core.plan import plan_for

        canonical = plan_for(SPEC)
        rng = np.random.default_rng(77)
        domain = 2 * canonical.cache_size  # one cache can't hold a pass
        elements = rng.permutation(domain)
        updates = [
            Update("A", int(element), 1)
            for _ in range(3)
            for element in elements
        ]

        canonical.clear_cache()
        canonical.reset_stats()
        single = StreamEngine(SPEC, batch_size=1024)
        single.process_many(updates)
        single.flush()
        single_rate = single.plan_stats().hit_rate

        canonical.clear_cache()
        canonical.reset_stats()
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=1024, executor="serial"
        ) as sharded:
            sharded.process_many(updates)
            sharded.flush()
            sharded_rate = sharded.stats().plan.hit_rate

        assert sharded_rate >= single_rate

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_busy_clocks_bounded_by_elapsed_wall_time(self, executor):
        """Summed per-shard work must land in the ``*_cpu_seconds``
        fields; the busy clocks stay within this process's elapsed time
        (the original bug reported hash_seconds > elapsed under
        threads)."""
        import time

        from repro.core.plan import plan_for

        updates = self._skewed_updates(num_updates=30_000)
        plan_for(SPEC).clear_cache()
        plan_for(SPEC).reset_stats()
        started = time.perf_counter()
        with ShardedEngine(
            SPEC, num_shards=4, batch_size=1024, executor=executor
        ) as sharded:
            sharded.process_many(updates)
            sharded.flush()
            elapsed = time.perf_counter() - started
            stats = sharded.stats().plan
        assert stats is not None
        # Each busy clock de-overlaps its own concurrent sections, so it
        # is individually bounded by elapsed time.  (The two clocks may
        # still overlap each other — one thread hashing while another
        # scatters — so their *sum* is not bounded.)
        assert stats.hash_seconds <= elapsed
        assert stats.scatter_seconds <= elapsed
        # cpu fields carry the summed account, so they can only be larger
        assert stats.hash_cpu_seconds >= stats.hash_seconds
        assert stats.scatter_cpu_seconds >= stats.scatter_seconds
