"""repro — set-expression cardinality estimation over update streams.

A production-quality reproduction of *"Processing Set Expressions over
Continuous Update Streams"* (Ganguly, Garofalakis & Rastogi, SIGMOD 2003):
2-level hash sketch synopses plus (ε, δ)-estimators for the cardinality of
set union, difference, intersection, and general set expressions over
streams of insertions **and deletions**.

Quickstart::

    from repro import SketchSpec, StreamEngine, Update

    engine = StreamEngine(SketchSpec(num_sketches=256, seed=7))
    engine.process(Update("A", element=12345, delta=+1))
    engine.process(Update("B", element=12345, delta=+1))
    engine.process(Update("B", element=12345, delta=-1))   # deletion
    estimate = engine.query("A - B")
    print(float(estimate))

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
evaluation.
"""

from repro.core import (
    ExpressionExplanation,
    SketchFamily,
    SketchHashes,
    SketchShape,
    SketchSpec,
    SynopsisPlan,
    TwoLevelHashSketch,
    UnionEstimate,
    WitnessEstimate,
    estimate_difference,
    estimate_expression,
    estimate_intersection,
    estimate_union,
    explain_expression,
    recommend_spec,
)
from repro.errors import (
    DeltaSequenceError,
    DomainError,
    EstimationError,
    ExpressionError,
    IllegalDeletionError,
    IncompatibleSketchesError,
    ReproError,
    UnknownQueryError,
    UnknownStreamError,
)
from repro.core.intervals import ConfidenceInterval, witness_confidence_interval
from repro.expr import SetExpression, parse
from repro.expr import streams as stream_refs
from repro.streams import (
    ContinuousQueryProcessor,
    Coordinator,
    ExactStreamStore,
    StreamEngine,
    StreamSite,
    Update,
    checkpoint_engine,
    load_updates,
    restore_engine,
    save_updates,
)

__version__ = "1.0.0"

__all__ = [
    "SketchFamily",
    "SketchHashes",
    "SketchShape",
    "SketchSpec",
    "TwoLevelHashSketch",
    "UnionEstimate",
    "WitnessEstimate",
    "estimate_difference",
    "estimate_expression",
    "estimate_intersection",
    "estimate_union",
    "SetExpression",
    "parse",
    "stream_refs",
    "Coordinator",
    "ExactStreamStore",
    "StreamEngine",
    "StreamSite",
    "Update",
    "checkpoint_engine",
    "restore_engine",
    "save_updates",
    "load_updates",
    "ExpressionExplanation",
    "explain_expression",
    "SynopsisPlan",
    "recommend_spec",
    "ConfidenceInterval",
    "witness_confidence_interval",
    "ContinuousQueryProcessor",
    "ReproError",
    "DomainError",
    "EstimationError",
    "ExpressionError",
    "IllegalDeletionError",
    "IncompatibleSketchesError",
    "UnknownStreamError",
    "UnknownQueryError",
    "DeltaSequenceError",
    "__version__",
]
