"""Extension ablation: pooling witness observations across levels.

The paper's witness estimators examine one first-level bucket per sketch.
Conditioned on the singleton-union event, the witness probability equals
``|E| / |∪ᵢAᵢ|`` at *every* level, so harvesting several consecutive
levels multiplies the valid-observation count without biasing the
estimate — at the cost of leaving the paper's independence-based variance
analysis (observations within one sketch correlate).  This bench measures
what pooling buys on the hardest series of Figure 7(a): the smallest
target ratio, where single-level witness counts are tiny.
"""

from __future__ import annotations

import numpy as np
from _common import build_families

from repro.core.intersection import estimate_intersection
from repro.datagen.controlled import generate_controlled
from repro.experiments.metrics import relative_error, trimmed_mean_error

POOL_CHOICES = (1, 2, 4, 8)
NUM_SKETCHES = 256
TRIALS = 8
RATIO = 1 / 32  # the hard series


def run_pooling_sweep():
    rows = []
    datasets = []
    family_sets = []
    for trial in range(TRIALS):
        rng = np.random.default_rng(8000 + trial)
        dataset = generate_controlled("A & B", 8192, RATIO, rng, domain_bits=24)
        datasets.append(dataset)
        family_sets.append(build_families(dataset, NUM_SKETCHES, seed=trial))
    for pool in POOL_CHOICES:
        errors = []
        valid_counts = []
        for dataset, families in zip(datasets, family_sets):
            estimate = estimate_intersection(
                families["A"], families["B"], 0.1, pool_levels=pool
            )
            errors.append(relative_error(estimate.value, dataset.target_size))
            valid_counts.append(estimate.num_valid)
        rows.append((pool, trimmed_mean_error(errors), float(np.mean(valid_counts))))
    return rows


def test_level_pooling(benchmark):
    rows = benchmark.pedantic(run_pooling_sweep, rounds=1, iterations=1)
    print()
    print(
        f"Level-pooling extension, |A ∩ B| = u/32 at r={NUM_SKETCHES} sketches"
    )
    print(f"{'levels':>7s} {'trimmed error':>14s} {'avg valid obs':>14s}")
    for pool, error, valid in rows:
        print(f"{pool:7d} {100 * error:13.1f}% {valid:14.1f}")
    print("extension: unbiased (witness prob is |E|/u at every level); the")
    print("paper's variance analysis covers only the single-level case")

    by_pool = {pool: (error, valid) for pool, error, valid in rows}
    # Pooling must strictly grow the observation count ...
    assert by_pool[8][1] > 1.5 * by_pool[1][1]
    # ... and must not hurt accuracy on the hard series (noise margin).
    assert by_pool[8][0] <= by_pool[1][0] + 0.10
