"""Shared fixtures for the test suite.

Statistical tests use fixed seeds so the suite is deterministic; accuracy
assertions use generous tolerances derived from the estimators' theory
rather than tuned-to-pass magic numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchFamily, SketchSpec
from repro.core.sketch import SketchHashes, SketchShape


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_shape() -> SketchShape:
    return SketchShape(domain_bits=20, num_second_level=8, independence=4)


@pytest.fixture
def small_spec(small_shape: SketchShape) -> SketchSpec:
    return SketchSpec(num_sketches=16, shape=small_shape, seed=99)


@pytest.fixture
def hashes(rng: np.random.Generator, small_shape: SketchShape) -> SketchHashes:
    return SketchHashes.draw(rng, small_shape)


def build_family(
    spec: SketchSpec, elements, counts=None
) -> SketchFamily:
    """Build a family and feed it one batch."""
    family = spec.build()
    family.update_batch(np.asarray(elements, dtype=np.uint64), counts)
    return family
