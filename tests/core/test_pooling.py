"""Unit tests for the level-pooling extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.difference import estimate_difference
from repro.core.expression import estimate_expression
from repro.core.family import SketchSpec
from repro.core.intersection import estimate_intersection
from repro.core.sketch import SketchShape

SHAPE = SketchShape(domain_bits=22, num_second_level=12, independence=8)


def two_families(seed=0, num_sketches=192):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    rng = np.random.default_rng(seed)
    pool = rng.choice(2**22, size=3000, replace=False).astype(np.uint64)
    family_a, family_b = spec.build(), spec.build()
    family_a.update_batch(pool[:2000])
    family_b.update_batch(pool[1000:])
    return family_a, family_b


class TestPooling:
    def test_default_is_single_level(self):
        family_a, family_b = two_families()
        single = estimate_intersection(family_a, family_b, 0.1)
        explicit = estimate_intersection(family_a, family_b, 0.1, pool_levels=1)
        assert single.value == explicit.value
        assert single.num_valid == explicit.num_valid

    def test_pooling_grows_observation_count(self):
        family_a, family_b = two_families(seed=1)
        single = estimate_intersection(family_a, family_b, 0.1, pool_levels=1)
        pooled = estimate_intersection(family_a, family_b, 0.1, pool_levels=6)
        assert pooled.num_valid > single.num_valid

    def test_pooled_estimate_remains_plausible(self):
        family_a, family_b = two_families(seed=2, num_sketches=256)
        pooled = estimate_intersection(family_a, family_b, 0.1, pool_levels=6)
        assert abs(pooled.value - 1000) / 1000 < 0.5

    def test_pooling_supported_by_all_witness_estimators(self):
        family_a, family_b = two_families(seed=3)
        families = {"A": family_a, "B": family_b}
        for runner in (
            lambda: estimate_difference(family_a, family_b, 0.1, pool_levels=4),
            lambda: estimate_intersection(family_a, family_b, 0.1, pool_levels=4),
            lambda: estimate_expression("A - B", families, 0.1, pool_levels=4),
        ):
            estimate = runner()
            assert estimate.num_valid > 0

    def test_pooling_consistent_between_expression_and_direct(self):
        family_a, family_b = two_families(seed=4)
        families = {"A": family_a, "B": family_b}
        direct = estimate_intersection(
            family_a, family_b, 0.1, union_estimate=3000.0, pool_levels=4
        )
        general = estimate_expression(
            "A & B", families, 0.1, union_estimate=3000.0, pool_levels=4
        )
        assert direct.num_valid == general.num_valid
        assert direct.num_witnesses == general.num_witnesses

    def test_bad_pool_levels_rejected(self):
        family_a, family_b = two_families(seed=5)
        with pytest.raises(ValueError):
            estimate_intersection(family_a, family_b, 0.1, pool_levels=0)

    def test_pooling_clamps_at_top_level(self):
        """Requesting more levels than exist must not crash."""
        family_a, family_b = two_families(seed=6)
        estimate = estimate_intersection(
            family_a, family_b, 0.1, pool_levels=1000
        )
        assert estimate.num_valid > 0
