"""Unit tests for MIP-based set-expression estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.minhash import BottomKSketch
from repro.baselines.mip_expressions import (
    estimate_expression_mip,
    estimate_union_mip,
)
from repro.datagen.controlled import generate_controlled
from repro.errors import UnknownStreamError


def sketches_for(dataset, k=256, seed=0):
    built = {}
    for name in dataset.stream_names():
        sketch = BottomKSketch(k=k, seed=seed, domain_bits=24)
        sketch.insert_batch(dataset.elements[name])
        built[name] = sketch
    return built


class TestUnionMip:
    def test_accuracy(self):
        rng = np.random.default_rng(700)
        dataset = generate_controlled("A & B", 8192, 0.25, rng, domain_bits=24)
        sketches = sketches_for(dataset)
        estimate = estimate_union_mip(sketches)
        assert abs(estimate - dataset.union_size) / dataset.union_size < 0.2

    def test_small_streams_exact(self):
        rng = np.random.default_rng(701)
        dataset = generate_controlled("A & B", 64, 0.5, rng, domain_bits=24)
        sketches = sketches_for(dataset, k=256)
        assert estimate_union_mip(sketches) == dataset.union_size


class TestExpressionMip:
    @pytest.mark.parametrize("text", ["A & B", "A - B"])
    def test_binary_accuracy(self, text: str):
        rng = np.random.default_rng(702)
        dataset = generate_controlled(text, 8192, 0.25, rng, domain_bits=24)
        sketches = sketches_for(dataset)
        truth = dataset.target_size
        estimate = estimate_expression_mip(text, sketches)
        assert abs(estimate - truth) / truth < 0.35

    def test_three_stream_expression(self):
        rng = np.random.default_rng(703)
        dataset = generate_controlled(
            "(A - B) & C", 8192, 0.25, rng, domain_bits=24
        )
        sketches = sketches_for(dataset)
        truth = dataset.target_size
        estimate = estimate_expression_mip("(A - B) & C", sketches)
        assert abs(estimate - truth) / truth < 0.35

    def test_membership_is_exact_for_sampled_values(self):
        """If v is in the union's bottom-k and v ∈ S, then v is in S's
        bottom-k — so expression membership over the sample is exact."""
        rng = np.random.default_rng(704)
        dataset = generate_controlled("A & B", 2048, 0.5, rng, domain_bits=24)
        sketches = sketches_for(dataset, k=64)
        sets = {
            name: set(int(e) for e in dataset.elements[name])
            for name in dataset.stream_names()
        }
        hash_fn = sketches["A"]._hash
        value_to_element = {}
        for name, members in sets.items():
            for element in members:
                value_to_element[int(hash_fn(element))] = element
        import heapq

        union_bottom = heapq.nsmallest(
            64, set(sketches["A"].values) | set(sketches["B"].values)
        )
        for value in union_bottom:
            element = value_to_element[value]
            assert (value in set(sketches["A"].values)) == (element in sets["A"])
            assert (value in set(sketches["B"].values)) == (element in sets["B"])

    def test_empty_sketches(self):
        sketches = {
            "A": BottomKSketch(k=16, seed=0),
            "B": BottomKSketch(k=16, seed=0),
        }
        assert estimate_expression_mip("A & B", sketches) == 0.0

    def test_unknown_stream(self):
        sketches = {"A": BottomKSketch(k=16, seed=0)}
        with pytest.raises(UnknownStreamError):
            estimate_expression_mip("A & Z", sketches)

    def test_mismatched_coins_rejected(self):
        sketches = {
            "A": BottomKSketch(k=16, seed=0),
            "B": BottomKSketch(k=16, seed=1),
        }
        sketches["A"].insert(1)
        sketches["B"].insert(2)
        with pytest.raises(ValueError):
            estimate_expression_mip("A & B", sketches)
