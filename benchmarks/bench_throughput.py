"""Maintenance-cost bench: update-processing throughput.

The paper claims "small processing time per update": each update touches
``s`` counters in each of ``r`` sketches after one first-level and ``s``
second-level hash evaluations.  This bench measures updates/second for
the scalar path (one tuple at a time, the streaming API) and the
vectorised batch path, across family sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape

SHAPE = SketchShape(domain_bits=24, num_second_level=16, independence=8)


def _batch(num_sketches: int, elements: np.ndarray) -> None:
    family = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=1).build()
    family.update_batch(elements)


def _scalar(num_sketches: int, elements: np.ndarray) -> None:
    family = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=1).build()
    for element in elements:
        family.update(int(element), 1)


def test_batch_update_throughput_r64(benchmark):
    rng = np.random.default_rng(1)
    elements = rng.integers(0, 2**24, size=4096, dtype=np.uint64)
    benchmark.pedantic(_batch, args=(64, elements), rounds=3, iterations=1)
    per_update = benchmark.stats["mean"] / elements.size
    print(f"\nbatch path, r=64: {1 / per_update:,.0f} updates/s")


def test_batch_update_throughput_r256(benchmark):
    rng = np.random.default_rng(2)
    elements = rng.integers(0, 2**24, size=4096, dtype=np.uint64)
    benchmark.pedantic(_batch, args=(256, elements), rounds=3, iterations=1)
    per_update = benchmark.stats["mean"] / elements.size
    print(f"\nbatch path, r=256: {1 / per_update:,.0f} updates/s")


def test_scalar_update_throughput_r64(benchmark):
    rng = np.random.default_rng(3)
    elements = rng.integers(0, 2**24, size=256, dtype=np.uint64)
    benchmark.pedantic(_scalar, args=(64, elements), rounds=3, iterations=1)
    per_update = benchmark.stats["mean"] / elements.size
    print(f"\nscalar path, r=64: {1 / per_update:,.0f} updates/s")


def test_estimation_latency(benchmark):
    """Query-time cost: estimators touch only per-level aggregates, so
    answering should be orders of magnitude cheaper than maintenance."""
    from repro.core.intersection import estimate_intersection

    rng = np.random.default_rng(4)
    spec = SketchSpec(num_sketches=256, shape=SHAPE, seed=5)
    family_a, family_b = spec.build(), spec.build()
    pool = rng.choice(2**24, size=4096, replace=False).astype(np.uint64)
    family_a.update_batch(pool[:3000])
    family_b.update_batch(pool[1500:])

    benchmark.pedantic(
        estimate_intersection, args=(family_a, family_b, 0.1), rounds=20, iterations=1
    )
    print(f"\nintersection query latency: {benchmark.stats['mean'] * 1e3:.2f} ms")
