"""Synthetic data generation for experiments and examples."""

from repro.datagen.cells import CellAssignment, balanced_cell_probabilities
from repro.datagen.controlled import (
    GeneratedStreams,
    generate_binary,
    generate_controlled,
)
from repro.datagen.distributions import uniform_multiset, zipf_multiset
from repro.datagen.sessions import SessionEvent, session_trace
from repro.datagen.updates_gen import multiset_updates, with_phantom_deletions

__all__ = [
    "CellAssignment",
    "balanced_cell_probabilities",
    "GeneratedStreams",
    "generate_binary",
    "generate_controlled",
    "uniform_multiset",
    "zipf_multiset",
    "multiset_updates",
    "with_phantom_deletions",
    "SessionEvent",
    "session_trace",
]
