"""Text parser for set expressions.

Accepts the operator spellings people actually write:

=============  =======================================
operation      accepted tokens
=============  =======================================
union          ``|``  ``∪``  ``+``  ``UNION``
intersection   ``&``  ``∩``  ``INTERSECT``
difference     ``-``  ``−``  ``\\``  ``EXCEPT`` ``MINUS``
=============  =======================================

Grammar (intersection binds tighter than union/difference, mirroring SQL's
``INTERSECT`` vs ``UNION``/``EXCEPT`` precedence; union and difference are
left-associative at the same level)::

    expression := term (( "|" | "-" ) term)*
    term       := factor ("&" factor)*
    factor     := NAME | "(" expression ")"

``parse("(A - B) & C")`` returns the same tree as ``(A - B) & C`` built
from :func:`repro.expr.ast.streams`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ExpressionError
from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
)

__all__ = ["parse"]

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<union>[|∪+])"
    r"|(?P<intersect>[&∩])"
    r"|(?P<difference>[-−\\])"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\)))"
)

_WORD_OPERATORS = {
    "union": "union",
    "intersect": "intersect",
    "except": "difference",
    "minus": "difference",
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].lstrip()
            if not remainder:
                break
            raise ExpressionError(
                f"unexpected character {remainder[0]!r} at position {position}"
            )
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "name" and value.lower() in _WORD_OPERATORS:
            kind = _WORD_OPERATORS[value.lower()]
        tokens.append(_Token(kind, value, match.start(kind)))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def parse(self) -> SetExpression:
        expression = self._expression()
        if self._peek() is not None:
            token = self._peek()
            raise ExpressionError(
                f"unexpected {token.text!r} at position {token.position} "
                f"in {self._source!r}"
            )
        return expression

    def _expression(self) -> SetExpression:
        node = self._term()
        while True:
            token = self._peek()
            if token is None or token.kind not in ("union", "difference"):
                return node
            self._advance()
            right = self._term()
            if token.kind == "union":
                node = UnionExpr(node, right)
            else:
                node = DifferenceExpr(node, right)

    def _term(self) -> SetExpression:
        node = self._factor()
        while True:
            token = self._peek()
            if token is None or token.kind != "intersect":
                return node
            self._advance()
            node = IntersectionExpr(node, self._factor())

    def _factor(self) -> SetExpression:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of expression in {self._source!r}")
        if token.kind == "name":
            self._advance()
            return StreamRef(token.text)
        if token.kind == "lparen":
            self._advance()
            node = self._expression()
            closing = self._peek()
            if closing is None or closing.kind != "rparen":
                raise ExpressionError(f"missing ')' in {self._source!r}")
            self._advance()
            return node
        raise ExpressionError(
            f"unexpected {token.text!r} at position {token.position} "
            f"in {self._source!r}"
        )

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> None:
        self._index += 1


def parse(text: str) -> SetExpression:
    """Parse ``text`` into a :class:`~repro.expr.ast.SetExpression`.

    Raises :class:`~repro.errors.ExpressionError` on malformed input.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ExpressionError("empty expression")
    return _Parser(tokens, text).parse()
