"""Wire-format v2 tests: negotiation, v1 interop, and uplink batching.

The compatibility contract: a v1 peer — a hello with no ``encodings``
field — must see exactly the v1 wire protocol (dense frames both
directions, no batch ranges), while v2 peers negotiate sparse/zlib
payloads and coalesced batch frames per session.  Every path must fold
bit-identically to a flat engine, faults or not.
"""

from __future__ import annotations

import asyncio
import random

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import DeltaSequenceError
from repro.streams.distributed import (
    Coordinator,
    DeltaExport,
    StreamSite,
    coalesce_exports,
)
from repro.streams.engine import StreamEngine
from repro.streams.net import codec, protocol
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.updates import Update, deletions, insertions

from .faults import FaultyTransport

SHAPE = SketchShape(domain_bits=16, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=32, shape=SHAPE, seed=23)

TIMEOUT = 30.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def make_client(site_id: str, port: int, **overrides) -> SiteClient:
    options = dict(
        site_id=site_id,
        spec=SPEC,
        port=port,
        connect_timeout=2.0,
        io_timeout=2.0,
        max_retries=60,
        backoff_base=0.01,
        backoff_cap=0.05,
        rng=random.Random(hash(site_id) & 0xFFFF),
    )
    options.update(overrides)
    return SiteClient(**options)


def populated_site(site_id: str, rounds: int = 4) -> StreamSite:
    """A site with ``rounds`` retained exports of sparse per-round deltas."""
    site = StreamSite(site_id, SPEC)
    for index in range(rounds):
        site.observe_many(
            insertions("A", range(index * 10, index * 10 + 10))
        )
        site.observe_many(insertions("B", [1000 + index]))
        site.export()
    return site


def flat_reference(*sites_updates) -> StreamEngine:
    engine = StreamEngine(SPEC)
    for updates in sites_updates:
        engine.process_many(updates)
    return engine


# -- in-process batching ------------------------------------------------------


class TestCoalesceExports:
    def test_batch_folds_like_individual_exports(self):
        site = populated_site("s", rounds=5)
        exports = site.exports_after(0)
        batch = coalesce_exports(exports, SPEC)
        assert batch.batch_start == 1
        assert batch.sequence == 5
        assert batch.batch_size == 5

        one_by_one, batched = Coordinator(SPEC), Coordinator(SPEC)
        for export in exports:
            one_by_one.collect(export)
        batched.collect(batch)
        for name in ("A", "B"):
            assert (
                batched.families()[name].to_bytes()
                == one_by_one.families()[name].to_bytes()
            )
        # A batch counts as every export it covers.
        assert batched.sites_collected == one_by_one.sites_collected == 5

    def test_cancelling_deltas_drop_out(self):
        site = StreamSite("s", SPEC)
        site.observe_many(insertions("A", range(20)))
        site.export()
        site.observe_many(deletions("A", range(20)))
        site.observe_many(insertions("B", [1]))
        site.export()
        batch = coalesce_exports(site.exports_after(0), SPEC)
        # A's insert+delete cancel entrywise; only B's delta survives.
        assert set(batch.payloads) == {"B"}

    def test_single_export_passes_through(self):
        site = populated_site("s", rounds=1)
        [export] = site.exports_after(0)
        assert coalesce_exports([export], SPEC) is export

    def test_invalid_inputs_rejected(self):
        a = populated_site("a", rounds=3).exports_after(0)
        b = populated_site("b", rounds=1).exports_after(0)
        with pytest.raises(ValueError, match="empty"):
            coalesce_exports([], SPEC)
        with pytest.raises(ValueError, match="different sites"):
            coalesce_exports([a[0], b[0]], SPEC)
        with pytest.raises(ValueError, match="non-consecutive"):
            coalesce_exports([a[0], a[2]], SPEC)
        other_life = DeltaExport("a", 2, {}, "another-incarnation")
        with pytest.raises(ValueError, match="incarnations"):
            coalesce_exports([a[0], other_life], SPEC)

    def test_batch_sequence_rules_at_the_coordinator(self):
        site = populated_site("s", rounds=6)
        exports = site.exports_after(0)
        batch_1_4 = coalesce_exports(exports[:4], SPEC)
        batch_3_6 = coalesce_exports(exports[2:], SPEC)
        batch_5_6 = coalesce_exports(exports[4:], SPEC)

        coordinator = Coordinator(SPEC)
        assert coordinator.collect(batch_1_4) is True
        # Fully covered range: an idempotent duplicate.
        assert coordinator.collect(batch_1_4) is False
        assert coordinator.duplicates_dropped == 1
        # Partial overlap: unsplittable, so the site must re-batch.
        with pytest.raises(DeltaSequenceError, match="re-batch"):
            coordinator.collect(batch_3_6)
        # A gap ahead of the applied prefix is still a gap.
        with pytest.raises(DeltaSequenceError, match="missing"):
            coordinator.collect(coalesce_exports(exports[5:], SPEC))
        assert coordinator.collect(batch_5_6) is True
        assert coordinator.sites_collected == 6


class TestAtomicFold:
    def test_malformed_payload_leaves_nothing_half_applied(self):
        # Fold-time decode failure is an expected v2 path: the server
        # errors, the site re-syncs and re-ships the SAME export.  If
        # collect() had folded stream A before stream B's blob failed to
        # decode, the re-ship would fold A twice — permanent corruption.
        coordinator = Coordinator(SPEC)
        site = StreamSite("s", SPEC)
        site.observe_many(insertions("A", range(50)))
        site.observe_many(insertions("B", range(50)))
        assert coordinator.collect(site.export())
        before = {
            name: family.to_bytes()
            for name, family in coordinator.families().items()
        }

        site.observe_many(insertions("A", range(50, 60)))
        site.observe_many(insertions("B", range(50, 60)))
        export = site.export()
        encoded = {
            name: codec.encode_delta(payload, ("sparse",))
            for name, payload in export.payloads.items()
        }
        assert set(encoded) == {"A", "B"}
        good = {name: blob for name, (_, blob) in encoded.items()}
        encodings = {name: enc for name, (enc, _) in encoded.items()}
        # A decodes fine and comes first; B's blob is truncated.
        broken = dict(good)
        broken["B"] = broken["B"][:-1]
        with pytest.raises(codec.CodecError):
            coordinator.collect(
                DeltaExport(
                    export.site_id,
                    export.sequence,
                    broken,
                    export.incarnation,
                    encodings=encodings,
                )
            )
        assert coordinator.applied_sequence("s", site.incarnation) == 1
        assert before == {
            name: family.to_bytes()
            for name, family in coordinator.families().items()
        }
        # The re-shipped (intact) export folds exactly once.
        assert coordinator.collect(
            DeltaExport(
                export.site_id,
                export.sequence,
                good,
                export.incarnation,
                encodings=encodings,
            )
        )
        reference = flat_reference(
            insertions("A", range(60)), insertions("B", range(60))
        )
        for name in ("A", "B"):
            assert (
                coordinator.families()[name].to_bytes()
                == reference.families()[name].to_bytes()
            )


# -- negotiation and interop --------------------------------------------------


class TestNegotiationHandshake:
    def test_v2_session_negotiates_sparse_and_batch(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                client = make_client("s1", server.port)
                await client.connect()
                assert (
                    client.negotiated_encodings == codec.PREFERRED_ENCODINGS
                )
                assert client.batching_enabled
                await client.close()

        run(scenario())

    def test_dense_only_server_downgrades_v2_client(self):
        async def scenario():
            async with CoordinatorServer(
                SPEC, encodings=codec.DENSE_ONLY
            ) as server:
                client = make_client("s1", server.port)
                client.observe_many(insertions("A", range(50)))
                await client.connect()
                assert client.negotiated_encodings == ("dense",)
                await client.ship()
                stats = client.stats
                # Dense framing: wire payload == dense payload.
                assert (
                    stats.payload_bytes_wire == stats.payload_bytes_dense
                )
                await client.close()

        run(scenario())

    def test_v1_hello_gets_v1_shaped_session(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await protocol.write_message(
                    writer,
                    {
                        "type": "hello",
                        "version": 1,
                        "site_id": "old",
                        "incarnation": "life-1",
                    },
                )
                welcome, _, _ = await protocol.read_message(reader)
                assert welcome["type"] == "welcome"
                assert "encodings" not in welcome
                assert "features" not in welcome

                site = StreamSite("old", SPEC, incarnation="life-1")
                site.observe_many(insertions("A", range(40)))
                header, blobs = protocol.delta_message(site.export())
                assert "encodings" not in header
                assert "first_sequence" not in header
                await protocol.write_message(writer, header, blobs)
                ack, _, _ = await protocol.read_message(reader)
                assert ack["type"] == "ack" and ack["sequence"] == 1
                writer.close()
                await writer.wait_closed()

                reference = flat_reference(insertions("A", range(40)))
                assert (
                    server.coordinator.families()["A"].to_bytes()
                    == reference.families()["A"].to_bytes()
                )

        run(scenario())

    def test_unsupported_version_rejected(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await protocol.write_message(
                    writer,
                    {
                        "type": "hello",
                        "version": 99,
                        "site_id": "s",
                        "incarnation": "x",
                    },
                )
                answer, _, _ = await protocol.read_message(reader)
                assert answer["type"] == "error"
                assert "version" in answer["message"]
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_unnegotiated_encoding_rejected(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # v1 hello: the session is dense-only...
                await protocol.write_message(
                    writer,
                    {
                        "type": "hello",
                        "version": 1,
                        "site_id": "s",
                        "incarnation": "x",
                    },
                )
                await protocol.read_message(reader)
                # ...so a sparse-encoded blob is a protocol violation.
                site = StreamSite("s", SPEC, incarnation="x")
                site.observe_many(insertions("A", range(10)))
                header, blobs = protocol.delta_message(
                    site.export(), codec.PREFERRED_ENCODINGS
                )
                assert header.get("encodings")  # really sparse on the wire
                await protocol.write_message(writer, header, blobs)
                answer, _, _ = await protocol.read_message(reader)
                assert answer["type"] == "error"
                assert "negotiate" in answer["message"]
                writer.close()
                await writer.wait_closed()
                assert server.coordinator.stream_names() == []

        run(scenario())

    def test_unnegotiated_batch_rejected(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await protocol.write_message(
                    writer,
                    {
                        "type": "hello",
                        "version": 1,
                        "site_id": "s",
                        "incarnation": "x",
                    },
                )
                await protocol.read_message(reader)
                site = StreamSite("s", SPEC, incarnation="x")
                site.observe_many(insertions("A", range(10)))
                site.export()
                site.observe_many(insertions("A", range(10, 20)))
                site.export()
                batch = coalesce_exports(site.exports_after(0), SPEC)
                header, blobs = protocol.delta_message(batch)
                await protocol.write_message(writer, header, blobs)
                answer, _, _ = await protocol.read_message(reader)
                assert answer["type"] == "error"
                assert "batch" in answer["message"]
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_mixed_v1_v2_sites_fold_bit_identically(self):
        """Fuzz seed: v2 sites under faults plus a raw v1 site, one
        coordinator, every fold bit-identical to the flat engine."""
        seed = 1337
        rng = np.random.default_rng(seed)
        site_updates = {
            f"v2-{index}": [
                Update(
                    stream,
                    int(element),
                    1 if rng.random() < 0.8 else -1,
                )
                for stream in ("A", "B")
                for element in rng.integers(0, 2**16, size=60)
            ]
            for index in range(2)
        }
        v1_updates = list(insertions("A", range(900, 960))) + list(
            insertions("B", range(300, 330))
        )

        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                proxies, clients = [], []
                for index, (site_id, updates) in enumerate(
                    site_updates.items()
                ):
                    proxy = FaultyTransport(
                        server.port,
                        random.Random(seed + index),
                        drop=0.1,
                        duplicate=0.1,
                        cut=0.05,
                        max_faults=6,
                    )
                    await proxy.start()
                    proxies.append(proxy)
                    client = make_client(site_id, proxy.port)
                    clients.append(client)
                    for start in range(0, len(updates), 40):
                        client.observe_many(updates[start : start + 40])
                        await client.ship()

                # The v1 peer: raw dense frames, version 1 hello.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await protocol.write_message(
                    writer,
                    {
                        "type": "hello",
                        "version": 1,
                        "site_id": "v1-site",
                        "incarnation": "life",
                    },
                )
                await protocol.read_message(reader)
                v1_site = StreamSite("v1-site", SPEC, incarnation="life")
                v1_site.observe_many(v1_updates)
                header, blobs = protocol.delta_message(v1_site.export())
                await protocol.write_message(writer, header, blobs)
                ack, _, _ = await protocol.read_message(reader)
                assert ack["type"] == "ack"
                writer.close()
                await writer.wait_closed()

                for client in clients:
                    await client.ship()
                    await client.close()
                for proxy in proxies:
                    await proxy.stop()

                reference = flat_reference(
                    v1_updates, *site_updates.values()
                )
                for name in ("A", "B"):
                    assert (
                        server.coordinator.families()[name].to_bytes()
                        == reference.families()[name].to_bytes()
                    )

        run(scenario())


# -- batched shipping over the network ---------------------------------------


class TestNetworkBatching:
    def test_retained_backlog_ships_as_batches(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                site = populated_site("s1", rounds=7)
                client = make_client("s1", server.port, site=site, max_batch=3)
                await client.connect()
                stats = client.stats
                assert stats.deltas_shipped == 7
                # 7 exports in ceil(7/3)=3 frames -> 4 coalesced away.
                assert stats.exports_coalesced == 4
                assert server.stats()["s1"].deltas_applied == 7
                assert site.retained_exports == 0

                reference = flat_reference(
                    [
                        update
                        for index in range(7)
                        for update in list(
                            insertions(
                                "A", range(index * 10, index * 10 + 10)
                            )
                        )
                        + [Update("B", 1000 + index, 1)]
                    ]
                )
                for name in ("A", "B"):
                    assert (
                        server.coordinator.families()[name].to_bytes()
                        == reference.families()[name].to_bytes()
                    )
                await client.close()

        run(scenario())

    def test_batching_disabled_when_client_opts_out(self):
        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                site = populated_site("s1", rounds=4)
                client = make_client("s1", server.port, site=site, max_batch=1)
                await client.connect()
                assert not client.batching_enabled
                assert client.stats.deltas_shipped == 4
                assert client.stats.exports_coalesced == 0
                await client.close()

        run(scenario())

    @pytest.mark.parametrize("seed", [5, 17, 41])
    def test_batches_survive_faulty_transport(self, seed):
        """Drops, duplicates, and cuts against batched re-sync: the
        coordinator must converge bit-identically, with the applied
        tally counting logical exports (batches expanded)."""
        updates = [
            list(insertions("A", range(index * 8, index * 8 + 8)))
            + ([Update("B", index, 1)] if index % 2 else [])
            for index in range(10)
        ]

        async def scenario():
            async with CoordinatorServer(SPEC) as server:
                proxy = FaultyTransport(
                    server.port,
                    random.Random(seed),
                    drop=0.35,
                    duplicate=0.3,
                    cut=0.2,
                    max_faults=10,
                )
                await proxy.start()
                client = make_client("s1", proxy.port, max_batch=4)
                for batch in updates[:5]:
                    client.observe_many(batch)
                    client.site.export()
                await client.connect()
                await client.flush_retained()
                for batch in updates[5:]:
                    client.observe_many(batch)
                    client.site.export()
                await client.flush_retained()
                assert proxy.faults_injected > 0
                await client.close()
                await proxy.stop()

                reference = flat_reference(
                    [update for batch in updates for update in batch]
                )
                for name in ("A", "B"):
                    assert (
                        server.coordinator.families()[name].to_bytes()
                        == reference.families()[name].to_bytes()
                    )
                assert server.coordinator.sites_collected == 10

        run(scenario())


# -- zero-copy blob handling --------------------------------------------------


class TestZeroCopyBlobs:
    def test_decode_message_returns_views_over_one_buffer(self):
        blobs_in = [b"a" * 64, b"b" * 128]
        frame = protocol.encode_message({"type": "delta"}, blobs_in)
        _, blobs = protocol.decode_message(frame)
        for view, original in zip(blobs, blobs_in):
            assert isinstance(view, memoryview)
            assert view == original
        # All views window the same frame buffer — no per-blob copies.
        assert all(view.obj is frame for view in blobs)

    def test_views_feed_the_fold_path(self):
        site = StreamSite("s", SPEC)
        site.observe_many(insertions("A", range(25)))
        header, wire = protocol.delta_message(
            site.export(), codec.PREFERRED_ENCODINGS
        )
        decoded_header, views = protocol.decode_message(
            protocol.encode_message(header, wire)
        )
        export = protocol.export_from_message(decoded_header, views)
        assert all(
            isinstance(payload, memoryview)
            for payload in export.payloads.values()
        )
        coordinator = Coordinator(SPEC)
        coordinator.collect(export)
        reference = flat_reference(insertions("A", range(25)))
        assert (
            coordinator.families()["A"].to_bytes()
            == reference.families()["A"].to_bytes()
        )


class TestWindowStamps:
    """The ``window_at`` export stamp: cut-time watermark carried from a
    windowed shipping site to windowed fold points (and over the wire)."""

    @staticmethod
    def _windowed_site(site_id="w"):
        return StreamSite(
            site_id,
            SPEC,
            engine=StreamEngine(SPEC, window_span=10.0, bucket_width=2.0),
        )

    def test_windowed_site_auto_stamps_exports(self):
        site = self._windowed_site()
        site.observe(Update("A", 1, 1), at=3.5)
        export = site.export()
        assert export.window_at == 3.5
        # explicit stamps win; NaN is rejected
        site.observe(Update("A", 2, 1), at=4.0)
        assert site.export(window_at=4.25).window_at == 4.25
        with pytest.raises(ValueError):
            site.export(window_at=float("nan"))

    def test_unwindowed_site_ships_unstamped(self):
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        assert site.export().window_at is None

    def test_coalesce_keeps_equal_stamps_and_rejects_mixed(self):
        site = self._windowed_site()
        exports = []
        for element in (1, 2):
            site.observe(Update("A", element, 1), at=1.0)
            exports.append(site.export())
        batch = coalesce_exports(exports, SPEC)
        assert batch.window_at == 1.0

        site.observe(Update("A", 3, 1), at=5.0)  # a later bucket
        exports.append(site.export())
        with pytest.raises(ValueError, match="window watermarks"):
            coalesce_exports(exports, SPEC)

    def test_stamp_survives_the_wire_and_state_roundtrip(self):
        site = self._windowed_site()
        site.observe(Update("A", 1, 1), at=7.0)
        export = site.export()
        header, blobs = protocol.delta_message(export)
        rebuilt = protocol.export_from_message(header, blobs)
        assert rebuilt.window_at == 7.0

        unstamped = StreamSite("s", SPEC)
        unstamped.observe(Update("A", 1, 1))
        header, blobs = protocol.delta_message(unstamped.export())
        assert "window_at" not in header
        assert protocol.export_from_message(header, blobs).window_at is None

        restored = StreamSite.from_state(site.to_state(), SPEC)
        [retained] = restored.exports_after(0)
        assert retained.window_at == 7.0

    def test_wire_rejects_malformed_stamps(self):
        site = self._windowed_site()
        site.observe(Update("A", 1, 1), at=1.0)
        header, blobs = protocol.delta_message(site.export())
        for bad in (float("nan"), True, "soon"):
            corrupted = dict(header, window_at=bad)
            with pytest.raises(protocol.ProtocolError):
                protocol.export_from_message(corrupted, blobs)

    def test_windowed_fold_routes_delta_into_its_bucket(self):
        engine = StreamEngine(SPEC, window_span=10.0, bucket_width=2.0)
        coordinator = Coordinator(SPEC, engine=engine)
        site = self._windowed_site()
        site.observe(Update("A", 1, 1), at=1.0)
        coordinator.collect(site.export())
        site.observe(Update("A", 2, 1), at=15.0)
        coordinator.collect(site.export())
        # clock 15: bucket 1 ((0,2]) expired at root, so only element 2
        # remains in-window; the all-time fold keeps both.
        windowed = engine.window_family("A")
        lone = SPEC.build()
        lone.update_batch(np.array([2]))
        assert windowed.to_bytes() == lone.to_bytes()
        both = SPEC.build()
        both.update_batch(np.array([1, 2]))
        assert engine.family("A").to_bytes() == both.to_bytes()
