"""Continuous monitoring with standing queries: DoS-style alerting.

The paper's introduction motivates set-expression cardinalities as a tool
for "quickly detecting possible denial-of-service attacks".  This example
wires that loop up end to end:

* two edge routers stream the source addresses of active sessions
  (opens = insertions, closes = deletions);
* a standing query watches |EDGE1 ∩ EDGE2| — distinct sources hitting
  *both* edges simultaneously, a distributed-attack signature — and
  alerts when the estimate crosses a threshold;
* each alert is reported with a confidence interval derived from the
  witness diagnostics.

Run:  python examples/dos_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContinuousQueryProcessor,
    SketchSpec,
    StreamEngine,
    Update,
    witness_confidence_interval,
)

THRESHOLD = 4_000
CHECK_EVERY = 5_000


def main() -> None:
    rng = np.random.default_rng(1337)
    engine = StreamEngine(SketchSpec(num_sketches=256, seed=99))
    processor = ContinuousQueryProcessor(engine)

    def on_alert(query, observation) -> None:
        interval = witness_confidence_interval(observation.estimate, 0.95)
        print(
            f"  ⚠ ALERT at update {observation.at_update:,}: "
            f"|EDGE1 ∩ EDGE2| ≈ {observation.value:,.0f} "
            f"(95% CI [{interval.low:,.0f}, {interval.high:,.0f}]) "
            f"> threshold {THRESHOLD:,}"
        )

    watch = processor.register(
        "distributed-sources",
        "EDGE1 & EDGE2",
        epsilon=0.15,
        every=CHECK_EVERY,
        threshold=THRESHOLD,
        on_alert=on_alert,
    )

    addresses = rng.choice(2**30, size=40_000, replace=False)

    print("phase 1: normal traffic (mostly disjoint edge populations) ...")
    for index, address in enumerate(addresses[:20_000]):
        edge = "EDGE1" if index % 2 == 0 else "EDGE2"
        processor.process(Update(edge, int(address), +1))

    print("phase 2: attack begins — one botnet hits both edges ...")
    botnet = addresses[20_000:28_000]
    for address in botnet:
        processor.process(Update("EDGE1", int(address), +1))
        processor.process(Update("EDGE2", int(address), +1))

    print("phase 3: mitigation — attack sessions are torn down ...")
    for address in botnet:
        processor.process(Update("EDGE1", int(address), -1))
        processor.process(Update("EDGE2", int(address), -1))
    final = processor.evaluate_now("distributed-sources")
    print(
        f"  post-mitigation |EDGE1 ∩ EDGE2| ≈ {final.value:,.0f} "
        f"(back under threshold: {not watch.breached(final)})"
    )

    print(
        f"\n{len(watch.history)} evaluations, {len(watch.alerts)} alerts; "
        f"history peaks at {max(obs.value for obs in watch.history):,.0f}"
    )


if __name__ == "__main__":
    main()
