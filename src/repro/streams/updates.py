"""The update-stream data model (Section 2.1).

A stream renders a multi-set of elements from ``[M]`` as a sequence of
updates ``<i, e, ±v>``: ``i`` names the multi-set, ``e`` is the element
whose net frequency changes, and ``v`` is the (positive) magnitude —
``+v`` for insertions, ``-v`` for deletions.  :class:`Update` is that
triple; helpers build well-formed update sequences and shuffle insertions
and deletions together for robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Update", "insertions", "deletions", "interleave"]


@dataclass(frozen=True)
class Update:
    """One update tuple ``<stream, element, delta>``.

    ``delta`` is the signed net change of the element's frequency:
    positive for insertions, negative for deletions.  Zero deltas carry no
    information and are rejected.
    """

    stream: str
    element: int
    delta: int

    def __post_init__(self) -> None:
        if self.delta == 0:
            raise ValueError("an update must change a frequency (delta != 0)")
        if self.element < 0:
            raise ValueError("elements are non-negative integers")

    @property
    def is_insertion(self) -> bool:
        return self.delta > 0

    @property
    def is_deletion(self) -> bool:
        return self.delta < 0

    def inverse(self) -> "Update":
        """The update that exactly undoes this one."""
        return Update(self.stream, self.element, -self.delta)


def insertions(stream: str, elements: Iterable[int], count: int = 1) -> list[Update]:
    """Insertion updates adding ``count`` copies of each element."""
    if count < 1:
        raise ValueError("insertion count must be positive")
    return [Update(stream, int(element), count) for element in elements]


def deletions(stream: str, elements: Iterable[int], count: int = 1) -> list[Update]:
    """Deletion updates removing ``count`` copies of each element."""
    if count < 1:
        raise ValueError("deletion count must be positive")
    return [Update(stream, int(element), -count) for element in elements]


def interleave(
    sequences: Sequence[Sequence[Update]], rng: np.random.Generator
) -> Iterator[Update]:
    """Randomly interleave several update sequences, preserving each one's
    internal order.

    Per-stream prefix legality is preserved whenever each input sequence is
    itself legal and streams do not share elements across sequences — the
    situation the robustness tests construct (e.g. an insertion sequence
    interleaved with the deletion sequence of a *prior* insertion batch).
    """
    remaining = [list(sequence) for sequence in sequences if sequence]
    positions = [0] * len(remaining)
    sizes = np.array([len(sequence) for sequence in remaining], dtype=np.float64)
    while remaining:
        pick = int(rng.choice(len(remaining), p=sizes / sizes.sum()))
        yield remaining[pick][positions[pick]]
        positions[pick] += 1
        sizes[pick] -= 1
        if positions[pick] == len(remaining[pick]):
            del remaining[pick], positions[pick]
            sizes = np.delete(sizes, pick)
