"""Experiment configurations for the paper's figures.

Each figure of Section 5.2 sweeps the number of maintained 2-level hash
sketches for a fixed target expression, at three target-cardinality
ratios, plotting the trimmed-average relative error.  The paper runs at
``u ≈ 2**18`` with 10–15 trials and 32 second-level hashes; pure-Python
maintenance makes that heavy for a test/bench cycle, so three scales are
provided.  The error of the estimators depends on the *ratios*
``|E|/u`` and on ``(r, s)`` — not on the absolute ``u`` — so the reduced
scales preserve the figures' shape (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "FIGURES", "scaled_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One figure's sweep definition."""

    name: str
    title: str
    expression: str
    union_size: int = 1 << 18
    #: Target ``|E| / u`` ratios — one plotted series each.
    target_ratios: tuple[float, ...] = (1 / 2, 1 / 8, 1 / 32)
    #: The x-axis: number of 2-level hash sketches per stream.
    sketch_counts: tuple[int, ...] = (32, 64, 128, 256, 512)
    trials: int = 12
    num_second_level: int = 32
    independence: int = 8
    epsilon: float = 0.1
    domain_bits: int = 30
    base_seed: int = 2003
    #: Level-pooling extension (1 = the paper's single-level algorithm).
    pool_levels: int = 1

    def __post_init__(self) -> None:
        if not self.target_ratios or not self.sketch_counts:
            raise ValueError("need at least one ratio and one sketch count")
        if self.trials < 1:
            raise ValueError("need at least one trial")

    @property
    def max_sketches(self) -> int:
        return max(self.sketch_counts)

    def target_size(self, ratio: float) -> int:
        """The |E| a ratio corresponds to at this union size."""
        return int(round(ratio * self.union_size))


#: The three figures of the paper's evaluation, at paper scale.
FIGURES: dict[str, ExperimentConfig] = {
    "fig7a": ExperimentConfig(
        name="fig7a",
        title="Figure 7(a): relative error for |A ∩ B|",
        expression="A & B",
    ),
    "fig7b": ExperimentConfig(
        name="fig7b",
        title="Figure 7(b): relative error for |A - B|",
        expression="A - B",
    ),
    "fig8": ExperimentConfig(
        name="fig8",
        title="Figure 8: relative error for |(A - B) ∩ C|",
        expression="(A - B) & C",
    ),
}


def scaled_config(config: ExperimentConfig, scale: str) -> ExperimentConfig:
    """A figure config at one of the supported run scales.

    ``bench``
        Small: runs inside the benchmark suite in tens of seconds.
    ``medium``
        The default for ``python -m repro.experiments.run_all``; a few
        minutes per figure.
    ``paper``
        The paper's ``u ≈ 2**18`` and full sketch sweep; expect an hour+
        for all figures in pure Python.
    """
    if scale == "bench":
        return replace(
            config,
            union_size=1 << 12,
            sketch_counts=(32, 64, 128, 256),
            trials=5,
        )
    if scale == "medium":
        return replace(
            config,
            union_size=1 << 14,
            sketch_counts=(32, 64, 128, 256, 512),
            trials=8,
        )
    if scale == "paper":
        return config
    raise ValueError(f"unknown scale {scale!r}; use bench, medium, or paper")
