"""Unit tests for the Mersenne-prime modular arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.mersenne import (
    MERSENNE_EXP,
    MERSENNE_P,
    addmod,
    horner_mod,
    mod_p,
    mulmod,
)

P = int(MERSENNE_P)


class TestModP:
    def test_prime_constant(self):
        assert P == 2**61 - 1
        assert MERSENNE_EXP == 61

    def test_identity_below_p(self):
        values = np.array([0, 1, 12345, P - 1], dtype=np.uint64)
        assert list(mod_p(values)) == [0, 1, 12345, P - 1]

    def test_exact_p_reduces_to_zero(self):
        assert int(mod_p(np.uint64(P))) == 0

    def test_multiples_of_p(self):
        for multiple in (2 * P, 3 * P, 7 * P):
            assert int(mod_p(np.uint64(multiple))) == 0

    def test_full_uint64_range_randomised(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**64, size=5000, dtype=np.uint64)
        reduced = mod_p(values)
        for value, got in zip(values, reduced):
            assert int(got) == int(value) % P

    def test_max_uint64(self):
        assert int(mod_p(np.uint64(2**64 - 1))) == (2**64 - 1) % P

    def test_output_always_canonical(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 2**64, size=5000, dtype=np.uint64)
        assert int(mod_p(values).max()) < P

    def test_scalar_input(self):
        assert int(mod_p(P + 5)) == 5


class TestAddmod:
    def test_simple(self):
        assert int(addmod(np.uint64(3), np.uint64(4))) == 7

    def test_wraps_at_p(self):
        assert int(addmod(np.uint64(P - 1), np.uint64(1))) == 0
        assert int(addmod(np.uint64(P - 1), np.uint64(5))) == 4

    def test_randomised(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, P, size=2000, dtype=np.uint64)
        b = rng.integers(0, P, size=2000, dtype=np.uint64)
        got = addmod(a, b)
        for x, y, z in zip(a, b, got):
            assert int(z) == (int(x) + int(y)) % P


class TestMulmod:
    def test_small_values(self):
        assert int(mulmod(np.uint64(6), np.uint64(7))) == 42

    def test_zero_annihilates(self):
        assert int(mulmod(np.uint64(0), np.uint64(P - 1))) == 0
        assert int(mulmod(np.uint64(P - 1), np.uint64(0))) == 0

    def test_one_is_identity(self):
        assert int(mulmod(np.uint64(1), np.uint64(P - 1))) == P - 1

    @pytest.mark.parametrize("x", [0, 1, 2, P - 2, P - 1, 2**32, 2**32 - 1, 2**60])
    @pytest.mark.parametrize("y", [0, 1, 2, P - 2, P - 1, 2**32, 2**32 - 1, 2**60])
    def test_boundary_grid(self, x: int, y: int):
        assert int(mulmod(np.uint64(x), np.uint64(y))) == (x * y) % P

    def test_randomised_against_python_ints(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, P, size=5000, dtype=np.uint64)
        b = rng.integers(0, P, size=5000, dtype=np.uint64)
        got = mulmod(a, b)
        for x, y, z in zip(a, b, got):
            assert int(z) == (int(x) * int(y)) % P

    def test_commutative(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, P, size=1000, dtype=np.uint64)
        b = rng.integers(0, P, size=1000, dtype=np.uint64)
        assert np.array_equal(mulmod(a, b), mulmod(b, a))

    def test_broadcasting(self):
        a = np.uint64(3)
        b = np.arange(10, dtype=np.uint64)
        got = mulmod(a, b)
        assert got.shape == (10,)
        assert list(got) == [3 * i for i in range(10)]

    def test_2d_shapes(self):
        rng = np.random.default_rng(6)
        a = rng.integers(0, P, size=(4, 5), dtype=np.uint64)
        b = rng.integers(0, P, size=(4, 5), dtype=np.uint64)
        got = mulmod(a, b)
        assert got.shape == (4, 5)
        for i in range(4):
            for j in range(5):
                assert int(got[i, j]) == (int(a[i, j]) * int(b[i, j])) % P


class TestHornerMod:
    def test_constant_polynomial(self):
        assert int(horner_mod((42,), np.uint64(999))) == 42

    def test_linear(self):
        # 3x + 5 at x = 10
        assert int(horner_mod((3, 5), np.uint64(10))) == 35

    def test_quadratic_matches_int_math(self):
        coefficients = (5, 3, 7)
        x = 11
        expected = (5 * x**2 + 3 * x + 7) % P
        assert int(horner_mod(coefficients, np.uint64(x))) == expected

    def test_high_degree_randomised(self):
        rng = np.random.default_rng(7)
        coefficients = tuple(int(c) for c in rng.integers(0, P, size=8))
        xs = rng.integers(0, P, size=50, dtype=np.uint64)
        got = horner_mod(coefficients, xs)
        for x, value in zip(xs, got):
            expected = 0
            for coefficient in coefficients:
                expected = (expected * int(x) + coefficient) % P
            assert int(value) == expected

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            horner_mod((), np.uint64(1))

    def test_preserves_input_shape(self):
        xs = np.zeros((3, 4), dtype=np.uint64)
        assert horner_mod((1, 2), xs).shape == (3, 4)

    def test_does_not_mutate_input(self):
        xs = np.arange(5, dtype=np.uint64)
        snapshot = xs.copy()
        horner_mod((2, 1), xs)
        assert np.array_equal(xs, snapshot)
