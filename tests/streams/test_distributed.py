"""Unit tests for the distributed-streams model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.distributed import Coordinator, StreamSite
from repro.streams.updates import Update, insertions

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=128, shape=SHAPE, seed=17)


class TestSite:
    def test_export_contains_observed_streams(self):
        site = StreamSite("site-1", SPEC)
        site.observe(Update("A", 1, 1))
        site.observe(Update("B", 2, 1))
        payloads = site.export()
        assert sorted(payloads) == ["A", "B"]
        assert all(isinstance(payload, bytes) for payload in payloads.values())

    def test_export_empty_site(self):
        assert StreamSite("idle", SPEC).export() == {}


class TestCoordinator:
    def test_split_stream_merges_to_centralised_sketch(self):
        """A stream split across two sites must merge to exactly the
        sketch a single observer of the whole stream would hold."""
        rng = np.random.default_rng(97)
        elements = rng.integers(0, 2**20, size=500, dtype=np.uint64)
        site_1 = StreamSite("s1", SPEC)
        site_2 = StreamSite("s2", SPEC)
        site_1.observe_many(insertions("A", (int(e) for e in elements[:250])))
        site_2.observe_many(insertions("A", (int(e) for e in elements[250:])))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site_1)
        coordinator.collect_from(site_2)

        centralised = SPEC.build()
        centralised.update_batch(elements)
        assert coordinator._families["A"] == centralised

    def test_sites_collected_counter(self):
        coordinator = Coordinator(SPEC)
        site = StreamSite("s", SPEC)
        site.observe(Update("A", 1, 1))
        coordinator.collect_from(site)
        coordinator.collect_from(site)
        assert coordinator.sites_collected == 2

    def test_query_over_distributed_streams(self):
        rng = np.random.default_rng(98)
        pool = rng.choice(2**20, size=3000, replace=False)
        shared, only_a, only_b = pool[:1000], pool[1000:2000], pool[2000:]

        router_1 = StreamSite("router-1", SPEC)
        router_2 = StreamSite("router-2", SPEC)
        router_1.observe_many(
            insertions("A", (int(e) for e in np.concatenate([shared, only_a])))
        )
        router_2.observe_many(
            insertions("B", (int(e) for e in np.concatenate([shared, only_b])))
        )
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(router_1)
        coordinator.collect_from(router_2)

        estimate = coordinator.query("A & B", 0.2)
        assert abs(estimate.value - 1000) / 1000 < 0.5
        union = coordinator.query_union(["A", "B"], 0.2)
        assert abs(union.value - 3000) / 3000 < 0.3

    def test_deletions_at_a_different_site(self):
        """Insertions at one site, deletions at another — linear merge
        cancels them exactly."""
        site_in = StreamSite("in", SPEC)
        site_out = StreamSite("out", SPEC)
        for element in range(100):
            site_in.observe(Update("A", element, 1))
        for element in range(50):
            site_out.observe(Update("A", element, -1))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site_in)
        coordinator.collect_from(site_out)

        survivors = SPEC.build()
        survivors.update_batch(np.arange(50, 100, dtype=np.uint64))
        assert coordinator._families["A"] == survivors

    def test_stream_names(self):
        coordinator = Coordinator(SPEC)
        site = StreamSite("s", SPEC)
        site.observe(Update("B", 1, 1))
        site.observe(Update("A", 1, 1))
        coordinator.collect_from(site)
        assert coordinator.stream_names() == ["A", "B"]


class TestCoordinatorToEngine:
    def test_handoff_preserves_state_and_accepts_updates(self):
        rng = np.random.default_rng(99)
        elements = rng.integers(0, 2**20, size=400, dtype=np.uint64)
        site = StreamSite("s", SPEC)
        site.observe_many(insertions("A", (int(e) for e in elements)))
        coordinator = Coordinator(SPEC)
        coordinator.collect_from(site)

        engine = coordinator.to_engine()
        assert engine.stream_names() == ["A"]

        # Continue ingesting at the coordinator-turned-engine.
        engine.process(Update("A", 7, 1))
        engine.flush()
        reference = SPEC.build()
        reference.update_batch(np.concatenate([elements, [7]]))
        assert engine.family("A") == reference
