"""A reusable fault-injecting TCP proxy for transport tests.

:class:`FaultyTransport` sits between a :class:`~repro.streams.net.site.
SiteClient` (or an uplink hop of a federation tree) and a
:class:`~repro.streams.net.coordinator.CoordinatorServer`, parses the
length-framed protocol, and — driven by a seeded ``random.Random`` —
drops, duplicates, delays, or cuts (half a frame, then a hard close)
individual client→server frames.  The server→client direction is
forwarded verbatim; a cut kills both directions, which is exactly what a
mid-frame TCP reset looks like to each endpoint.

Two rules keep the faults meaningful rather than merely fatal:

* the **first frame of every connection is spared** — it is the hello
  handshake, and faulting it only tests the connect/retry loop, which
  dedicated tests already cover;
* an optional **max_faults budget** guarantees liveness: once spent, the
  proxy forwards cleanly, so a bounded retry budget on the client side
  always suffices to converge.

The per-kind counters (``dropped``/``duplicated``/``cut``/``delayed``)
let a test assert that faults actually fired — a fault test that
silently faulted nothing proves nothing.
"""

from __future__ import annotations

import asyncio
import random
import struct

__all__ = ["FaultyTransport"]

_LENGTH = struct.Struct(">I")


class FaultyTransport:
    """Seeded fault-injecting proxy in front of ``target_port``.

    Parameters
    ----------
    target_port:
        Where the real coordinator listens.
    rng:
        Seeded randomness source; all fault decisions draw from it, so a
        failing schedule is reproducible from its seed alone.
    drop, duplicate, cut, delay:
        Per-frame probabilities of each fault (evaluated in that order
        on one uniform draw, so their sum must stay ≤ 1).
    delay_seconds:
        Upper bound of the uniform delay applied by a ``delay`` fault.
    max_faults:
        Total fault budget (``None`` = unlimited).  After it is spent
        every frame forwards cleanly.
    """

    def __init__(
        self,
        target_port: int,
        rng: random.Random,
        *,
        target_host: str = "127.0.0.1",
        drop: float = 0.0,
        duplicate: float = 0.0,
        cut: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.05,
        max_faults: int | None = None,
    ) -> None:
        if drop + duplicate + cut + delay > 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        self.target_host = target_host
        self.target_port = target_port
        self._rng = rng
        self._drop = drop
        self._duplicate = duplicate
        self._cut = cut
        self._delay = delay
        self._delay_seconds = delay_seconds
        self._max_faults = max_faults
        self._server: asyncio.AbstractServer | None = None
        self._port = 0
        self._pumps: set[asyncio.Task] = set()
        self.dropped = 0
        self.duplicated = 0
        self.cut_connections = 0
        self.delayed = 0

    @property
    def port(self) -> int:
        """The proxy's listening port (after :meth:`start`)."""
        return self._port

    @property
    def faults_injected(self) -> int:
        return self.dropped + self.duplicated + self.cut_connections + self.delayed

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._pumps):
            task.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps.clear()

    async def __aenter__(self) -> "FaultyTransport":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- internals ---------------------------------------------------------

    def _budget_left(self) -> bool:
        return (
            self._max_faults is None
            or self.faults_injected < self._max_faults
        )

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            client_writer.close()
            return
        loop = asyncio.get_running_loop()
        up = loop.create_task(
            self._pump_frames(client_reader, server_writer, client_writer)
        )
        down = loop.create_task(
            self._pump_raw(server_reader, client_writer, server_writer)
        )
        for task in (up, down):
            self._pumps.add(task)
            task.add_done_callback(self._pumps.discard)

    async def _pump_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        back: asyncio.StreamWriter,
    ) -> None:
        """Client→server: parse frames, inject faults (hello spared)."""
        first = True
        try:
            while True:
                prefix = await reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(prefix)
                frame = prefix + await reader.readexactly(length)
                if first or not self._budget_left():
                    first = False
                    writer.write(frame)
                    await writer.drain()
                    continue
                roll = self._rng.random()
                if roll < self._drop:
                    self.dropped += 1
                    continue
                roll -= self._drop
                if roll < self._duplicate:
                    self.duplicated += 1
                    writer.write(frame + frame)
                    await writer.drain()
                    continue
                roll -= self._duplicate
                if roll < self._cut:
                    self.cut_connections += 1
                    writer.write(frame[: max(1, len(frame) // 2)])
                    await writer.drain()
                    writer.close()
                    back.close()
                    return
                roll -= self._cut
                if roll < self._delay:
                    self.delayed += 1
                    await asyncio.sleep(
                        self._rng.uniform(0, self._delay_seconds)
                    )
                writer.write(frame)
                await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()

    async def _pump_raw(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        back: asyncio.StreamWriter,
    ) -> None:
        """Server→client: verbatim passthrough."""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            back.close()
