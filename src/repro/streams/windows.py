"""Sliding-window semantics via deletions.

The paper's footnote treats modifications as deletion+insertion; the same
move turns its deletion-proof synopses into *sliding-window* synopses: as
items age out of the window, the source issues the inverse updates, and
the sketch — being deletion-invariant — ends up identical to a sketch
over only the in-window items.

:class:`SlidingWindowDriver` implements the source side: it forwards each
timestamped update to its sink(s) and remembers it; when time advances
past ``window_span``, it emits the inverse updates of everything that
fell out.  Memory is proportional to the number of *in-window* updates —
that state lives at the observing source (which sees its own traffic
anyway), not at the query processor, so the streaming model downstream is
untouched.

Feed the driver **insert-only** observation streams ("items seen
recently").  Windowing a stream that itself contains deletions is
ill-defined for non-negative multiset semantics: expiring a deletion
emits an insertion, and the interleaving can transiently drive an
element's net in-window frequency negative (the sketch tolerates that;
the exact reference store — correctly — does not).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

from repro.streams.updates import Update

__all__ = ["SlidingWindowDriver"]


class SlidingWindowDriver:
    """Maintains time-based sliding-window semantics over sinks.

    Parameters
    ----------
    window_span:
        Width of the window in the caller's time unit.  An update observed
        at time ``t`` expires as soon as the clock reaches ``t +
        window_span`` (exclusive bound: ``observe(..., at=0)`` with span 10
        is still in-window at ``advance_to(9)`` and gone at 10).
    sinks:
        Objects with ``process(update)`` or ``apply(update)``; every
        forwarded and inverse update goes to all of them.
    clock_policy:
        What to do with a non-monotonic clock.  The driver's correctness
        argument (expiry order equals observation order, so the deque
        head is always the oldest in-window update) needs a
        non-decreasing clock; a timestamp that silently moved it
        backwards — or a NaN, which every comparison answers False for,
        freezing expiry forever — would mis-expire updates with no
        error.  ``"raise"`` (the default) rejects any regressing or NaN
        timestamp with :class:`ValueError`.  ``"clamp"`` instead stamps
        late updates at the current watermark (they enter the window
        *now*, where they were observed, and expire a full span later)
        and treats a backwards ``advance_to`` as a no-op; NaN is always
        an error — there is no watermark it can mean.  Clamping is the
        policy for wall-clock sources with small skew (e.g. merged feeds
        from several machines), raising for logical/event time where a
        regression is a bug worth hearing about.
    """

    def __init__(
        self, window_span: float, *sinks, clock_policy: str = "raise"
    ) -> None:
        if window_span <= 0:
            raise ValueError("window_span must be positive")
        if not sinks:
            raise ValueError("need at least one sink")
        if clock_policy not in ("raise", "clamp"):
            raise ValueError("clock_policy must be 'raise' or 'clamp'")
        self.window_span = window_span
        self.clock_policy = clock_policy
        self._handlers = []
        for sink in sinks:
            handler = getattr(sink, "process", None) or getattr(sink, "apply", None)
            if handler is None:
                raise TypeError(
                    f"{type(sink).__name__} has no process()/apply() method"
                )
            self._handlers.append(handler)
        self._clock = float("-inf")
        self._in_window: deque[tuple[float, Update]] = deque()

    # -- ingest ---------------------------------------------------------------

    def observe(self, update: Update, at: float) -> None:
        """Forward one update observed at time ``at``.

        ``at`` must respect the configured ``clock_policy``: regressions
        raise by default, or are clamped to the current watermark (see
        the class docstring); NaN timestamps always raise.
        """
        at = self._checked_time(at)
        if at < self._clock:  # clamp policy: stamp at the watermark
            at = self._clock
        self.advance_to(at)
        self._emit(update)
        self._in_window.append((at, update))

    def observe_many(self, updates: Iterable[tuple[Update, float]]) -> None:
        """Observe a sequence of (update, timestamp) pairs."""
        for update, at in updates:
            self.observe(update, at)

    def advance_to(self, now: float) -> int:
        """Move the clock forward, expiring everything out of window.

        Returns the number of updates expired.  A regressing ``now``
        raises or is ignored per ``clock_policy``; NaN always raises.
        """
        now = self._checked_time(now)
        if now < self._clock:  # clamp policy: backwards advance is a no-op
            return 0
        self._clock = now
        expired = 0
        while self._in_window and self._in_window[0][0] + self.window_span <= now:
            _, update = self._in_window.popleft()
            self._emit(update.inverse())
            expired += 1
        return expired

    # -- introspection ---------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def in_window_count(self) -> int:
        """Number of updates currently inside the window."""
        return len(self._in_window)

    # -- internals -------------------------------------------------------------

    def _checked_time(self, value: float) -> float:
        """Validate a timestamp against the clock policy.

        NaN is rejected unconditionally: ``NaN < clock`` is False, so a
        NaN would slip past any ordering check, become the new watermark,
        and freeze expiry forever (every ``timestamp + span <= NaN``
        comparison is False too).
        """
        value = float(value)
        if math.isnan(value):
            raise ValueError("timestamps must not be NaN")
        if value < self._clock and self.clock_policy == "raise":
            raise ValueError(
                f"time went backwards: {value} after {self._clock}"
            )
        return value

    def _emit(self, update: Update) -> None:
        for handler in self._handlers:
            handler(update)
