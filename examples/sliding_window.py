"""Sliding-window distinct counting via deletions.

Deletion support is what makes time windows possible with this synopsis:
as sessions age out of the monitoring window, the *source* emits the
inverse updates, and the deletion-invariant sketch ends up identical to
one built over just the in-window traffic.

The scenario: a router reports active-session source addresses; the
operator wants "distinct sources in the last hour" and "distinct sources
seen at both routers in the last hour" on a rolling basis.

Run:  python examples/sliding_window.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactStreamStore, SketchSpec, StreamEngine, Update
from repro.streams.windows import SlidingWindowDriver

WINDOW = 3600.0  # one hour, in seconds
TICKS = 4  # traffic bursts, one per half hour


def main() -> None:
    rng = np.random.default_rng(77)
    engine = StreamEngine(SketchSpec(num_sketches=256, seed=5))
    exact = ExactStreamStore()
    driver = SlidingWindowDriver(WINDOW, engine, exact)

    addresses = rng.choice(2**30, size=40_000, replace=False)
    cursor = 0

    for burst in range(TICKS):
        now = burst * 1800.0  # every half hour
        # Each burst: 8k sessions at R1, 6k at R2, overlapping by 4k.
        r1 = addresses[cursor : cursor + 8000]
        r2 = addresses[cursor + 4000 : cursor + 10_000]
        cursor += 10_000
        for address in r1:
            driver.observe(Update("R1", int(address), +1), at=now)
        for address in r2:
            driver.observe(Update("R2", int(address), +1), at=now)

        estimate = engine.query("R1 & R2", epsilon=0.15)
        truth = exact.cardinality("R1 & R2")
        error = abs(estimate.value - truth) / truth if truth else 0.0
        print(
            f"t={now / 3600:4.1f}h  in-window updates: "
            f"{driver.in_window_count:6,}   |R1 ∩ R2| ≈ "
            f"{estimate.value:7,.0f} (exact {truth:6,}, err {100 * error:4.1f}%)"
        )

    # Let the window drain completely: everything expires.
    driver.advance_to(TICKS * 1800.0 + WINDOW)
    engine.flush()
    print(
        f"\nafter the window drains: in-window updates = "
        f"{driver.in_window_count}, sketches empty = "
        f"{all(engine.family(name).is_empty() for name in engine.stream_names())}"
    )


if __name__ == "__main__":
    main()
