"""Randomized fuzz of the delta-export protocol's sequencing invariants.

Each seed drives one in-process schedule over
:class:`~repro.streams.distributed.StreamSite` /
:class:`~repro.streams.distributed.Coordinator`: random update batches,
duplicate deliveries, withheld exports whose later siblings must raise
:class:`~repro.errors.DeltaSequenceError` (gaps are detected, never
silently skipped), retained-tail re-sync, at least three site
incarnations under reused ids, and simulated coordinator fail-over
(state handed to a fresh coordinator via ``adopt_family`` +
``set_applied_sequence``).  Some seeds fold into a 2-shard
:class:`~repro.streams.sharded.ShardedEngine` instead of the flat family
map — the protocol must not care.

Afterwards the coordinator must be bit-identical to a flat
:class:`~repro.streams.engine.StreamEngine` fed the same updates.  The
sketch spec is tiny so the fast tier affords ~200 seeds; the slow tier
multiplies the coverage.
"""

from __future__ import annotations

import random

import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import DeltaSequenceError, EstimationError
from repro.streams.distributed import Coordinator, StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.sharded import ShardedEngine
from repro.streams.updates import Update

TINY = SketchSpec(
    num_sketches=8,
    shape=SketchShape(domain_bits=12, num_second_level=4, independence=4),
    seed=5,
)

STREAMS = "XY"
FAST_SEEDS = range(200)
SLOW_SEEDS = range(200, 1000)


def random_batch(rng: random.Random, size: int) -> list[Update]:
    return [
        Update(
            stream=rng.choice(STREAMS),
            element=rng.randrange(1, 3000),
            delta=rng.choice([1, 1, -1]),
        )
        for _ in range(size)
    ]


def drain(coordinator: Coordinator, site: StreamSite) -> None:
    """Deliver every retained export in order and acknowledge."""
    applied = coordinator.applied_sequence(site.site_id, site.incarnation)
    for export in site.exports_after(applied):
        coordinator.collect(export)
    site.acknowledge(
        coordinator.applied_sequence(site.site_id, site.incarnation)
    )


def flush(coordinator: Coordinator, site: StreamSite) -> None:
    """Cut a final export (un-exported observations) and drain it all."""
    site.export()
    drain(coordinator, site)


def run_schedule(seed: int) -> tuple[Coordinator, StreamEngine, int]:
    rng = random.Random(seed)
    truth = StreamEngine(TINY)
    fold = (
        ShardedEngine(TINY, num_shards=2, executor="serial")
        if seed % 4 == 0
        else None
    )
    coordinator = Coordinator(TINY, engine=fold)
    incarnations = 0
    site_ids = ("p", "q")
    sites = {site_id: StreamSite(site_id, TINY) for site_id in site_ids}
    incarnations += len(sites)

    steps = rng.randrange(8, 14)
    for step in range(steps):
        site_id = rng.choice(site_ids)
        site = sites[site_id]
        batch = random_batch(rng, rng.randrange(3, 12))
        site.observe_many(batch)
        truth.process_many(batch)

        action = rng.random()
        if action < 0.45:
            # Plain delivery (and maybe an idempotent duplicate).
            export = site.export()
            assert coordinator.collect(export) is True
            if rng.random() < 0.4:
                assert coordinator.collect(export) is False
            site.acknowledge(
                coordinator.applied_sequence(site_id, site.incarnation)
            )
        elif action < 0.7:
            # A withheld export: its successor is a detected gap, after
            # which the retained tail re-syncs in order.
            site.export()  # cut but "lost in transit"
            extra = random_batch(rng, 2)
            site.observe_many(extra)
            truth.process_many(extra)
            later = site.export()
            with pytest.raises(DeltaSequenceError):
                coordinator.collect(later)
            drain(coordinator, site)
        elif action < 0.85 and step > 1:
            # Site process restart under the same id: flush the old
            # life, then a fresh incarnation restarts numbering at 1.
            flush(coordinator, site)
            sites[site_id] = StreamSite(site_id, TINY)
            incarnations += 1
            assert (
                coordinator.applied_sequence(
                    site_id, sites[site_id].incarnation
                )
                == 0
            )
        else:
            # Batch up: export later (retention covers the wait).
            pass

        if rng.random() < 0.15:
            # Coordinator fail-over: hand the merged families and the
            # sequence map to a fresh instance (the checkpoint path,
            # minus the disk).
            successor = Coordinator(TINY)
            for name, family in coordinator.families().items():
                successor.adopt_family(name, family.copy())
            for sid, history in coordinator.site_sequences().items():
                for incarnation, sequence in history.items():
                    successor.set_applied_sequence(sid, incarnation, sequence)
            if fold is not None:
                fold.close()
                fold = None
            coordinator = successor

    for site in sites.values():
        flush(coordinator, site)
    if fold is not None:
        fold.close()
    return coordinator, truth, incarnations


def assert_bit_identical(
    coordinator: Coordinator, truth: StreamEngine, seed: int
) -> None:
    truth.flush()
    context = f"delta-fuzz seed={seed}"
    assert coordinator.stream_names() == truth.stream_names(), context
    families = coordinator.families()
    for name, family in truth.families().items():
        assert families[name] == family, f"{context} stream={name}"
    def outcome(target, method, *args):
        # Equal counters must answer with bit-equal estimates — or fail
        # with the same estimation error (the tiny 8-sketch spec cannot
        # always produce a valid observation; that too must match).
        try:
            return getattr(target, method)(*args).value
        except EstimationError as exc:
            return type(exc)

    assert outcome(coordinator, "query", "X - Y", 0.3) == outcome(
        truth, "query", "X - Y", 0.3
    ), context
    assert outcome(
        coordinator, "query_union", list(STREAMS), 0.3
    ) == outcome(truth, "query_union", list(STREAMS), 0.3), context


def check_seed(seed: int) -> None:
    coordinator, truth, incarnations = run_schedule(seed)
    assert_bit_identical(coordinator, truth, seed)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_delta_protocol_fuzz(seed):
    check_seed(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_delta_protocol_fuzz_slow(seed):
    check_seed(seed)


def test_schedules_cover_three_incarnations():
    """At least one fast seed exercises ≥3 incarnations of a reused site
    id (the restart-scoping the fuzz exists to check)."""
    assert any(
        run_schedule(seed)[2] >= 3 + 1 for seed in range(20)
    )
