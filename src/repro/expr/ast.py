"""Set-expression abstract syntax trees.

The paper's general estimator (Section 4) works on expressions of the form
``E := (((A₁ op₁ A₂) op₂ A₃) … Aₙ)`` with ``op ∈ {∪, ∩, −}``.  This module
models such expressions as immutable trees that know how to

* report the stream identifiers they mention (:meth:`SetExpression.streams`),
* evaluate themselves **exactly** over materialised Python sets
  (:meth:`SetExpression.evaluate` — the ground truth used in tests and
  experiments),
* map themselves to the Boolean formula ``B(E)`` over per-stream bucket
  non-emptiness masks (:meth:`SetExpression.boolean_mask` — the witness
  condition of the estimator), and
* evaluate membership of a hypothetical element given which streams contain
  it (:meth:`SetExpression.contains` — the basis of the Venn-partition
  algebra in :mod:`repro.expr.venn`).

Python's set operators are overloaded so expressions read naturally::

    from repro.expr import streams
    A, B, C = streams("A", "B", "C")
    expression = (A - B) & C
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import AbstractSet, Iterator, Mapping

import numpy as np

__all__ = [
    "SetExpression",
    "StreamRef",
    "UnionExpr",
    "IntersectionExpr",
    "DifferenceExpr",
    "streams",
]


class SetExpression(ABC):
    """Base class for nodes of a set-expression tree."""

    @abstractmethod
    def streams(self) -> frozenset[str]:
        """The stream identifiers mentioned anywhere in the expression."""

    @abstractmethod
    def evaluate(self, sets: Mapping[str, AbstractSet]) -> set:
        """Exact evaluation over materialised distinct-element sets."""

    @abstractmethod
    def boolean_mask(self, masks: Mapping[str, np.ndarray]) -> np.ndarray:
        """The paper's ``B(E)`` over per-stream bucket non-emptiness masks.

        ``masks[name]`` is a boolean array ("bucket non-empty in the
        sketch of stream *name*"); the result combines them with the
        ∨/∧/∧¬ mapping of Section 4 and has the same shape.
        """

    @abstractmethod
    def contains(self, membership: Mapping[str, bool]) -> bool:
        """Whether an element with the given per-stream membership is in E."""

    @abstractmethod
    def to_text(self) -> str:
        """A parseable textual rendering of the expression."""

    def subexpressions(self) -> Iterator["SetExpression"]:
        """Depth-first iteration over this node and all descendants."""
        yield self
        for child in self._children():
            yield from child.subexpressions()

    def compiled(self):
        """This expression as a flat postfix program (memoised).

        Returns a :class:`~repro.expr.compile.CompiledExpression` whose
        ``evaluate`` is bit-identical to :meth:`boolean_mask` without the
        per-call tree walk — what the engine uses for standing queries.
        """
        from repro.expr.compile import compile_expression

        return compile_expression(self)

    def _children(self) -> tuple["SetExpression", ...]:
        return ()

    # Operator sugar: StreamRef("A") | StreamRef("B"), etc.

    def __or__(self, other: "SetExpression") -> "UnionExpr":
        return UnionExpr(self, _require_expression(other))

    def __and__(self, other: "SetExpression") -> "IntersectionExpr":
        return IntersectionExpr(self, _require_expression(other))

    def __sub__(self, other: "SetExpression") -> "DifferenceExpr":
        return DifferenceExpr(self, _require_expression(other))

    def __str__(self) -> str:
        return self.to_text()


def _require_expression(value: object) -> "SetExpression":
    if not isinstance(value, SetExpression):
        raise TypeError(f"expected a SetExpression, got {type(value).__name__}")
    return value


@dataclass(frozen=True)
class StreamRef(SetExpression):
    """A leaf referring to one update stream by identifier."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid stream name: {self.name!r}")

    def streams(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, sets: Mapping[str, AbstractSet]) -> set:
        return set(sets[self.name])

    def boolean_mask(self, masks: Mapping[str, np.ndarray]) -> np.ndarray:
        return np.asarray(masks[self.name], dtype=bool)

    def contains(self, membership: Mapping[str, bool]) -> bool:
        return bool(membership.get(self.name, False))

    def to_text(self) -> str:
        return self.name


@dataclass(frozen=True)
class _BinaryExpr(SetExpression):
    """Shared plumbing for the three binary operators."""

    left: SetExpression
    right: SetExpression

    #: Operator glyph used by :meth:`to_text`; overridden per subclass.
    _symbol = "?"

    def streams(self) -> frozenset[str]:
        return self.left.streams() | self.right.streams()

    def _children(self) -> tuple[SetExpression, ...]:
        return (self.left, self.right)

    def to_text(self) -> str:
        return f"({self.left.to_text()} {self._symbol} {self.right.to_text()})"


class UnionExpr(_BinaryExpr):
    """Set union: ``B(E₁ ∪ E₂) = B(E₁) ∨ B(E₂)``."""

    _symbol = "|"

    def evaluate(self, sets: Mapping[str, AbstractSet]) -> set:
        return self.left.evaluate(sets) | self.right.evaluate(sets)

    def boolean_mask(self, masks: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.left.boolean_mask(masks) | self.right.boolean_mask(masks)

    def contains(self, membership: Mapping[str, bool]) -> bool:
        return self.left.contains(membership) or self.right.contains(membership)


class IntersectionExpr(_BinaryExpr):
    """Set intersection: ``B(E₁ ∩ E₂) = B(E₁) ∧ B(E₂)``."""

    _symbol = "&"

    def evaluate(self, sets: Mapping[str, AbstractSet]) -> set:
        return self.left.evaluate(sets) & self.right.evaluate(sets)

    def boolean_mask(self, masks: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.left.boolean_mask(masks) & self.right.boolean_mask(masks)

    def contains(self, membership: Mapping[str, bool]) -> bool:
        return self.left.contains(membership) and self.right.contains(membership)


class DifferenceExpr(_BinaryExpr):
    """Set difference: ``B(E₁ − E₂) = B(E₁) ∧ ¬B(E₂)``."""

    _symbol = "-"

    def evaluate(self, sets: Mapping[str, AbstractSet]) -> set:
        return self.left.evaluate(sets) - self.right.evaluate(sets)

    def boolean_mask(self, masks: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.left.boolean_mask(masks) & ~self.right.boolean_mask(masks)

    def contains(self, membership: Mapping[str, bool]) -> bool:
        return self.left.contains(membership) and not self.right.contains(membership)


def streams(*names: str) -> tuple[StreamRef, ...]:
    """Convenience constructor: ``A, B = streams("A", "B")``."""
    return tuple(StreamRef(name) for name in names)
