"""Edge-case sweep across the stack.

Cases that don't fit a single module's unit tests: saturation regimes,
degenerate sizes, deep expressions, unusual-but-legal configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.expression import estimate_expression
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.expr.parser import parse
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update


class TestTinyConfigurations:
    def test_single_sketch_family(self):
        shape = SketchShape(domain_bits=16, num_second_level=1, independence=2)
        spec = SketchSpec(num_sketches=1, shape=shape, seed=0)
        family = spec.build()
        family.update_batch(np.arange(100, dtype=np.uint64))
        estimate = estimate_union([family], 0.5)
        assert estimate.value >= 0  # noisy but defined

    def test_single_element_stream(self):
        shape = SketchShape(domain_bits=16, num_second_level=4, independence=2)
        spec = SketchSpec(num_sketches=64, shape=shape, seed=1)
        family = spec.build()
        family.update(42, 1)
        estimate = estimate_union([family], 0.2)
        assert 0 < estimate.value < 20

    def test_minimal_domain(self):
        shape = SketchShape(domain_bits=1, num_second_level=2, independence=2)
        spec = SketchSpec(num_sketches=8, shape=shape, seed=2)
        family = spec.build()
        family.update(0, 1)
        family.update(1, 1)
        assert estimate_union([family], 0.5).value >= 0

    def test_maximum_domain_bits(self):
        shape = SketchShape(domain_bits=60, num_second_level=4, independence=2)
        spec = SketchSpec(num_sketches=4, shape=shape, seed=3)
        family = spec.build()
        family.update((1 << 60) - 1, 1)
        assert not family.is_empty()


class TestSaturation:
    def test_dense_domain_does_not_crash(self):
        """Stream cardinality comparable to the domain size: the level
        scan must terminate and return something finite."""
        shape = SketchShape(domain_bits=12, num_second_level=4, independence=4)
        spec = SketchSpec(num_sketches=32, shape=shape, seed=4)
        family = spec.build()
        family.update_batch(np.arange(2**12, dtype=np.uint64))
        estimate = estimate_union([family], 0.2)
        assert np.isfinite(estimate.value)
        assert estimate.value > 2**10

    def test_huge_multiplicities(self):
        shape = SketchShape(domain_bits=16, num_second_level=4, independence=2)
        spec = SketchSpec(num_sketches=32, shape=shape, seed=5)
        family = spec.build()
        elements = np.arange(500, dtype=np.uint64)
        family.update_batch(elements, np.full(500, 10**12))
        estimate = estimate_union([family], 0.2)
        assert abs(estimate.value - 500) / 500 < 0.6


class TestDeepExpressions:
    def test_six_stream_expression(self):
        rng = np.random.default_rng(60)
        shape = SketchShape(domain_bits=20, num_second_level=8, independence=6)
        spec = SketchSpec(num_sketches=128, shape=shape, seed=6)
        pool = rng.choice(2**20, size=1200, replace=False).astype(np.uint64)
        names = ["S1", "S2", "S3", "S4", "S5", "S6"]
        families = {}
        for index, name in enumerate(names):
            family = spec.build()
            family.update_batch(pool[index * 150 : index * 150 + 450])
            families[name] = family
        expression = "((S1 | S2) & (S3 | S4)) - (S5 & S6)"
        estimate = estimate_expression(expression, families, 0.2, pool_levels=4)
        assert np.isfinite(estimate.value)
        assert estimate.value >= 0

    def test_deeply_nested_parse(self):
        text = "A"
        for _ in range(40):
            text = f"({text} | B)"
        tree = parse(text)
        assert tree.streams() == {"A", "B"}

    def test_long_left_chain(self):
        names = [f"X{i}" for i in range(12)]
        text = " - ".join(names)
        tree = parse(text)
        assert len(tree.streams()) == 12


class TestEngineEdges:
    def _engine(self):
        shape = SketchShape(domain_bits=16, num_second_level=4, independence=4)
        return StreamEngine(SketchSpec(num_sketches=32, shape=shape, seed=7))

    def test_union_query_on_unseen_streams(self):
        engine = self._engine()
        estimate = engine.query_union(["NEVER", "SEEN"], 0.3)
        assert estimate.value == 0.0

    def test_many_streams(self):
        engine = self._engine()
        for index in range(25):
            engine.process(Update(f"S{index}", index, 1))
        engine.flush()
        assert len(engine.stream_names()) == 25

    def test_alternating_insert_delete_storm(self):
        engine = self._engine()
        for _ in range(200):
            engine.process(Update("A", 5, 1))
            engine.process(Update("A", 5, -1))
        engine.flush()
        assert engine.family("A").is_empty()

    def test_large_single_update_batch(self):
        engine = self._engine()
        engine.process(Update("A", 9, 10**15))
        engine.flush()
        assert not engine.family("A").is_empty()


class TestWitnessLevelEdge:
    def test_union_estimate_beyond_levels_is_clamped(self):
        """A wildly overestimated û must clamp the witness level instead
        of indexing out of range."""
        from repro.core.intersection import estimate_intersection

        shape = SketchShape(domain_bits=16, num_second_level=4, independence=4)
        spec = SketchSpec(num_sketches=32, shape=shape, seed=8)
        family_a, family_b = spec.build(), spec.build()
        family_a.update_batch(np.arange(100, dtype=np.uint64))
        family_b.update_batch(np.arange(50, 150, dtype=np.uint64))
        with pytest.raises(Exception):
            # At level 63 every bucket is empty: no valid observation.
            estimate_intersection(family_a, family_b, 0.1, union_estimate=1e30)
