"""Exception hierarchy for the ``repro`` library.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still being able to distinguish input problems (``DomainError``,
``IllegalDeletionError``, ``IncompatibleSketchesError``) from estimation
failures (``EstimationError``).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DomainError",
    "IllegalDeletionError",
    "IncompatibleSketchesError",
    "EstimationError",
    "ExpressionError",
    "UnknownStreamError",
    "UnknownQueryError",
    "UnknownTenantError",
    "RateLimitedError",
    "DeltaSequenceError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DomainError(ReproError, ValueError):
    """An element lies outside the configured domain ``[0, M)``."""


class IllegalDeletionError(ReproError, ValueError):
    """A deletion would drive an element's net frequency below zero.

    The paper's update model (Section 2.1) assumes all deletions are legal;
    the exact reference store enforces the assumption so that experiment
    inputs are guaranteed well-formed.
    """


class IncompatibleSketchesError(ReproError, ValueError):
    """Sketches built with different hash functions/shapes were combined.

    Estimators require the synopses of all participating streams to share
    the same first- and second-level hash functions ("stored coins"); this
    error signals a violation before any nonsense estimate can be produced.
    """


class EstimationError(ReproError, RuntimeError):
    """An estimator could not produce an estimate from the given synopses.

    Typical cause: none of the maintained sketches yielded a valid atomic
    observation (every first-level bucket at the chosen level failed the
    singleton test), which the theory predicts to be exponentially unlikely
    once enough sketches are maintained.
    """


class ExpressionError(ReproError, ValueError):
    """A set expression could not be parsed or is structurally invalid."""


class UnknownStreamError(ReproError, KeyError):
    """An expression referenced a stream id with no registered synopsis."""


class UnknownQueryError(ReproError, KeyError):
    """A standing-query name with no registration was referenced."""


class UnknownTenantError(ReproError, KeyError):
    """A query named a tenant the serving front end does not know."""


class RateLimitedError(ReproError, RuntimeError):
    """A tenant exceeded its query-rate budget.

    The serving layer answers an over-budget query immediately with this
    typed error instead of queueing it — a slow client must never be able
    to wedge the event loop behind a backlog of its own making.
    ``retry_after`` is the earliest delay (seconds) after which the
    token bucket will cover the rejected request.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeltaSequenceError(ReproError, ValueError):
    """A delta export arrived out of order (a sequence gap).

    The distributed delta protocol numbers each site's exports with a
    monotone sequence; the coordinator applies them in order so that a
    lost export can never be silently skipped.  Duplicates (sequence at
    or below the last applied one) are dropped idempotently — only a
    *gap* raises, because applying the later delta without the missing
    one would leave the merged synopsis short of updates.
    """
