"""Unit tests for the sweep runner (tiny configurations only)."""

from __future__ import annotations

import math

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_sweep

TINY = ExperimentConfig(
    name="tiny",
    title="tiny sweep",
    expression="A & B",
    union_size=512,
    target_ratios=(0.5,),
    sketch_counts=(32, 64),
    trials=3,
    num_second_level=8,
    independence=6,
    domain_bits=20,
    base_seed=7,
)


class TestRunSweep:
    def test_structure(self):
        result = run_sweep(TINY)
        assert result.config == TINY
        assert len(result.series) == 1
        series = result.series[0]
        assert series.sketch_counts == (32, 64)
        assert len(series.errors) == 2
        assert all(e >= 0 for e in series.errors)
        assert result.elapsed_seconds > 0

    def test_errors_are_finite_at_moderate_ratio(self):
        result = run_sweep(TINY)
        assert all(math.isfinite(e) for e in result.series[0].errors)

    def test_realised_target_recorded(self):
        result = run_sweep(TINY)
        assert abs(result.series[0].target_size - 256) < 64

    def test_error_at_accessor(self):
        series = run_sweep(TINY).series[0]
        assert series.error_at(32) == series.errors[0]

    def test_table_rendering(self):
        table = run_sweep(TINY).as_table()
        assert "tiny sweep" in table
        assert "32" in table and "64" in table
        assert "%" in table

    def test_progress_callback(self):
        lines = []
        run_sweep(TINY, progress=lines.append)
        assert len(lines) == TINY.trials * len(TINY.target_ratios)

    def test_deterministic(self):
        first = run_sweep(TINY)
        second = run_sweep(TINY)
        assert first.series[0].errors == second.series[0].errors

    def test_multiple_ratios(self):
        config = ExperimentConfig(
            name="two-ratio",
            title="two ratios",
            expression="A - B",
            union_size=512,
            target_ratios=(0.5, 0.25),
            sketch_counts=(32,),
            trials=2,
            num_second_level=8,
            independence=6,
            domain_bits=20,
        )
        result = run_sweep(config)
        assert len(result.series) == 2
        assert result.series[0].target_size > result.series[1].target_size


class TestPoolingConfig:
    def test_pooled_sweep_runs(self):
        from dataclasses import replace

        pooled = replace(TINY, name="tiny-pooled", pool_levels=4)
        result = run_sweep(pooled)
        assert len(result.series) == 1
        assert all(e >= 0 for e in result.series[0].errors)

    def test_default_is_single_level(self):
        assert TINY.pool_levels == 1
