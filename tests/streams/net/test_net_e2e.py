"""End-to-end and fault-injection tests for the asyncio net layer.

Every test asserts *bit-identity*: whatever failures are injected
(duplicate delivery, dropped connections mid-frame, coordinator restart
from a checkpoint), the coordinator's merged synopses must equal — in
every counter — those of a single :class:`StreamEngine` fed the
concatenated updates, because the delta protocol makes redundant
delivery idempotent and lost delivery replayable.

All tests run on localhost sockets inside one event loop and assert
behaviour, never wall-clock; each is wrapped in a hard
``asyncio.wait_for`` so a hung socket fails fast instead of stalling the
suite.
"""

from __future__ import annotations

import asyncio
import random
import struct

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.distributed import Coordinator, StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.net import protocol
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient, SiteConnectionError
from repro.streams.updates import Update, deletions, insertions

SHAPE = SketchShape(domain_bits=16, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=32, shape=SHAPE, seed=23)

TIMEOUT = 30.0


def run(coro):
    """Run a coroutine under a hard timeout (hung sockets fail, not stall)."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def make_client(site_id: str, port: int, **overrides) -> SiteClient:
    options = dict(
        site_id=site_id,
        spec=SPEC,
        port=port,
        connect_timeout=2.0,
        io_timeout=2.0,
        max_retries=60,
        backoff_base=0.01,
        backoff_cap=0.05,
        rng=random.Random(hash(site_id) & 0xFFFF),
    )
    options.update(overrides)
    return SiteClient(**options)


def site_rounds() -> list[list[list[Update]]]:
    """Per-site, per-round update batches: interleaved streams, with
    deletions (including cross-site deletions of earlier insertions)."""
    return [
        [  # site-1
            insertions("A", range(0, 100)) + insertions("B", range(50, 120)),
            deletions("B", range(50, 70)) + insertions("A", range(500, 550)),
        ],
        [  # site-2
            insertions("B", range(200, 280)) + deletions("A", range(0, 20)),
            insertions("C", range(600, 660)) + deletions("C", range(300, 330)),
        ],
        [  # site-3
            insertions("C", range(300, 400)) + insertions("A", range(400, 450)),
            insertions("B", range(700, 750)) + deletions("A", range(400, 420)),
        ],
    ]


def ground_truth_engine() -> StreamEngine:
    engine = StreamEngine(SPEC)
    for rounds in site_rounds():
        for updates in rounds:
            engine.process_many(updates)
    engine.flush()
    return engine


def assert_bit_identical(coordinator: Coordinator, engine: StreamEngine):
    assert coordinator.stream_names() == engine.stream_names()
    for name, family in engine.families().items():
        assert coordinator._families[name] == family, name
    # Estimates are deterministic functions of the counters, so equal
    # counters must answer with bit-equal estimates.
    names = engine.stream_names()
    assert (
        coordinator.query_union(names, 0.25).value
        == engine.query_union(names, 0.25).value
    )
    expression = "(A & B) | C"
    assert (
        coordinator.query(expression, 0.25).value
        == engine.query(expression, 0.25).value
    )


class TestEndToEnd:
    def test_three_sites_with_disconnect_and_restart(self, tmp_path):
        """The acceptance scenario: 3 sites, 2 export rounds each, one
        injected disconnect+retry, one coordinator restart from
        checkpoint — final state bit-identical to an unfailed single
        engine, and re-delivery changes nothing."""

        async def scenario():
            rounds = site_rounds()
            server = CoordinatorServer(
                SPEC, port=0, checkpoint_dir=tmp_path, checkpoint_every=1
            )
            await server.start()
            port = server.port
            clients = [
                make_client(f"site-{i + 1}", port) for i in range(len(rounds))
            ]

            # Round 1: every site observes and ships.
            for client, site_updates in zip(clients, rounds):
                client.observe_many(site_updates[0])
                await client.ship()

            # Injected disconnect: kill one site's connection mid-session;
            # its next delivery must silently reconnect and retry.
            clients[0]._drop_connection()

            # Coordinator restart: stop the server, restore from the
            # checkpoint, come back on the same port — concurrently with
            # the sites' round-2 shipping, which must retry/backoff
            # until the coordinator is reachable again.
            await server.stop()
            restored = CoordinatorServer.restore(
                tmp_path, port=port, checkpoint_every=1
            )

            async def bring_back():
                await asyncio.sleep(0.05)
                await restored.start()

            async def ship_round_2(client, site_updates):
                client.observe_many(site_updates[1])
                await client.ship()

            await asyncio.gather(
                bring_back(),
                *[
                    ship_round_2(client, site_updates)
                    for client, site_updates in zip(clients, rounds)
                ],
            )

            # Re-delivery of everything still retained: no state change.
            snapshot = {
                name: family.counters.copy()
                for name, family in restored.coordinator._families.items()
            }
            for client in clients:
                await client.connect()  # re-sync path; all duplicates
            for name, counters in snapshot.items():
                assert np.array_equal(
                    restored.coordinator._families[name].counters, counters
                )

            stats = restored.stats()
            assert any(c.stats.reconnects >= 1 for c in clients)
            for client in clients:
                await client.close()
            await restored.stop()
            return restored.coordinator, stats

        coordinator, stats = run(scenario())
        assert_bit_identical(coordinator, ground_truth_engine())
        # Each site shipped two applied rounds (re-syncs drop as duplicates).
        for site_id in ("site-1", "site-2", "site-3"):
            assert coordinator.applied_sequence(site_id) >= 2
            assert stats[site_id].deltas_applied >= 1


class TestDuplicateDelivery:
    def test_same_sequence_twice_on_the_wire(self):
        """The same delta frame delivered twice folds exactly once."""

        async def scenario():
            server = CoordinatorServer(SPEC, port=0)
            await server.start()

            site = StreamSite("dup", SPEC)
            site.observe_many(insertions("A", range(100)))
            export = site.export()
            header, blobs = protocol.delta_message(export)

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await protocol.write_message(
                writer, protocol.hello_message("dup", site.incarnation)
            )
            welcome, _, _ = await protocol.read_message(reader)
            assert welcome["type"] == "welcome" and welcome["sequence"] == 0

            for expected_applied in (1, 1):  # second send is a duplicate
                await protocol.write_message(writer, header, blobs)
                ack, _, _ = await protocol.read_message(reader)
                assert ack["type"] == "ack"
                assert ack["sequence"] == expected_applied
            writer.close()
            await writer.wait_closed()

            stats = server.stats()["dup"]
            assert stats.deltas_applied == 1
            assert stats.duplicates_dropped == 1
            await server.stop()
            return server.coordinator

        coordinator = run(scenario())
        unfailed = StreamEngine(SPEC)
        unfailed.process_many(insertions("A", range(100)))
        assert coordinator._families["A"] == unfailed.family("A")


class TestDroppedConnectionMidFrame:
    def test_partial_frame_applies_nothing(self):
        """A connection cut mid-frame must leave no partial state, and a
        subsequent clean session must converge to the unfailed result."""

        async def scenario():
            server = CoordinatorServer(SPEC, port=0)
            await server.start()

            # A real site, to craft a genuine delta frame.
            site = StreamSite("cut", SPEC)
            site.observe_many(insertions("A", range(50)))
            header, blobs = protocol.delta_message(site.export())
            payload = protocol.encode_message(header, blobs)

            # Hello cleanly, then send only half the delta frame and drop.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await protocol.write_message(
                writer, protocol.hello_message("cut", site.incarnation)
            )
            await protocol.read_message(reader)  # welcome
            writer.write(struct.pack(">I", len(payload)) + payload[: len(payload) // 2])
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)  # let the handler observe the cut

            assert server.coordinator.applied_sequence("cut") == 0
            assert server.coordinator.stream_names() == []

            # The site reconnects via the real client and re-syncs: the
            # export is still retained (never acked), so nothing is lost.
            client = SiteClient(
                site=site,
                port=server.port,
                connect_timeout=2.0,
                io_timeout=2.0,
                max_retries=10,
                backoff_base=0.01,
                rng=random.Random(3),
            )
            await client.connect()
            assert server.coordinator.applied_sequence("cut") == 1
            await client.close()
            await server.stop()
            return server.coordinator

        coordinator = run(scenario())
        unfailed = StreamEngine(SPEC)
        unfailed.process_many(insertions("A", range(50)))
        assert coordinator._families["A"] == unfailed.family("A")


class TestRestartFailover:
    def test_restart_recovers_checkpoint_and_resyncs_tail(self, tmp_path):
        """Deltas applied after the last checkpoint are replayed by the
        sites from their retained exports after a coordinator restart."""

        async def scenario():
            server = CoordinatorServer(
                SPEC, port=0, checkpoint_dir=tmp_path, checkpoint_every=0
            )
            await server.start()
            port = server.port
            client = make_client("edge", port)

            client.observe_many(insertions("A", range(100)))
            await client.ship()
            server.checkpoint()  # durable through sequence 1

            client.observe_many(
                insertions("B", range(200, 260)) + deletions("A", range(0, 30))
            )
            await client.ship()  # applied but NOT checkpointed

            # Crash: round 2 exists only in memory and in the site's
            # retained tail (durable was 1, so sequence 2 is retained).
            await server.stop()
            assert client.site.retained_exports >= 1

            restored = CoordinatorServer.restore(
                tmp_path, port=port, checkpoint_every=0
            )
            await restored.start()
            assert restored.coordinator.applied_sequence("edge") == 1

            await client.ship()  # round 3 (empty delta) forces a re-sync first
            assert restored.coordinator.applied_sequence("edge") == 3

            await client.close()
            await restored.stop()
            return restored.coordinator

        coordinator = run(scenario())
        unfailed = StreamEngine(SPEC)
        unfailed.process_many(insertions("A", range(100)))
        unfailed.process_many(
            insertions("B", range(200, 260)) + deletions("A", range(0, 30))
        )
        for name, family in unfailed.families().items():
            assert coordinator._families[name] == family


class TestSiteRestart:
    def test_restarted_site_process_is_not_dropped_as_duplicate(self):
        """A site process that restarts (fresh StreamSite, sequence back
        at 0) under the same site id must have its new exports applied,
        not silently dropped as duplicates of its previous life's —
        even though the two lives' sequence numbers overlap.  The
        incarnation id in hello/delta frames is what disambiguates."""

        async def scenario():
            server = CoordinatorServer(SPEC, port=0)
            await server.start()

            old_life = make_client("edge", server.port)
            old_life.observe_many(insertions("A", range(60)))
            await old_life.ship()
            old_life.observe_many(insertions("B", range(40)))
            await old_life.ship()
            await old_life.close()
            assert server.coordinator.applied_sequence("edge") == 2

            # Restart: a brand-new client+site with the same site id.
            # Its first export collides at sequence 1 with the old
            # life's numbering.
            new_life = make_client("edge", server.port)
            assert new_life.site.incarnation != old_life.site.incarnation
            new_life.observe_many(insertions("A", range(60, 90)))
            await new_life.ship()
            assert new_life.site.sequence == 1
            assert (
                server.coordinator.applied_sequence(
                    "edge", new_life.site.incarnation
                )
                == 1
            )
            assert (
                server.coordinator.applied_sequence(
                    "edge", old_life.site.incarnation
                )
                == 2
            )

            await new_life.close()
            await server.stop()
            return server.coordinator

        coordinator = run(scenario())
        truth = StreamEngine(SPEC)
        truth.process_many(insertions("A", range(90)))
        truth.process_many(insertions("B", range(40)))
        truth.flush()
        for name in ("A", "B"):
            assert coordinator._families[name] == truth.family(name)


class TestRetryBudget:
    def test_unreachable_coordinator_raises_after_budget(self):
        async def scenario():
            # Grab a port with no listener: bind, read the number, close.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            client = make_client(
                "lost", port, max_retries=2, backoff_base=0.005
            )
            client.observe(Update("A", 1, 1))
            with pytest.raises(SiteConnectionError, match="lost"):
                await client.ship()
            assert client.stats.retries == 3  # budget + the failing attempt
            # The export is retained for a later successful session.
            assert client.site.retained_exports == 1

        run(scenario())


class TestProtocolRejections:
    def test_wrong_version_and_bad_first_frame(self):
        async def scenario():
            server = CoordinatorServer(SPEC, port=0)
            await server.start()

            # Wrong protocol version: server answers with an error frame.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            hello = protocol.hello_message("v2-site", "life-1")
            hello["version"] = 999
            await protocol.write_message(writer, hello)
            answer, _, _ = await protocol.read_message(reader)
            assert answer["type"] == "error"
            assert "version" in answer["message"]
            writer.close()
            await writer.wait_closed()

            # A non-hello first frame is rejected too.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await protocol.write_message(writer, protocol.ack_message(1, 1))
            answer, _, _ = await protocol.read_message(reader)
            assert answer["type"] == "error"
            writer.close()
            await writer.wait_closed()

            assert server.coordinator.stream_names() == []
            await server.stop()

        run(scenario())
