"""Asyncio coordinator server: folds shipped deltas, checkpoints, re-syncs.

:class:`CoordinatorServer` is the network face of
:class:`~repro.streams.distributed.Coordinator`.  Each connected site
speaks the framed protocol of :mod:`repro.streams.net.protocol`:

1. The site says ``hello``; the server answers ``welcome`` carrying the
   site's last *applied* sequence and last *durable* (checkpoint-covered)
   sequence.  The site re-ships everything newer — so a server restarted
   from a checkpoint is transparently re-synced by its sites.
2. Each ``delta`` frame is folded into the coordinator by sketch
   linearity.  Duplicates (retransmits after a lost ack) are dropped
   idempotently; a sequence gap is answered with the current applied
   sequence so the site rewinds.  Either way the server acks with the
   applied/durable pair.
3. Every ``checkpoint_every`` applied deltas the merged synopses plus
   the per-site sequence map are written through
   :func:`~repro.streams.checkpoint.checkpoint_engine`; acks then carry
   the new durable sequences, letting sites prune their retained tails.

The server runs every site on one event loop — concurrency, not
parallelism — and all state mutation happens between ``await`` points of
a single-threaded loop, so no locks are needed.

Two extensions make servers composable into **federation trees**
(millions of sites cannot all terminate on one coordinator):

* ``engine_factory=`` makes the fold target pluggable — a leaf
  coordinator can fold network deltas into a
  :class:`~repro.streams.sharded.ShardedEngine` (parallel merge across
  shards) instead of a flat family map; queries still merge exactly by
  linearity.
* ``parent_host``/``parent_port`` give the server an **uplink**: a
  :class:`~repro.streams.distributed.StreamSite` backed by the
  coordinator's own aggregated state, shipped to a parent coordinator
  through a :class:`~repro.streams.net.site.SiteClient` exactly like
  any leaf site — same incarnation-scoped sequences, same
  retention-until-durable-ack, same re-sync.  When checkpointing is
  enabled, uplink exports are cut *only inside* :meth:`checkpoint`, so
  every sequence the parent can ever see is persisted (with the
  baselines that produced it) before it goes on the wire; a leaf
  restored from its checkpoint therefore re-ships bit-identical
  payloads instead of diverging, and a mid-tree crash loses nothing and
  double-applies nothing.
"""

from __future__ import annotations

import asyncio
import pathlib
import uuid

from repro.core.family import SketchSpec
from repro.streams.checkpoint import (
    checkpoint_engine,
    checkpoint_sharded_engine,
    read_checkpoint_extra,
    restore_engine,
)
from repro.streams.distributed import Coordinator, DeltaExport, StreamSite
from repro.streams.net import codec, protocol
from repro.streams.net.site import SiteClient, SiteConnectionError
from repro.streams.stats import TransportStats, rollup_transport_stats

__all__ = ["CoordinatorServer"]

_SITE_SEQUENCES_KEY = "site_sequences"
_UPLINK_KEY = "uplink"


class CoordinatorServer:
    """TCP server feeding a :class:`~repro.streams.distributed.Coordinator`.

    Parameters
    ----------
    spec:
        Sketch recipe shared with every site ("stored coins").  Ignored
        when ``coordinator`` is given.
    coordinator:
        An existing coordinator to serve (the restore path); by default
        a fresh one is built from ``spec``.
    host, port:
        Bind address.  ``port=0`` picks a free port — read it back from
        :attr:`port` after :meth:`start`.
    checkpoint_dir:
        Directory for periodic checkpoints (fail-over state).  ``None``
        disables checkpointing; acks then report every applied delta as
        durable, since there is no restart to replay for.
    checkpoint_every:
        Write a checkpoint after this many applied deltas (0 = only
        explicit :meth:`checkpoint` calls).
    engine_factory:
        ``spec -> engine`` callable building the coordinator's fold
        target (e.g. ``lambda spec: ShardedEngine(spec, num_shards=4)``).
        ``None`` keeps the flat family-map fold.  Ignored when
        ``coordinator`` is given (the restore path wires the engine
        itself).  The server never closes a factory-built engine — the
        caller owns its lifecycle, so queries stay possible after
        :meth:`stop`.
    parent_host, parent_port:
        Address of a parent coordinator.  When ``parent_port`` is set
        the server becomes a leaf in a federation tree: it runs an
        uplink :class:`~repro.streams.net.site.SiteClient` whose
        :class:`~repro.streams.distributed.StreamSite` is backed by this
        coordinator's aggregated state.
    uplink_id:
        Site id announced to the parent.  Defaults to a random
        ``leaf-<hex>``; give tree nodes stable ids in production so a
        restarted-without-checkpoint leaf is recognisably the same peer.
    uplink_every:
        Auto-ship aggregated deltas upstream after this many applied
        child deltas (0 = only explicit :meth:`ship_upstream` calls).
    uplink_site:
        A pre-built uplink site (the restore path); overrides
        ``uplink_id``.
    uplink_options:
        Extra keyword arguments forwarded to the uplink
        :class:`~repro.streams.net.site.SiteClient` (timeouts, retry
        budget, ``rng`` for deterministic backoff in tests).
    encodings:
        Wire encodings this server accepts, preference first (see
        :mod:`repro.streams.net.codec`).  Each session's encodings are
        the intersection with what the site's hello offered, announced
        back in the welcome; v1 hellos (no ``encodings`` field) get a
        v1-shaped welcome and plain dense frames.  Pass
        ``codec.DENSE_ONLY`` to force dense for every peer.
    query_port:
        Mount a :class:`~repro.streams.serving.QueryServer` on this
        port (0 = ephemeral), serving set-expression queries over the
        coordinator's merged synopses while ingest keeps running.
        ``query_options`` forwards keyword arguments (tenants, rate
        limits, ``batch_window``) to the query server.
    """

    def __init__(
        self,
        spec: SketchSpec | None = None,
        *,
        coordinator: Coordinator | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_dir: str | pathlib.Path | None = None,
        checkpoint_every: int = 0,
        engine_factory=None,
        parent_host: str = "127.0.0.1",
        parent_port: int | None = None,
        uplink_id: str | None = None,
        uplink_every: int = 0,
        uplink_site: StreamSite | None = None,
        uplink_options: dict | None = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        encodings: tuple = codec.PREFERRED_ENCODINGS,
        query_port: int | None = None,
        query_options: dict | None = None,
    ) -> None:
        if coordinator is None:
            if spec is None:
                raise ValueError("need a SketchSpec or a Coordinator")
            engine = engine_factory(spec) if engine_factory is not None else None
            coordinator = Coordinator(spec, engine=engine)
        self.coordinator = coordinator
        self._host = host
        self._port = port
        self._checkpoint_dir = (
            pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self._checkpoint_every = checkpoint_every
        self._max_frame_bytes = max_frame_bytes
        unknown = sorted(set(encodings) - set(codec.WIRE_ENCODINGS))
        if unknown:
            raise ValueError(
                f"unknown wire encoding(s) {unknown}; "
                f"this build speaks {codec.WIRE_ENCODINGS}"
            )
        self._encodings = tuple(encodings)
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._stats: dict[str, TransportStats] = {}
        # site id -> incarnation -> last sequence covered by a written
        # checkpoint.
        self._durable: dict[str, dict[str, int]] = {}
        self._applied_since_checkpoint = 0
        self._checkpoints_written = 0
        # -- uplink (federation trees) --
        if uplink_every < 0:
            raise ValueError("uplink_every must be non-negative")
        self._uplink: SiteClient | None = None
        self._uplink_every = uplink_every
        self._applied_since_uplink = 0
        self._uplink_lock = asyncio.Lock()
        self._uplink_tasks: set[asyncio.Task] = set()
        if parent_port is not None:
            site = uplink_site
            if site is None:
                site = StreamSite(
                    uplink_id or f"leaf-{uuid.uuid4().hex[:8]}",
                    self.coordinator.spec,
                    engine=self.coordinator,
                )
            self._uplink = SiteClient(
                site=site,
                host=parent_host,
                port=parent_port,
                role="uplink",
                max_frame_bytes=max_frame_bytes,
                **(uplink_options or {}),
            )
        elif uplink_site is not None or uplink_id is not None:
            raise ValueError("uplink_id/uplink_site need a parent_port")
        # -- serving front end (query sessions) --
        self._query_server = None
        if query_port is not None:
            # Imported lazily: serving builds on this module's protocol
            # but the ingest path must not depend on the serving layer.
            from repro.streams.serving import QueryServer

            self._query_server = QueryServer(
                self.coordinator,
                host=host,
                port=query_port,
                **(query_options or {}),
            )
        elif query_options is not None:
            raise ValueError("query_options need a query_port")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def restore(
        cls,
        checkpoint_dir: str | pathlib.Path,
        *,
        engine_factory=None,
        **kwargs,
    ) -> "CoordinatorServer":
        """Rebuild a server from a checkpoint written by a previous run.

        The merged synopses come back through
        :func:`~repro.streams.checkpoint.restore_engine`; the per-site
        applied sequences come from the checkpoint's extra metadata, so
        reconnecting sites are greeted with exactly the sequence the
        restored state covers and re-ship everything newer.

        ``engine_factory`` rebuilds the fold target (a sharded or flat
        checkpoint restores into either — linearity makes the merged
        families placement-free).  When the checkpoint carries uplink
        state, the restored server keeps the same uplink incarnation,
        sequence counter, baselines, and retained exports, so the parent
        coordinator sees an unbroken peer: retained exports re-ship
        bit-identically and nothing is lost or double-applied.  Pass the
        same ``parent_port`` (and friends) as the original run.

        A checkpoint written by a *windowed* fold engine restores into
        that engine directly — the engine
        :func:`~repro.streams.checkpoint.restore_engine` rebuilt (rings
        included) becomes the coordinator's fold target, so windowed
        queries survive the restart.  ``engine_factory`` cannot be
        combined with a windowed checkpoint: the factory's engine would
        start with empty rings, silently dropping in-window state, so
        that combination raises :class:`ValueError` instead.
        """
        replay = restore_engine(checkpoint_dir)
        if replay.is_windowed:
            if engine_factory is not None:
                raise ValueError(
                    "cannot restore a windowed checkpoint into a "
                    "factory-built fold engine (its window rings would "
                    "start empty); omit engine_factory"
                )
            coordinator = Coordinator(replay.spec, engine=replay)
        elif engine_factory is None:
            coordinator = Coordinator(replay.spec)
            for name, family in replay.families().items():
                coordinator.adopt_family(name, family)
        else:
            fold = engine_factory(replay.spec)
            fold.mark_replayed(replay.updates_processed)
            coordinator = Coordinator(replay.spec, engine=fold)
            for name, family in replay.families().items():
                coordinator.adopt_family(name, family)
        extra = read_checkpoint_extra(checkpoint_dir)
        sequences = extra.get(_SITE_SEQUENCES_KEY, {})
        for site_id, history in sequences.items():
            for incarnation, sequence in history.items():
                coordinator.set_applied_sequence(
                    str(site_id), str(incarnation), int(sequence)
                )
        uplink_state = extra.get(_UPLINK_KEY)
        if uplink_state and kwargs.get("parent_port") is not None:
            kwargs = dict(kwargs)
            kwargs["uplink_site"] = StreamSite.from_state(
                uplink_state, coordinator.spec, engine=coordinator
            )
            kwargs.pop("uplink_id", None)
        server = cls(
            coordinator=coordinator, checkpoint_dir=checkpoint_dir, **kwargs
        )
        server._durable = {
            str(site_id): {
                str(incarnation): int(sequence)
                for incarnation, sequence in history.items()
            }
            for site_id, history in sequences.items()
        }
        return server

    async def start(self) -> None:
        """Bind and start accepting site connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._query_server is not None:
            await self._query_server.start()

    async def stop(self) -> None:
        """Stop accepting, drop live connections, and close the server.

        The uplink connection is closed too; its retained (unacked)
        exports stay on the site object — and, with checkpointing, in
        the checkpoint — for the next life to re-sync.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            for task in list(self._handlers):
                task.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers, return_exceptions=True)
            self._handlers.clear()
        for task in list(self._uplink_tasks):
            task.cancel()
        if self._uplink_tasks:
            await asyncio.gather(*self._uplink_tasks, return_exceptions=True)
        self._uplink_tasks.clear()
        if self._uplink is not None:
            await self._uplink.close()
        if self._query_server is not None:
            await self._query_server.stop()

    async def __aenter__(self) -> "CoordinatorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        return self._port

    @property
    def query_server(self):
        """The mounted :class:`~repro.streams.serving.QueryServer`
        (``None`` unless constructed with ``query_port=``)."""
        return self._query_server

    @property
    def query_port(self) -> int | None:
        """The serving front end's bound port (``None`` when unmounted)."""
        if self._query_server is None:
            return None
        return self._query_server.port

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, TransportStats]:
        """Per-site transport counters (point-in-time copies)."""
        return {
            site_id: stats.snapshot() for site_id, stats in self._stats.items()
        }

    @property
    def uplink(self) -> SiteClient | None:
        """The uplink client to the parent coordinator (``None`` at the
        tree root)."""
        return self._uplink

    def uplink_stats(self) -> TransportStats | None:
        """Transport counters of the uplink hop (``None`` at the root)."""
        if self._uplink is None:
            return None
        return self._uplink.stats.snapshot()

    def transport_rollup(self) -> TransportStats:
        """One summed row over every connected child plus the uplink hop
        (for shutdown summaries and tree-wide dashboards)."""
        rows = list(self._stats.values())
        if self._uplink is not None:
            rows.append(self._uplink.stats)
        return rollup_transport_stats(rows)

    @property
    def total_deltas_applied(self) -> int:
        return self.coordinator.sites_collected

    @property
    def checkpoints_written(self) -> int:
        return self._checkpoints_written

    # -- queries (pass-through) -------------------------------------------

    def query(self, expression, epsilon: float = 0.1, window=None):
        return self.coordinator.query(expression, epsilon, window=window)

    def query_union(self, stream_names, epsilon: float = 0.1, window=None):
        return self.coordinator.query_union(
            stream_names, epsilon, window=window
        )

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> None:
        """Write the fold state plus the per-site sequence map now.

        With an uplink configured, a fresh uplink export is cut *first*
        and the uplink's full state (incarnation, sequence counter,
        baselines, retained exports) is persisted in the same manifest.
        That ordering is the tree-consistency invariant: the parent can
        only ever receive exports that this checkpoint (or an earlier
        one) can reproduce bit-identically, so a restored leaf never
        diverges from what its parent already folded.
        """
        if self._checkpoint_dir is None:
            raise ValueError("no checkpoint_dir configured")
        extra: dict = {_SITE_SEQUENCES_KEY: self.coordinator.site_sequences()}
        if self._uplink is not None:
            self._uplink.site.export()
            extra[_UPLINK_KEY] = self._uplink.site.to_state()
        engine = self.coordinator.fold_engine
        if engine is not None and hasattr(engine, "num_shards"):
            checkpoint_sharded_engine(engine, self._checkpoint_dir, extra=extra)
        else:
            checkpoint_engine(
                self.coordinator.to_engine(), self._checkpoint_dir, extra=extra
            )
        self._durable = {
            site: dict(history)
            for site, history in extra[_SITE_SEQUENCES_KEY].items()
        }
        self._applied_since_checkpoint = 0
        self._checkpoints_written += 1
        for stats in self._stats.values():
            stats.checkpoints_written += 1
        if self._uplink is not None:
            self._uplink.stats.checkpoints_written += 1

    # -- uplink (federation trees) ----------------------------------------

    async def ship_upstream(self) -> None:
        """Cut an aggregated export and push the retained backlog to the
        parent coordinator.

        With checkpointing enabled the cut happens inside
        :meth:`checkpoint` (see its invariant); without it the export is
        cut directly — a restart then starts a fresh incarnation, which
        keeps parent bookkeeping consistent without any durable state.
        Raises :class:`~repro.streams.net.site.SiteConnectionError` when
        the parent stays unreachable; the exports stay retained for the
        next attempt.
        """
        if self._uplink is None:
            raise ValueError("no parent coordinator configured")
        async with self._uplink_lock:
            if self._checkpoint_dir is not None:
                self.checkpoint()
            else:
                self._uplink.site.export()
            await self._uplink.flush_retained()

    def _maybe_ship_upstream(self) -> None:
        if self._uplink is None or self._uplink_every == 0:
            return
        if self._applied_since_uplink < self._uplink_every:
            return
        self._applied_since_uplink = 0
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:  # applied outside the event loop (tests)
            return
        task = loop.create_task(self._ship_upstream_quietly())
        self._uplink_tasks.add(task)
        task.add_done_callback(self._uplink_tasks.discard)

    async def _ship_upstream_quietly(self) -> None:
        try:
            await self.ship_upstream()
        except (SiteConnectionError, protocol.ProtocolError, OSError):
            # The parent is down or misbehaving; retained exports
            # re-ship on the next scheduled or explicit attempt.
            pass

    def _durable_for(self, site_id: str, incarnation: str) -> int:
        if self._checkpoint_dir is None:
            # Nothing to restart from, so applied == durable: sites may
            # prune immediately instead of retaining forever.
            return self.coordinator.applied_sequence(site_id, incarnation)
        return self._durable.get(site_id, {}).get(incarnation, 0)

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_dir is None or self._checkpoint_every == 0:
            return
        if self._applied_since_checkpoint >= self._checkpoint_every:
            self.checkpoint()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            await self._serve_site(reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            # Dropped connection (possibly mid-frame): nothing was
            # applied for the partial message — frames are decoded in
            # full before any state changes — so the site simply
            # reconnects and re-syncs.
            pass
        except (protocol.ProtocolError, codec.CodecError) as exc:
            # CodecError: a malformed v2 payload is a protocol violation
            # detected at fold time (decoding happens inside collect).
            await self._send_error(writer, str(exc))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: a task cancelled mid-serve (server
                # shutdown) re-raises at this await; the socket is
                # already closing and the task ends right after, so
                # swallowing it here only silences loop-callback noise.
                pass

    async def _serve_site(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        header, _, nbytes = await protocol.read_message(
            reader, self._max_frame_bytes
        )
        if header.get("type") != "hello":
            raise protocol.ProtocolError(
                f"expected hello, got {header.get('type')!r}"
            )
        if header.get("version") not in protocol.SUPPORTED_VERSIONS:
            raise protocol.ProtocolError(
                f"protocol version {header.get('version')!r} not supported "
                f"(this server speaks {protocol.SUPPORTED_VERSIONS})"
            )
        site_id = header.get("site_id")
        if not isinstance(site_id, str) or not site_id:
            raise protocol.ProtocolError("hello carries no usable site_id")
        incarnation = header.get("incarnation")
        if not isinstance(incarnation, str) or not incarnation:
            raise protocol.ProtocolError("hello carries no usable incarnation")
        role = header.get("role", "site")
        if role not in protocol.ROLES:
            raise protocol.ProtocolError(
                f"hello role {role!r} not one of {protocol.ROLES}"
            )
        if role == "query":
            # A query client dialled the ingest port.  Fail loudly with
            # a pointer instead of waiting forever for deltas that will
            # never come.
            where = (
                f"the query port ({self._query_server.port})"
                if self._query_server is not None
                else "a coordinator started with query_port="
            )
            raise protocol.ProtocolError(
                f"this is the delta-ingest port; query sessions connect to {where}"
            )
        # -- v2 negotiation.  A v1 hello carries neither field; the
        # welcome then answers without them and the session stays dense
        # and unbatched — no flag day, old peers never see v2 framing.
        offered = header.get("encodings")
        session_encodings = codec.DENSE_ONLY
        if offered is not None:
            if not isinstance(offered, list) or not all(
                isinstance(name, str) for name in offered
            ):
                raise protocol.ProtocolError(
                    "hello 'encodings' must be a list of strings"
                )
            session_encodings = codec.negotiate_encodings(
                offered, self._encodings
            )
        requested = header.get("features")
        session_features: tuple = ()
        if requested is not None:
            if not isinstance(requested, list) or not all(
                isinstance(name, str) for name in requested
            ):
                raise protocol.ProtocolError(
                    "hello 'features' must be a list of strings"
                )
            session_features = tuple(
                name for name in protocol.FEATURES if name in requested
            )
        stats = self._stats.setdefault(
            site_id, TransportStats(site_id=site_id, role=role)
        )
        stats.role = role
        stats.frames_received += 1
        stats.bytes_received += nbytes
        stats.count_message("hello", nbytes)
        applied = self.coordinator.applied_sequence(site_id, incarnation)
        nbytes = await protocol.write_message(
            writer,
            protocol.welcome_message(
                applied,
                self._durable_for(site_id, incarnation),
                encodings=(
                    list(session_encodings) if offered is not None else None
                ),
                features=(
                    list(session_features) if requested is not None else None
                ),
            ),
        )
        stats.bytes_sent += nbytes
        stats.frames_sent += 1
        stats.count_message("welcome", nbytes)
        stats.resyncs += 1

        while True:
            header, blobs, nbytes = await protocol.read_message(
                reader, self._max_frame_bytes
            )
            stats.frames_received += 1
            stats.bytes_received += nbytes
            stats.count_message(str(header.get("type")), nbytes)
            if header.get("type") != "delta":
                raise protocol.ProtocolError(
                    f"expected delta, got {header.get('type')!r}"
                )
            export = protocol.export_from_message(header, blobs)
            if export.site_id != site_id or export.incarnation != incarnation:
                raise protocol.ProtocolError(
                    f"delta for site {export.site_id!r} "
                    f"(incarnation {export.incarnation!r}) on a connection "
                    f"that said hello as {site_id!r} ({incarnation!r})"
                )
            unexpected = sorted(
                set(export.encodings.values()) - set(session_encodings)
            )
            if unexpected:
                raise protocol.ProtocolError(
                    f"delta uses encoding(s) {unexpected} the session did "
                    f"not negotiate (agreed: {list(session_encodings)})"
                )
            if export.batch_size > 1 and "batch" not in session_features:
                raise protocol.ProtocolError(
                    "delta covers a sequence range but the session did not "
                    "negotiate the 'batch' feature"
                )
            self._apply(export, stats)
            nbytes = await protocol.write_message(
                writer,
                protocol.ack_message(
                    self.coordinator.applied_sequence(site_id, incarnation),
                    self._durable_for(site_id, incarnation),
                ),
            )
            stats.bytes_sent += nbytes
            stats.frames_sent += 1
            stats.count_message("ack", nbytes)

    def _apply(self, export: DeltaExport, stats: TransportStats) -> None:
        from repro.errors import DeltaSequenceError

        try:
            applied = self.coordinator.collect(export)
        except DeltaSequenceError:
            # A gap (or a batch straddling the applied prefix): the ack
            # below carries the coordinator's actual applied sequence
            # and the site rewinds — and re-batches — from there.
            return
        if applied:
            stats.deltas_applied += export.batch_size
            stats.exports_coalesced += export.batch_size - 1
            stats.payload_bytes_wire += export.payload_bytes()
            stats.payload_bytes_dense += (
                len(export.payloads)
                * self.coordinator.spec.counter_payload_bytes
            )
            self._applied_since_checkpoint += export.batch_size
            self._applied_since_uplink += export.batch_size
            self._maybe_checkpoint()
            self._maybe_ship_upstream()
        else:
            stats.duplicates_dropped += 1

    async def _send_error(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        try:
            await protocol.write_message(
                writer, protocol.error_message(message)
            )
        except (ConnectionError, OSError):
            pass
