"""Unit tests for the exact reference store."""

from __future__ import annotations

import pytest

from repro.errors import IllegalDeletionError
from repro.streams.exact import ExactStreamStore
from repro.streams.updates import Update, deletions, insertions


class TestMaintenance:
    def test_insert_and_count(self):
        store = ExactStreamStore()
        store.apply(Update("A", 1, 1))
        store.apply(Update("A", 2, 3))
        assert store.distinct_count("A") == 2
        assert store.total_items("A") == 4

    def test_frequency(self):
        store = ExactStreamStore()
        store.apply(Update("A", 9, 5))
        assert store.frequency("A", 9) == 5
        assert store.frequency("A", 10) == 0

    def test_delete_to_zero_removes_element(self):
        store = ExactStreamStore()
        store.apply(Update("A", 1, 2))
        store.apply(Update("A", 1, -2))
        assert store.distinct_count("A") == 0
        assert store.frequency("A", 1) == 0

    def test_partial_delete_keeps_element(self):
        store = ExactStreamStore()
        store.apply(Update("A", 1, 3))
        store.apply(Update("A", 1, -2))
        assert store.distinct_count("A") == 1
        assert store.frequency("A", 1) == 1

    def test_illegal_deletion_rejected(self):
        store = ExactStreamStore()
        store.apply(Update("A", 1, 1))
        with pytest.raises(IllegalDeletionError):
            store.apply(Update("A", 1, -2))

    def test_deletion_of_absent_element_rejected(self):
        store = ExactStreamStore()
        with pytest.raises(IllegalDeletionError):
            store.apply(Update("A", 99, -1))

    def test_apply_many(self):
        store = ExactStreamStore()
        store.apply_many(insertions("A", [1, 2, 3]) + deletions("A", [2]))
        assert store.distinct_set("A") == {1, 3}

    def test_streams_listing(self):
        store = ExactStreamStore()
        store.apply(Update("B", 1, 1))
        store.apply(Update("A", 1, 1))
        assert store.streams() == ["A", "B"]


class TestCardinality:
    def _store(self) -> ExactStreamStore:
        store = ExactStreamStore()
        store.apply_many(insertions("A", [1, 2, 3, 4]))
        store.apply_many(insertions("B", [3, 4, 5]))
        store.apply_many(insertions("C", [1, 4, 5, 6]))
        return store

    def test_binary_expressions(self):
        store = self._store()
        assert store.cardinality("A & B") == 2
        assert store.cardinality("A - B") == 2
        assert store.cardinality("A | B") == 5

    def test_compound_expression(self):
        assert self._store().cardinality("(A - B) & C") == 1

    def test_expression_tree_input(self):
        from repro.expr import streams

        A, B = streams("A", "B")
        assert self._store().cardinality(A & B) == 2

    def test_deletions_change_cardinality(self):
        store = self._store()
        store.apply(Update("B", 3, -1))
        assert store.cardinality("A & B") == 1

    def test_unseen_stream_is_empty(self):
        store = self._store()
        assert store.cardinality("A & Z") == 0
