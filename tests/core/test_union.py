"""Unit tests for the set-union estimator (Section 3.3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.errors import IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=24, num_second_level=8, independence=8)


def family_with(elements, num_sketches=128, seed=0):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    family = spec.build()
    family.update_batch(np.asarray(elements, dtype=np.uint64))
    return family


class TestBasicBehaviour:
    def test_empty_streams_estimate_zero(self):
        a = family_with([])
        b = family_with([])
        estimate = estimate_union([a, b])
        assert estimate.value == 0.0

    def test_single_stream(self):
        rng = np.random.default_rng(40)
        elements = rng.choice(2**24, size=5000, replace=False)
        family = family_with(elements, num_sketches=256)
        estimate = estimate_union([family])
        assert abs(estimate.value - 5000) / 5000 < 0.25

    def test_disjoint_streams_add(self):
        rng = np.random.default_rng(41)
        pool = rng.choice(2**24, size=8000, replace=False)
        a = family_with(pool[:4000], num_sketches=256)
        b = family_with(pool[4000:], num_sketches=256)
        estimate = estimate_union([a, b])
        assert abs(estimate.value - 8000) / 8000 < 0.25

    def test_identical_streams_do_not_double_count(self):
        rng = np.random.default_rng(42)
        pool = rng.choice(2**24, size=4000, replace=False)
        a = family_with(pool, num_sketches=256)
        b = family_with(pool, num_sketches=256)
        estimate = estimate_union([a, b])
        assert abs(estimate.value - 4000) / 4000 < 0.25

    def test_three_way_union(self):
        rng = np.random.default_rng(43)
        pool = rng.choice(2**24, size=6000, replace=False)
        families = [
            family_with(pool[:3000], num_sketches=256),
            family_with(pool[2000:5000], num_sketches=256),
            family_with(pool[4000:], num_sketches=256),
        ]
        estimate = estimate_union(families)
        assert abs(estimate.value - 6000) / 6000 < 0.25

    def test_multiplicities_do_not_matter(self):
        rng = np.random.default_rng(44)
        pool = rng.choice(2**24, size=3000, replace=False).astype(np.uint64)
        plain = family_with(pool, num_sketches=256)
        heavy_spec = SketchSpec(num_sketches=256, shape=SHAPE, seed=0)
        heavy = heavy_spec.build()
        heavy.update_batch(pool, np.full(pool.size, 9))
        assert (
            abs(estimate_union([heavy]).value - estimate_union([plain]).value) < 1e-9
        )

    def test_deletions_reduce_union(self):
        rng = np.random.default_rng(45)
        pool = rng.choice(2**24, size=4000, replace=False).astype(np.uint64)
        family = family_with(pool, num_sketches=256)
        before = estimate_union([family]).value
        family.update_batch(pool[:2000], np.full(2000, -1))
        after = estimate_union([family]).value
        assert abs(after - 2000) / 2000 < 0.3
        assert after < before


class TestDiagnostics:
    def test_result_fields(self):
        rng = np.random.default_rng(46)
        family = family_with(rng.choice(2**24, size=1000, replace=False))
        estimate = estimate_union([family], epsilon=0.2)
        assert estimate.num_sketches == 128
        assert 0.0 <= estimate.non_empty_fraction <= 1.0
        assert 0 <= estimate.level < 64
        assert float(estimate) == estimate.value

    def test_level_grows_with_cardinality(self):
        rng = np.random.default_rng(47)
        small = family_with(rng.choice(2**24, size=100, replace=False), 128)
        large = family_with(
            rng.choice(2**24, size=100_00, replace=False), 128
        )
        assert (
            estimate_union([large]).level > estimate_union([small]).level
        )

    def test_threshold_respected(self):
        """The scan stops at the first level at or below (1+eps)r/8."""
        rng = np.random.default_rng(48)
        family = family_with(rng.choice(2**24, size=5000, replace=False), 128)
        epsilon = 0.1
        estimate = estimate_union([family], epsilon)
        threshold = (1 + epsilon) * 128 / 8
        count = estimate.non_empty_fraction * 128
        assert count <= threshold


class TestValidation:
    def test_bad_epsilon(self):
        family = family_with([1, 2, 3])
        for epsilon in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                estimate_union([family], epsilon)

    def test_mismatched_specs(self):
        a = family_with([1], seed=1)
        b = family_with([1], seed=2)
        with pytest.raises(IncompatibleSketchesError):
            estimate_union([a, b])

    def test_no_families(self):
        with pytest.raises(ValueError):
            estimate_union([])


class TestSaturation:
    """Regression: a synopsis whose every level stays above the stopping
    threshold used to hit ``math.log(0.0)`` and raise ``ValueError``."""

    def saturated_family(self, num_sketches=16):
        spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=3)
        family = spec.build()
        # Every bucket of every sketch non-empty at every level: the scan
        # can never stop early and ends on the last level with
        # non_empty_fraction == 1.0.
        family.counters[:, :, 0, 0] = 1
        family.refresh_aggregates()  # direct counter writes bypass bookkeeping
        return family

    def test_saturated_synopsis_returns_finite_estimate(self):
        estimate = estimate_union([self.saturated_family()])
        assert math.isfinite(estimate.value)
        assert estimate.value > 0

    def test_saturated_flag_set(self):
        estimate = estimate_union([self.saturated_family()])
        assert estimate.saturated
        assert estimate.non_empty_fraction == 1.0
        assert estimate.level == SHAPE.num_levels - 1

    def test_saturation_floor_value(self):
        """The clamp evaluates at (r - 1/2)/r, i.e. about R·ln(2r)."""
        num_sketches = 16
        estimate = estimate_union([self.saturated_family(num_sketches)])
        scale = float(1 << SHAPE.num_levels)  # R at the last level
        expected = math.log(0.5 / num_sketches) / math.log1p(-1.0 / scale)
        assert estimate.value == pytest.approx(expected)

    def test_normal_estimates_not_flagged(self):
        rng = np.random.default_rng(49)
        family = family_with(rng.choice(2**24, size=3000, replace=False), 128)
        estimate = estimate_union([family])
        assert not estimate.saturated

    def test_full_low_levels_alone_do_not_saturate(self):
        """Only an end-of-scan full level is saturation; a dense stream
        whose counts eventually drop below threshold is normal."""
        rng = np.random.default_rng(50)
        family = family_with(
            rng.choice(2**24, size=50_000, replace=False), 64
        )
        estimate = estimate_union([family])
        assert not estimate.saturated
        assert math.isfinite(estimate.value)


class TestAccuracyImprovesWithSketches:
    def test_more_sketches_reduce_error_in_aggregate(self):
        """Median error over several trials should not grow when the number
        of sketches is quadrupled."""
        errors_small, errors_large = [], []
        for seed in range(8):
            rng = np.random.default_rng(100 + seed)
            pool = rng.choice(2**24, size=4096, replace=False)
            small = family_with(pool, num_sketches=32, seed=seed)
            large = family_with(pool, num_sketches=256, seed=seed)
            errors_small.append(abs(estimate_union([small]).value - 4096) / 4096)
            errors_large.append(abs(estimate_union([large]).value - 4096) / 4096)
        assert float(np.median(errors_large)) <= float(np.median(errors_small)) + 0.05
