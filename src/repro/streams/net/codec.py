"""Wire-format v2 payload codec: sparse counter deltas, varint-packed.

A delta export's counter payload is the serialised diff of a
:class:`~repro.core.family.SketchFamily` since the site's previous
export.  Between exports only the counters touched by the exported
window's elements change, so the diff slab is *mostly zeros* — yet the
v1 wire format ships the whole dense ``int64`` slab (~4 MiB per stream
at ``r=512, s=16``) no matter how small the touch set was.  This module
is the fix: a compact encoding of exactly the non-zero cells.

Encodings
---------

``dense``
    The v1 payload, byte for byte: the little-endian ``int64`` counter
    slab from :meth:`~repro.core.family.SketchFamily.to_bytes`.
``sparse``
    The non-zero cells as ``(flat_index, value)`` pairs::

        u32 count | count varints (index gaps) | count varints (zigzag values)

    Flat indices are strictly increasing, so they are stored as LEB128
    varint *gaps*: the first index absolute, every later one as
    ``index - previous - 1``.  Values are zigzag-mapped (delta counters
    can be negative) then varint-packed.  A handful of touched counters
    costs a couple of bytes each instead of its share of the slab.
``dense+zlib`` / ``sparse+zlib``
    The corresponding body wrapped in one zlib stream.  Decompression is
    bounded (:func:`decode_dense` refuses payloads that inflate past the
    expected slab size), so a hostile peer cannot zip-bomb a
    coordinator.

:func:`encode_delta` picks *per payload by measured size*: it encodes
the sparse form when allowed, keeps whichever base form is smaller, and
keeps the zlib layer only when it actually shrinks the winner.  Every
choice round-trips byte-exactly back to the dense slab
(:func:`decode_dense`), so folding a decoded delta is bit-identical to
folding the v1 payload.

Which encodings a connection may use is *negotiated* in the
hello/welcome handshake (see :mod:`repro.streams.net.protocol`): the
site advertises what it can produce, the coordinator answers with the
allowed subset in its own preference order, and each delta blob is
tagged with the encoding it actually used.  A v1 peer advertises
nothing and transparently gets ``dense`` both directions.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "WIRE_ENCODINGS",
    "PREFERRED_ENCODINGS",
    "DENSE_ONLY",
    "CodecError",
    "negotiate_encodings",
    "encode_delta",
    "decode_dense",
    "decode_cells",
    "encode_sparse_cells",
    "decode_sparse_cells",
]

#: Every encoding this build can decode (the superset any negotiation
#: draws from).
WIRE_ENCODINGS = ("dense", "sparse", "dense+zlib", "sparse+zlib")

#: Default advertisement/pick order: smallest expected wire size first.
PREFERRED_ENCODINGS = ("sparse+zlib", "sparse", "dense+zlib", "dense")

#: The v1 behaviour, as an explicit negotiation outcome.
DENSE_ONLY = ("dense",)

_COUNT = struct.Struct(">I")

#: A varint for a 64-bit value needs at most 10 bytes (ceil(64/7)).
_MAX_VARINT_BYTES = 10


class CodecError(ReproError, ValueError):
    """A payload violated the sparse wire encoding."""


def negotiate_encodings(
    offered: Sequence[str], supported: Sequence[str] = PREFERRED_ENCODINGS
) -> tuple[str, ...]:
    """The coordinator's pick: offered ∩ supported, in *supported* order.

    ``dense`` is always part of the outcome — it is the mandatory
    fallback every peer can produce and decode, which is what makes the
    negotiation flag-day free.
    """
    offered_set = set(offered) | {"dense"}
    chosen = [name for name in supported if name in offered_set]
    if "dense" not in chosen:
        chosen.append("dense")
    return tuple(chosen)


# -- varint packing (vectorised) ----------------------------------------------


def _varint_encode(values: np.ndarray) -> bytes:
    """LEB128-pack a ``uint64`` array (concatenated, vectorised)."""
    n = int(values.size)
    if n == 0:
        return b""
    values = values.astype(np.uint64, copy=True)
    out = np.zeros((n, _MAX_VARINT_BYTES), dtype=np.uint8)
    nbytes = np.ones(n, dtype=np.int64)
    width = 1
    for i in range(_MAX_VARINT_BYTES):
        byte = (values & np.uint64(0x7F)).astype(np.uint8)
        values >>= np.uint64(7)
        more = values != 0
        out[:, i] = byte | (more.astype(np.uint8) << np.uint8(7))
        if not more.any():
            width = i + 1
            break
        nbytes[more] = i + 2
    else:  # pragma: no cover - unreachable: 10 groups exhaust 64 bits
        width = _MAX_VARINT_BYTES
    mask = np.arange(width)[None, :] < nbytes[:, None]
    return out[:, :width][mask].tobytes()


def _varint_decode(data: np.ndarray, expected: int) -> np.ndarray:
    """Decode exactly ``expected`` concatenated LEB128 varints.

    ``data`` is the raw ``uint8`` byte stream; anything malformed — a
    truncated trailing varint, a run longer than 10 bytes, or a 10-byte
    run whose final group overflows 64 bits — raises :class:`CodecError`.
    """
    if expected == 0:
        if data.size:
            raise CodecError("varint block has trailing bytes")
        return np.zeros(0, dtype=np.uint64)
    if data.size == 0:
        raise CodecError("varint block is empty")
    is_last = (data & 0x80) == 0
    ends = np.flatnonzero(is_last)
    if ends.size != expected or ends[-1] != data.size - 1:
        raise CodecError(
            f"varint block holds {ends.size} values, expected {expected}"
        )
    starts = np.empty(expected, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > _MAX_VARINT_BYTES:
        raise CodecError("varint longer than 10 bytes")
    # A 10-byte varint's final 7-bit group may only carry the top bit.
    ten = starts[lengths == _MAX_VARINT_BYTES]
    if ten.size and int(data[ten + 9].max()) > 1:
        raise CodecError("varint overflows 64 bits")
    value_id = np.zeros(data.size, dtype=np.int64)
    value_id[starts[1:]] = 1
    np.cumsum(value_id, out=value_id)
    pos = (np.arange(data.size) - starts[value_id]).astype(np.uint64)
    contrib = (data & 0x7F).astype(np.uint64) << (np.uint64(7) * pos)
    values = np.zeros(expected, dtype=np.uint64)
    np.bitwise_or.at(values, value_id, contrib)
    return values


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map ``int64`` to ``uint64`` so small magnitudes stay small."""
    unsigned = values.astype(np.uint64)
    sign = (values >> np.int64(63)).astype(np.uint64)
    return (unsigned << np.uint64(1)) ^ sign


def _unzigzag(values: np.ndarray) -> np.ndarray:
    decoded = (values >> np.uint64(1)) ^ (
        np.uint64(0) - (values & np.uint64(1))
    )
    return decoded.view(np.int64)


# -- sparse body --------------------------------------------------------------


def encode_sparse_cells(indices: np.ndarray, values: np.ndarray) -> bytes:
    """Pack strictly-increasing flat ``indices`` and ``int64`` ``values``."""
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if indices.shape != values.shape:
        raise ValueError("indices and values must align")
    gaps = indices.astype(np.uint64, copy=True)
    if indices.size > 1:
        gaps[1:] = (np.diff(indices) - 1).astype(np.uint64)
    return b"".join(
        [
            _COUNT.pack(indices.size),
            _varint_encode(gaps),
            _varint_encode(_zigzag(values)),
        ]
    )


def decode_sparse_cells(
    payload, num_cells: int
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_sparse_cells`; validates strictly.

    Returns ``(indices, values)`` with indices strictly increasing and
    below ``num_cells``.  Raises :class:`CodecError` on any malformation
    — the coordinator treats that like any other protocol violation.
    """
    payload = memoryview(payload)
    if len(payload) < _COUNT.size:
        raise CodecError("sparse payload too short for its cell count")
    (count,) = _COUNT.unpack_from(payload)
    if count > num_cells:
        raise CodecError(
            f"sparse payload claims {count} cells, slab has {num_cells}"
        )
    data = np.frombuffer(payload, dtype=np.uint8, offset=_COUNT.size)
    packed = _varint_decode(data, 2 * count)
    gaps, zigzagged = packed[:count], packed[count:]
    # Bound the gaps BEFORE any arithmetic: every reconstructed index
    # must land below ``num_cells``, so no single gap may reach it.
    # Checking afterwards would not do — a hostile 2^64-1 gap wraps the
    # ``+ 1`` below back to a 0 step, producing duplicate indices whose
    # last element still satisfies the final bound.
    if count and int(gaps.max()) >= num_cells:
        raise CodecError("sparse payload indices exceed the counter slab")
    steps = gaps.copy()
    if count > 1:
        steps[1:] += np.uint64(1)
    indices = np.cumsum(steps).astype(np.int64)
    if count and int(indices[-1]) >= num_cells:
        raise CodecError("sparse payload indices exceed the counter slab")
    # Belt and braces: the gap bound makes wraparound impossible for any
    # representable slab, so reconstructed indices are strictly
    # increasing by construction — verify rather than assume.
    if count > 1 and not bool(np.all(np.diff(indices) > 0)):
        raise CodecError("sparse payload indices are not strictly increasing")
    return indices, _unzigzag(zigzagged)


# -- payload-level encode/decode ----------------------------------------------


def _sparse_body_from_dense(payload) -> bytes:
    counters = np.frombuffer(payload, dtype="<i8")
    indices = np.flatnonzero(counters)
    return encode_sparse_cells(indices, counters[indices])


def encode_delta(
    payload, allowed: Sequence[str], *, compress_level: int = 6
) -> tuple[str, bytes]:
    """Encode one dense counter payload; returns ``(encoding, blob)``.

    Picks by *measured* size among ``allowed``: the sparse body is built
    when any sparse variant is allowed and kept when smaller than the
    dense slab; the zlib layer is applied to the winning base form and
    kept only when it shrinks it further.  ``dense`` is always a valid
    fallback, so the result is never larger than the v1 payload by more
    than nothing — worst case it *is* the v1 payload.
    """
    dense = payload if isinstance(payload, bytes) else bytes(payload)
    allowed_set = set(allowed) | {"dense"}
    bases = [("dense", dense)]
    if {"sparse", "sparse+zlib"} & allowed_set:
        bases.append(("sparse", _sparse_body_from_dense(dense)))
    # The smaller base form wins (dense wins ties); zlib is tried on the
    # winner only, so one compress call bounds the CPU cost per payload.
    name, body = min(bases, key=lambda base: len(base[1]))
    best = (name, body) if name in allowed_set else None
    if f"{name}+zlib" in allowed_set:
        zipped = zlib.compress(bytes(body), compress_level)
        if best is None or len(zipped) < len(best[1]):
            best = (f"{name}+zlib", zipped)
    if best is None or len(best[1]) >= len(dense):
        return "dense", dense
    return best[0], bytes(best[1])


def _unwrap(blob, encoding: str, max_body: int) -> tuple[str, bytes]:
    """Strip the optional zlib layer; returns ``(base_encoding, body)``."""
    if encoding not in WIRE_ENCODINGS:
        raise CodecError(f"unknown payload encoding {encoding!r}")
    base, _, layer = encoding.partition("+")
    if not layer:
        return base, blob
    inflater = zlib.decompressobj()
    try:
        body = inflater.decompress(bytes(blob), max_body)
    except zlib.error as exc:
        raise CodecError(f"corrupt zlib payload: {exc}") from exc
    if inflater.unconsumed_tail or not inflater.eof:
        raise CodecError("zlib payload inflates past the expected slab size")
    return base, body


def decode_cells(
    blob, encoding: str, num_cells: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """The sparse fold fast path: ``(indices, values)``, or ``None``.

    ``None`` means the encoding is dense-based — decode through
    :func:`decode_dense` and the ordinary slab path instead.  The sparse
    ``+zlib`` bound allows bodies up to a modest multiple of the dense
    slab, which any well-formed sparse body satisfies.
    """
    base, body = _unwrap(blob, encoding, 3 * 8 * num_cells + _COUNT.size)
    if base == "dense":
        return None
    return decode_sparse_cells(body, num_cells)


def decode_dense(blob, encoding: str, num_cells: int) -> bytes:
    """Decode any wire encoding back to the v1 dense slab, byte-exactly."""
    expected = 8 * num_cells
    base, body = _unwrap(blob, encoding, max(expected, 3 * expected // 2))
    if base == "dense":
        if len(body) != expected:
            raise CodecError(
                f"dense payload is {len(body)} bytes, expected {expected}"
            )
        return bytes(body)
    indices, values = decode_sparse_cells(body, num_cells)
    counters = np.zeros(num_cells, dtype="<i8")
    counters[indices] = values
    return counters.tobytes()
