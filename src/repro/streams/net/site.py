"""Asyncio site client: observes locally, ships delta exports, survives
coordinator failures.

:class:`SiteClient` wraps a :class:`~repro.streams.distributed.StreamSite`
with the network shipping loop:

* **connect/send timeouts** — every socket operation runs under
  :func:`asyncio.wait_for`, so a hung coordinator can never block the
  site's event loop indefinitely;
* **bounded exponential backoff with jitter** — failed attempts sleep
  ``min(cap, base * 2**attempt)`` scaled by a random factor in
  ``[0.5, 1.0]`` (jitter avoids reconnect stampedes when many sites lose
  the same coordinator), and give up with
  :class:`SiteConnectionError` after ``max_retries`` attempts;
* **reconnection with re-sync** — every (re)connect performs the
  hello/welcome handshake and re-ships whatever retained exports the
  coordinator has not applied, which makes delivery exactly-once in
  effect: the coordinator drops duplicates by sequence, the site replays
  anything unacknowledged.

Because the site's :meth:`~repro.streams.distributed.StreamSite.export`
is a counter *delta* retained until durably acknowledged, no failure
mode loses or double-counts updates — the invariants live in the data
model, not in transport luck.
"""

from __future__ import annotations

import asyncio
import random

from repro.core.family import SketchSpec
from repro.errors import ReproError
from repro.streams.distributed import (
    DeltaExport,
    StreamSite,
    coalesce_exports,
)
from repro.streams.net import codec, protocol
from repro.streams.stats import TransportStats
from repro.streams.updates import Update

__all__ = ["SiteClient", "SiteConnectionError"]

#: Errors that mean "the transport failed" (retry), as opposed to
#: protocol violations (fatal).  ``asyncio.TimeoutError`` is listed
#: separately because on Python 3.10 it is not an ``OSError``.
_NETWORK_ERRORS = (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError)


class SiteConnectionError(ReproError, ConnectionError):
    """The coordinator stayed unreachable past the retry budget."""


def _window_runs(exports: list[DeltaExport]) -> list[list[DeltaExport]]:
    """Split an ordered export tail into maximal equal-``window_at`` runs."""
    runs: list[list[DeltaExport]] = []
    for export in exports:
        if runs and runs[-1][-1].window_at == export.window_at:
            runs[-1].append(export)
        else:
            runs.append([export])
    return runs


class SiteClient:
    """Ships one site's delta exports to a coordinator over TCP.

    Parameters
    ----------
    site:
        The local observer to ship for; alternatively pass ``site_id``
        and ``spec`` and one is created.
    host, port:
        The coordinator's address.
    connect_timeout, io_timeout:
        Seconds allowed for a connection attempt, and for any single
        send/receive, respectively.
    max_retries:
        Retry budget per delivery (and per :meth:`connect` call).
    backoff_base, backoff_cap:
        Exponential backoff parameters, in seconds.
    rng:
        Source of backoff jitter (a :class:`random.Random`; seedable for
        deterministic tests).
    role:
        The role announced in the hello handshake: ``"site"`` (default,
        a leaf observer) or ``"uplink"`` (a child coordinator
        re-exporting aggregated deltas to its parent in a federation
        tree).
    encodings:
        Wire encodings offered in the hello, preference first (see
        :mod:`repro.streams.net.codec`).  The coordinator answers with
        the subset it accepts; delta payloads then ship under the
        cheapest accepted encoding per blob.  An empty tuple sends a
        v1-shaped hello — no ``encodings`` field at all — and the
        session stays plain dense.
    max_batch:
        Upper bound on retained exports coalesced into one delta frame
        (their counter diffs are summed per stream — linearity — and
        the frame covers the whole sequence range, so one ack covers
        the batch).  Batching engages only when the coordinator's
        welcome confirms the ``"batch"`` feature; ``1`` turns it off.
    """

    def __init__(
        self,
        site: StreamSite | None = None,
        *,
        site_id: str | None = None,
        spec: SketchSpec | None = None,
        host: str = "127.0.0.1",
        port: int,
        connect_timeout: float = 5.0,
        io_timeout: float = 5.0,
        max_retries: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
        role: str = "site",
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        encodings: tuple = codec.PREFERRED_ENCODINGS,
        max_batch: int = 32,
    ) -> None:
        if site is None:
            if site_id is None or spec is None:
                raise ValueError("need a StreamSite, or site_id plus spec")
            site = StreamSite(site_id, spec)
        if role not in protocol.ROLES:
            raise ValueError(
                f"role must be one of {protocol.ROLES}, got {role!r}"
            )
        unknown = sorted(set(encodings) - set(codec.WIRE_ENCODINGS))
        if unknown:
            raise ValueError(
                f"unknown wire encoding(s) {unknown}; "
                f"this build speaks {codec.WIRE_ENCODINGS}"
            )
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.site = site
        self.role = role
        self.offered_encodings = tuple(encodings)
        self.max_batch = max_batch
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._max_frame_bytes = max_frame_bytes
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._ever_connected = False
        # The coordinator's last applied sequence for this site, as
        # learned from the most recent welcome/ack.
        self._applied = 0
        # Negotiated per-session in the hello/welcome handshake; dense
        # and unbatched until (and unless) the coordinator says better.
        self._encodings: tuple = codec.DENSE_ONLY
        self._batching = False
        self.stats = TransportStats(site_id=site.site_id, role=role)

    # -- observing (pass-through) -----------------------------------------

    def observe(self, update: Update, at: float | None = None) -> None:
        self.site.observe(update, at)

    def observe_many(self, updates) -> None:
        self.site.observe_many(updates)

    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def coordinator_applied_sequence(self) -> int:
        """Last sequence the coordinator reported as applied."""
        return self._applied

    @property
    def negotiated_encodings(self) -> tuple:
        """Encodings the current session may ship (dense until welcomed)."""
        return self._encodings

    @property
    def batching_enabled(self) -> bool:
        """Whether the current session coalesces retained exports."""
        return self._batching

    # -- shipping ----------------------------------------------------------

    async def connect(self) -> None:
        """Connect (with retries), handshake, and re-sync retained exports."""
        attempt = 0
        while True:
            try:
                await self._connect_once()
                await self._ship_retained()
                return
            except _NETWORK_ERRORS as exc:
                attempt += 1
                await self._note_failure(attempt, exc)

    async def ship(self) -> DeltaExport:
        """Export the current delta and deliver it (retrying as needed).

        Returns the export that was delivered.  Raises
        :class:`SiteConnectionError` when the coordinator stays
        unreachable for the whole retry budget — the export remains
        retained and a later :meth:`ship`/:meth:`connect` re-syncs it.
        """
        export = self.site.export()
        await self.deliver(export)
        return export

    async def deliver(self, export: DeltaExport) -> None:
        """Deliver one export (and everything retained before it)."""
        await self.flush_retained()

    async def flush_retained(self) -> None:
        """Deliver every retained export, without cutting a new one.

        The uplink drain: a coordinator leaf cuts exports at checkpoint
        time and calls this to push whatever its parent has not applied
        yet.  Retries with backoff like :meth:`deliver`; raises
        :class:`SiteConnectionError` past the retry budget (the exports
        stay retained).
        """
        attempt = 0
        while True:
            try:
                if self._writer is None:
                    await self._connect_once()
                await self._ship_retained()
                # Done when no retained export is still unapplied.
                if not self.site.exports_after(self._applied):
                    return
            except _NETWORK_ERRORS as exc:
                attempt += 1
                await self._note_failure(attempt, exc)

    async def close(self) -> None:
        """Close the connection (retained exports stay for re-sync)."""
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- internals ---------------------------------------------------------

    def _drop_connection(self) -> None:
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()

    async def _note_failure(self, attempt: int, exc: Exception) -> None:
        self._drop_connection()
        self.stats.retries += 1
        if attempt > self.max_retries:
            raise SiteConnectionError(
                f"site {self.site.site_id!r} could not reach the coordinator "
                f"at {self.host}:{self.port} after {attempt} attempts "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        await asyncio.sleep(self._backoff_delay(attempt))

    def _backoff_delay(self, attempt: int) -> float:
        """Bounded exponential backoff with multiplicative jitter."""
        raw = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return raw * (0.5 + 0.5 * self._rng.random())

    async def _connect_once(self) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.connect_timeout
        )
        self._reader, self._writer = reader, writer
        if self._ever_connected:
            self.stats.reconnects += 1
        self._ever_connected = True
        await self._send(
            protocol.hello_message(
                self.site.site_id,
                self.site.incarnation,
                self.role,
                encodings=self.offered_encodings,
                features=("batch",) if self.max_batch > 1 else (),
            )
        )
        header = await self._receive("welcome")
        # The welcome's numbers are scoped to this site's incarnation
        # (the hello named it), so a coordinator that only ever saw a
        # previous life of this site id answers 0/0 — never numbers that
        # could prune or shadow this life's exports.
        self._applied = int(header.get("sequence", 0))
        self.site.acknowledge(int(header.get("durable", 0)))
        # The coordinator's pick, restricted to what we offered — a v1
        # welcome carries neither field, leaving the session dense and
        # unbatched exactly as a v1 peer expects.
        accepted = header.get("encodings") or ()
        self._encodings = tuple(
            encoding
            for encoding in accepted
            if encoding in self.offered_encodings
        ) or codec.DENSE_ONLY
        features = header.get("features") or ()
        self._batching = "batch" in features and self.max_batch > 1
        self.stats.resyncs += 1

    async def _ship_retained(self) -> None:
        """Send every retained export the coordinator has not applied.

        With batching negotiated, up to ``max_batch`` consecutive
        retained exports coalesce into one frame (diffs summed per
        stream); the coordinator's ack covers the batch's top sequence.
        Retention is untouched either way — the *individual* exports
        stay until durably acknowledged, so a rewind after a fault can
        always re-batch from any boundary.  Exports cut at different
        window watermarks never share a batch (they belong in different
        ring buckets at the coordinator; :func:`coalesce_exports`
        enforces it), so the pending tail is first split into runs of
        equal ``window_at``.
        """
        while True:
            pending = [
                export
                for export in self.site.exports_after(self._applied)
                if export.sequence > self._applied
            ]
            if not pending:
                return
            if self._batching and len(pending) > 1:
                for run in _window_runs(pending):
                    for start in range(0, len(run), self.max_batch):
                        chunk = run[start : start + self.max_batch]
                        await self._send_export(
                            coalesce_exports(chunk, self.site.spec)
                        )
            else:
                for export in pending:
                    await self._send_export(export)

    async def _send_export(self, export: DeltaExport) -> None:
        header, blobs = protocol.delta_message(export, self._encodings)
        await self._send(header, blobs)
        self.stats.deltas_shipped += export.batch_size
        self.stats.exports_coalesced += export.batch_size - 1
        # Baseline = dense slab bytes of the frame actually shipped
        # (streams in frame × slab bytes) — the same definition the
        # coordinator applies, so compression_ratio agrees end to end
        # and isolates codec savings (batching shows in
        # exports_coalesced, not here).
        self.stats.payload_bytes_dense += (
            len(export.payloads) * self.site.spec.counter_payload_bytes
        )
        self.stats.payload_bytes_wire += sum(len(blob) for blob in blobs)
        ack = await self._receive("ack")
        self.stats.acks_received += 1
        self._applied = int(ack.get("sequence", 0))
        self.site.acknowledge(int(ack.get("durable", 0)))

    async def _send(self, header: dict, blobs=()) -> None:
        assert self._writer is not None
        nbytes = await asyncio.wait_for(
            protocol.write_message(self._writer, header, blobs),
            self.io_timeout,
        )
        self.stats.bytes_sent += nbytes
        self.stats.frames_sent += 1
        self.stats.count_message(str(header.get("type")), nbytes)

    async def _receive(self, expected_type: str) -> dict:
        assert self._reader is not None
        header, _, nbytes = await asyncio.wait_for(
            protocol.read_message(self._reader, self._max_frame_bytes),
            self.io_timeout,
        )
        self.stats.frames_received += 1
        self.stats.bytes_received += nbytes
        self.stats.count_message(str(header.get("type")), nbytes)
        if header.get("type") == "error":
            raise protocol.ProtocolError(
                f"coordinator rejected the session: {header.get('message')}"
            )
        if header.get("type") != expected_type:
            raise protocol.ProtocolError(
                f"expected {expected_type}, got {header.get('type')!r}"
            )
        return header
