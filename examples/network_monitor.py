"""IP-network monitoring: the paper's motivating scenario.

Three routers report the source addresses of active IP sessions as an
update stream — a session open is an insertion, a session close a
deletion.  The monitoring application asks the paper's introductory query:

    "estimate the number of distinct IP addresses seen at both R1 and R2
     but not R3"  —  |(R1 ∩ R2) − R3|

and watches it evolve as sessions churn.  A spike in that quantity could
indicate traffic bypassing R3 (routing/load-balancing trouble) or a
distributed source pattern typical of denial-of-service attacks.

Run:  python examples/network_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactStreamStore, SketchShape, SketchSpec, StreamEngine, Update

QUERY = "(R1 & R2) - R3"


def synthesise_sessions(rng: np.random.Generator):
    """Session-open events per router, with controlled overlaps."""
    # 2**32 IPv4 addresses don't fit domain_bits=30; model the monitored
    # prefix (a /2 of the address space) instead.
    addresses = rng.choice(2**30, size=40_000, replace=False)
    crowd = addresses[:24_000]  # seen at all three routers
    bypass = addresses[24_000:32_000]  # seen at R1 and R2, NOT at R3
    local_1 = addresses[32_000:36_000]  # only R1
    local_3 = addresses[36_000:]  # only R3
    opens = {
        "R1": np.concatenate([crowd, bypass, local_1]),
        "R2": np.concatenate([crowd, bypass]),
        "R3": np.concatenate([crowd, local_3]),
    }
    return opens, bypass


def main() -> None:
    rng = np.random.default_rng(1201)
    spec = SketchSpec(
        num_sketches=384,
        shape=SketchShape(domain_bits=30, num_second_level=16),
        seed=77,
    )
    engine = StreamEngine(spec)
    exact = ExactStreamStore()

    opens, bypass = synthesise_sessions(rng)

    print("phase 1: sessions opening at the routers ...")
    for router, sources in opens.items():
        for address in sources:
            update = Update(router, int(address), +1)
            engine.process(update)
            exact.apply(update)
    report(engine, exact, "after session opens")

    print("\nphase 2: half the bypass sessions close (deletions at R1, R2) ...")
    closing = bypass[: len(bypass) // 2]
    for router in ("R1", "R2"):
        for address in closing:
            update = Update(router, int(address), -1)
            engine.process(update)
            exact.apply(update)
    report(engine, exact, "after session closes")

    print(
        f"\nprocessed {engine.updates_processed:,} session events; "
        f"synopsis footprint {engine.synopsis_bytes() / 1e6:.1f} MB — "
        f"constant in the stream length, so the same synopses absorb "
        f"billions of session events"
    )


def report(engine: StreamEngine, exact: ExactStreamStore, moment: str) -> None:
    estimate = engine.query(QUERY, epsilon=0.1)
    truth = exact.cardinality(QUERY)
    error = abs(estimate.value - truth) / truth if truth else 0.0
    print(
        f"  [{moment}] |{QUERY}| ≈ {estimate.value:,.0f} "
        f"(exact {truth:,}, error {100 * error:.1f}%, "
        f"{estimate.num_valid} valid observations)"
    )


if __name__ == "__main__":
    main()
