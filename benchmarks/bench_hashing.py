"""Hash-substrate bench: polynomial vs tabulation first-level hashing.

The default first-level family is a degree-(t−1) polynomial over
GF(2^61−1) — the construction the paper's limited-independence analysis
(Section 3.6) covers.  Tabulation hashing is only 3-wise independent but
evaluates by table lookups.  This bench measures raw hashing throughput
for both, the shared :class:`~repro.core.plan.HashPlan`'s stacked
index-row production, and checks that each hash family feeds the
geometric LSB level distribution the sketches rely on.

Run directly (``python benchmarks/bench_hashing.py --smoke``) it becomes
a dependency-free smoke check for CI: a quick pass over the same paths
with small inputs, asserting the level-distribution quality gate and
that plan rows match per-sketch hashing bit-for-bit.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.plan import HashPlan
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.hashing.families import random_polynomial_hash
from repro.hashing.lsb import lsb_array
from repro.hashing.tabulation import random_tabulation_hash

N = 1 << 20


def _elements() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.integers(0, 2**30, size=N, dtype=np.uint64)


def test_polynomial_hash_throughput(benchmark):
    hash_fn = random_polynomial_hash(np.random.default_rng(1), independence=8)
    elements = _elements()
    benchmark.pedantic(hash_fn, args=(elements,), rounds=5, iterations=1)
    rate = N / benchmark.stats["mean"]
    print(f"\npolynomial (t=8): {rate / 1e6:.1f} M elements/s")


def test_tabulation_hash_throughput(benchmark):
    hash_fn = random_tabulation_hash(np.random.default_rng(2))
    elements = _elements()
    benchmark.pedantic(hash_fn, args=(elements,), rounds=5, iterations=1)
    rate = N / benchmark.stats["mean"]
    print(f"\ntabulation (3-wise): {rate / 1e6:.1f} M elements/s")


def test_plan_row_throughput(benchmark):
    """Stacked index-row production of the shared hash plan.

    One :meth:`~repro.core.plan.HashPlan.compute_rows` call replaces
    ``r`` first-level evaluations plus ``r`` second-level bank passes;
    this measures rows/second at the library-default shape on a batch
    sized for the stacked (small-batch) regime.
    """
    spec = SketchSpec(
        num_sketches=64,
        shape=SketchShape(domain_bits=24, num_second_level=16, independence=8),
        seed=11,
    )
    plan = HashPlan(spec.hashes(), spec.shape, cache_size=0)
    rng = np.random.default_rng(12)
    elements = rng.integers(0, 2**24, size=1024, dtype=np.uint64)
    benchmark.pedantic(plan.compute_rows, args=(elements,), rounds=5, iterations=1)
    rate = elements.size / benchmark.stats["mean"]
    print(f"\nplan rows (r=64, s=16): {rate / 1e3:.1f} K elements/s")


def test_level_distribution_quality(benchmark):
    """Both families must produce geometric LSB levels — the property
    every estimator in the library rests on."""

    def measure():
        elements = _elements()
        deviations = {}
        for name, hash_fn in (
            ("polynomial", random_polynomial_hash(np.random.default_rng(3), 8)),
            ("tabulation", random_tabulation_hash(np.random.default_rng(4))),
        ):
            levels = lsb_array(hash_fn(elements))
            worst = 0.0
            for level in range(8):
                frequency = float((levels == level).mean())
                expected = 2.0 ** -(level + 1)
                worst = max(worst, abs(frequency - expected) / expected)
            deviations[name] = worst
        return deviations

    deviations = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for name, worst in deviations.items():
        print(f"{name}: worst relative deviation from 2^-(l+1) over levels "
              f"0-7: {100 * worst:.2f}%")
    assert all(worst < 0.05 for worst in deviations.values())


# -- standalone smoke mode (CI) ----------------------------------------------


def run_smoke(num_elements: int = 1 << 14) -> dict:
    """A fast, assertion-backed pass over the hashing substrate.

    Measures polynomial / tabulation / plan-row throughput on a small
    input, checks the LSB geometric-distribution gate, and verifies that
    plan-based family maintenance leaves counters bit-identical to the
    per-sketch path.  Raises ``AssertionError`` on any quality failure.
    """
    import time

    rng = np.random.default_rng(42)
    elements = rng.integers(0, 2**24, size=num_elements, dtype=np.uint64)
    report: dict = {"elements": num_elements}

    for name, hash_fn in (
        ("polynomial", random_polynomial_hash(np.random.default_rng(1), 8)),
        ("tabulation", random_tabulation_hash(np.random.default_rng(2))),
    ):
        started = time.perf_counter()
        hashed = hash_fn(elements)
        report[f"{name}_million_per_s"] = (
            num_elements / (time.perf_counter() - started) / 1e6
        )
        levels = lsb_array(hashed)
        # Only levels with >=1000 expected hits: deeper levels are pure
        # sampling noise at smoke sizes (the full bench covers 0-7 at 2^20).
        checked = max(1, int(np.log2(num_elements / 1000)))
        worst = max(
            abs(float((levels == level).mean()) - 2.0 ** -(level + 1))
            / 2.0 ** -(level + 1)
            for level in range(checked)
        )
        report[f"{name}_worst_level_deviation"] = worst
        assert worst < 0.10, f"{name} level distribution degraded: {worst:.3f}"

    spec = SketchSpec(
        num_sketches=16,
        shape=SketchShape(domain_bits=24, num_second_level=8, independence=8),
        seed=11,
    )
    plan = HashPlan(spec.hashes(), spec.shape, cache_size=4096)
    started = time.perf_counter()
    plan.compute_rows(elements[:1024])
    report["plan_rows_thousand_per_s"] = (
        1024 / (time.perf_counter() - started) / 1e3
    )

    # Keep the batch inside the cache so the second pass is all hits
    # (a larger batch would — correctly — trigger the scan-flood bypass
    # and fall back to the per-sketch path, testing nothing new).
    batch = elements[:1024]
    counts = rng.choice(np.asarray([-2, -1, 1, 3], dtype=np.int64), batch.size)
    via_plan, via_sketch = spec.build(), spec.build()
    via_plan.update_batch(batch, counts, plan=plan)
    via_plan.update_batch(batch, plan=plan)  # warm: served from the cache
    via_sketch.update_batch(batch, counts, plan=None)
    via_sketch.update_batch(batch, plan=None)
    assert np.array_equal(via_plan.counters, via_sketch.counters), (
        "plan-based maintenance diverged from the per-sketch path"
    )
    report["plan_counters_bit_identical"] = True
    report["plan_cache_hit_rate"] = plan.stats().hit_rate
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="hashing-substrate benchmarks (smoke mode)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast CI smoke pass instead of pytest-benchmark",
    )
    parser.add_argument("--elements", type=int, default=1 << 14)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("run under pytest for full benchmarks, or pass --smoke")
    report = run_smoke(args.elements)
    print(f"elements            : {report['elements']:,}")
    print(f"polynomial (t=8)    : {report['polynomial_million_per_s']:.1f} M/s")
    print(f"tabulation (3-wise) : {report['tabulation_million_per_s']:.1f} M/s")
    print(f"plan rows (r=16,s=8): {report['plan_rows_thousand_per_s']:.1f} K/s")
    print(
        "level deviation     : "
        f"poly {100 * report['polynomial_worst_level_deviation']:.2f}% / "
        f"tab {100 * report['tabulation_worst_level_deviation']:.2f}%"
    )
    print(
        "plan maintenance    : bit-identical, "
        f"{report['plan_cache_hit_rate']:.0%} cache hit rate"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
