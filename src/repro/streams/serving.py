"""Multi-tenant query serving front end.

Everything below :mod:`repro.streams.net` feeds data *in* — sites ship
delta exports, coordinators fold them, trees re-export upward.  This
module is the path *out*: :class:`QueryServer` mounts an asyncio query
service on any fold target (a :class:`~repro.streams.engine.StreamEngine`,
a :class:`~repro.streams.distributed.Coordinator`, a
:class:`~repro.streams.sharded.ShardedEngine`) and answers set-expression
cardinality queries over the same length-framed protocol the ingest path
speaks (``role: "query"`` in the hello; see
:mod:`repro.streams.net.protocol`), so one port discipline, one framing
codec, and one strict-decoding posture cover both directions.

Three properties carry the design:

**Snapshot consistency without locks.**  The server runs on the same
event loop as ingest and evaluates queries *synchronously* — a drain
never awaits between reading the engine state and stamping the answers.
Every response carries the target's ``snapshot_position`` (the
``(updates_processed, mutation_epoch)`` pair that also keys the engine's
query cache, PR 9): all results in a drain were computed against exactly
that state, ingest was never paused, and a torn read — an answer
straddling a half-applied fold — is structurally impossible.

**Parse-once plans, batched evaluation.**  Expression texts are parsed
and compiled once into a :class:`ServingPlan` (LRU-cached in a
:class:`PlanCache`), shared across tenants; each tenant's stream
namespace is applied as a memoised prefix rewrite of the immutable AST.
Concurrent requests that land in the same drain window are folded into
one :meth:`~repro.streams.engine.StreamEngine.query_many` call per
``(epsilon, window)`` group, so equivalent expressions from different
clients share one union estimate and one mask pass — the PR-3 batching,
wired to the network.

**Tenant isolation.**  A :class:`TenantSpec` names a stream-namespace
prefix, a token-bucket rate limit, and gets its own
:class:`ServingStats` counters.  Tenants share compiled plans (parsing
is namespace-free) but never cache entries or visible streams: a
tenant's queries resolve only streams under its prefix, and
unknown-name errors list only *its* namespace.

Failures never drop the connection: every server-surfaced exception maps
to a typed ``query_error`` frame (:data:`QUERY_ERROR_KINDS`) carrying a
machine-readable kind plus payload fields — unknown-name lists, a
``retry_after`` hint — and the session continues.  Only an oversized
frame (the stream cannot be re-synchronised past unread bytes) or a
broken handshake closes the socket.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.core.results import UnionEstimate, WitnessEstimate
from repro.errors import (
    EstimationError,
    ExpressionError,
    RateLimitedError,
    ReproError,
    UnknownQueryError,
    UnknownStreamError,
    UnknownTenantError,
)
from repro.expr.ast import SetExpression, StreamRef
from repro.expr.compile import compile_expression
from repro.expr.parser import parse
from repro.streams.net import protocol

__all__ = [
    "DEFAULT_TENANT",
    "MAX_QUERY_FRAME_BYTES",
    "QUERY_ERROR_KINDS",
    "TenantSpec",
    "TokenBucket",
    "ServingPlan",
    "PlanCache",
    "ServingStats",
    "QueryServer",
    "QueryClient",
    "estimate_to_dict",
    "estimate_from_dict",
    "error_from_header",
]

#: Name of the implicit tenant a server constructed without ``tenants=``
#: gets: empty prefix (every stream visible), no rate limit.
DEFAULT_TENANT = "public"

#: Default per-frame cap for query sessions.  Query frames are a few KiB
#: of JSON — nothing like the multi-MiB counter slabs of the ingest path
#: — so the refusal threshold is far lower: a corrupt length prefix (or
#: a client speaking the wrong protocol) fails fast without the server
#: ever allocating ingest-sized buffers for it.
MAX_QUERY_FRAME_BYTES = 1024 * 1024


# -- tenants ------------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the serving front end.

    ``prefix`` maps the tenant's logical stream names onto the engine's
    physical namespace (logical ``"A"`` resolves to ``prefix + "A"``).
    It must be valid as the leading part of a stream name —
    alphanumerics and underscores, e.g. ``"acme_"`` — or empty for the
    whole-engine view.  ``rate`` is the sustained query budget in
    expression evaluations per second (``None`` = unlimited);
    ``burst`` is the bucket depth (defaults to ``max(1, rate)``).
    """

    name: str
    prefix: str = ""
    rate: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.prefix and not all(
            ch.isalnum() or ch == "_" for ch in self.prefix
        ):
            raise ValueError(
                "tenant prefix must contain only alphanumerics and "
                f"underscores (it prefixes stream names), got {self.prefix!r}"
            )
        if self.rate is not None and not self.rate >= 0:
            raise ValueError("tenant rate must be non-negative")
        if self.burst is not None and not self.burst > 0:
            raise ValueError("tenant burst must be positive")

    @property
    def bucket_burst(self) -> float:
        return self.burst if self.burst is not None else max(1.0, self.rate)


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, depth ``burst``.

    ``try_acquire(cost)`` never blocks: it returns ``0.0`` and debits
    the bucket when the budget covers ``cost``, else the seconds until
    it would — the serving layer turns that into a typed
    :class:`~repro.errors.RateLimitedError` with a ``retry_after`` hint
    instead of queueing (a hang) or silently dropping.  ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self, rate: float, burst: float, *, clock=time.monotonic
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    @property
    def tokens(self) -> float:
        """Current token balance (refreshed to now)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now

    def try_acquire(self, cost: float = 1.0) -> float:
        """Debit ``cost`` tokens; returns 0.0, or the retry-after delay."""
        if cost <= 0:
            raise ValueError("cost must be positive")
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        missing = cost - self._tokens
        if self.rate == 0:
            return float("inf")
        return missing / self.rate


# -- query plans --------------------------------------------------------------


class ServingPlan:
    """One parsed-and-compiled expression text, shared across tenants.

    Parsing and compilation see only *logical* stream names, so one plan
    serves every tenant; a namespace is applied afterwards as a memoised
    structural rewrite (:meth:`resolved`) of the immutable AST.  What is
    deliberately **not** shared is evaluation state: the engine's query
    cache keys on the resolved (physical) expression plus the mutation
    epoch, so tenants with the same text never see each other's
    estimates.
    """

    __slots__ = ("text", "expression", "program", "_resolved")

    def __init__(self, text: str, expression: SetExpression) -> None:
        self.text = text
        self.expression = expression
        self.program = compile_expression(expression)
        self._resolved: dict[str, SetExpression] = {}

    def resolved(self, prefix: str) -> SetExpression:
        """The AST with every stream name rewritten under ``prefix``."""
        if not prefix:
            return self.expression
        expression = self._resolved.get(prefix)
        if expression is None:
            expression = _rebase(self.expression, prefix)
            self._resolved[prefix] = expression
        return expression


def _rebase(node: SetExpression, prefix: str) -> SetExpression:
    if isinstance(node, StreamRef):
        return StreamRef(prefix + node.name)
    return type(node)(
        _rebase(node.left, prefix), _rebase(node.right, prefix)
    )


class PlanCache:
    """Parse-once LRU of expression text → :class:`ServingPlan`.

    The counters (``parses``/``hits``/``evictions``) exist so tests can
    pin the parse-once property: two tenants issuing the same text must
    account for exactly one parse.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._plans: OrderedDict[str, ServingPlan] = OrderedDict()
        self.parses = 0
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, text: str) -> ServingPlan:
        """The cached plan for ``text``, parsing (and caching) on miss.

        Raises :class:`~repro.errors.ExpressionError` for unparseable
        text — nothing is cached in that case, so a tenant cannot fill
        the cache with garbage.
        """
        plan = self._plans.get(text)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(text)
            return plan
        expression = parse(text)
        plan = ServingPlan(text, expression)
        self.parses += 1
        self._plans[text] = plan
        if len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.evictions += 1
        return plan


# -- per-tenant counters ------------------------------------------------------


@dataclass
class ServingStats:
    """Per-tenant serving counters (the ``TransportStats`` idiom).

    ``queries`` counts answered request frames, ``items`` the
    expressions/union inputs inside them; ``batched_queries`` counts
    requests that shared a drain with at least one other request (the
    cross-client batching actually firing).  All errors are also broken
    out by kind in ``errors_by_kind``.
    """

    tenant: str = ""
    connections: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    queries: int = 0
    items: int = 0
    errors: int = 0
    rate_limited: int = 0
    batched_queries: int = 0
    errors_by_kind: dict = field(default_factory=dict)

    def count_error(self, kind: str) -> None:
        """Count one error, both in total and under its typed ``kind``."""
        self.errors += 1
        self.errors_by_kind[kind] = self.errors_by_kind.get(kind, 0) + 1

    def snapshot(self) -> "ServingStats":
        """A point-in-time copy safe to hand across the API."""
        return replace(self, errors_by_kind=dict(self.errors_by_kind))


# -- error mapping ------------------------------------------------------------


#: Machine-readable ``query_error`` kinds and the exception each maps
#: to, in classification order (first match wins — subclasses before
#: their bases).  The client re-raises the same types, so a typed error
#: crosses the wire round-trip intact.
QUERY_ERROR_KINDS: tuple[tuple[str, type], ...] = (
    ("rate-limited", RateLimitedError),
    ("unknown-tenant", UnknownTenantError),
    ("unknown-stream", UnknownStreamError),
    ("unknown-query", UnknownQueryError),
    ("expression", ExpressionError),
    ("estimation", EstimationError),
    ("protocol", protocol.ProtocolError),
    ("bad-request", ValueError),
    ("internal", Exception),
)

_KIND_TO_EXC = {kind: exc for kind, exc in QUERY_ERROR_KINDS}


def _error_text(exc: BaseException) -> str:
    # KeyError subclasses repr() their argument in str(); use the raw
    # message so the wire carries clean text.
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def classify_error(exc: BaseException) -> tuple[str, str, dict]:
    """``(kind, message, details)`` for a server-surfaced exception."""
    details = dict(getattr(exc, "details", None) or {})
    if isinstance(exc, RateLimitedError):
        details.setdefault("retry_after", exc.retry_after)
    for kind, exc_type in QUERY_ERROR_KINDS:
        if isinstance(exc, exc_type):
            return kind, _error_text(exc), details
    return "internal", _error_text(exc), details


def error_from_header(header: dict) -> Exception:
    """Rebuild the typed exception a ``query_error`` frame describes.

    The client raises exactly the class the server classified —
    :class:`~repro.errors.RateLimitedError` keeps its ``retry_after``,
    name-lookup errors keep their ``unknown``/``known`` lists on a
    ``details`` attribute.
    """
    kind = header.get("error", "internal")
    message = header.get("message", "")
    details = {
        key: value
        for key, value in header.items()
        if key not in ("type", "id", "error", "message")
    }
    exc_type = _KIND_TO_EXC.get(kind)
    if exc_type is RateLimitedError:
        exc: Exception = RateLimitedError(
            message, retry_after=float(details.get("retry_after", 0.0))
        )
    elif exc_type is None or exc_type is Exception:
        exc = ReproError(f"server error [{kind}]: {message}")
    else:
        exc = exc_type(message)
    exc.details = details
    return exc


# -- estimate serialisation ---------------------------------------------------


def estimate_to_dict(estimate) -> dict:
    """A JSON-safe mapping for one estimator result.

    JSON floats round-trip exactly (``repr`` is the shortest exact
    representation), so the rebuilt dataclass is bit-identical to the
    server's — the e2e suites compare with ``==``, no tolerance.
    """
    if isinstance(estimate, WitnessEstimate):
        return {
            "est": "witness",
            "value": estimate.value,
            "level": estimate.level,
            "union_estimate": estimate.union_estimate,
            "num_valid": estimate.num_valid,
            "num_witnesses": estimate.num_witnesses,
            "num_sketches": estimate.num_sketches,
        }
    if isinstance(estimate, UnionEstimate):
        return {
            "est": "union",
            "value": estimate.value,
            "level": estimate.level,
            "non_empty_fraction": estimate.non_empty_fraction,
            "num_sketches": estimate.num_sketches,
            "saturated": estimate.saturated,
        }
    raise TypeError(f"cannot serialise {type(estimate).__name__}")


def estimate_from_dict(payload: dict):
    """Inverse of :func:`estimate_to_dict` (strict about shape)."""
    if not isinstance(payload, dict):
        raise protocol.ProtocolError("estimate payload must be an object")
    kind = payload.get("est")
    try:
        if kind == "witness":
            return WitnessEstimate(
                value=float(payload["value"]),
                level=int(payload["level"]),
                union_estimate=float(payload["union_estimate"]),
                num_valid=int(payload["num_valid"]),
                num_witnesses=int(payload["num_witnesses"]),
                num_sketches=int(payload["num_sketches"]),
            )
        if kind == "union":
            return UnionEstimate(
                value=float(payload["value"]),
                level=int(payload["level"]),
                non_empty_fraction=float(payload["non_empty_fraction"]),
                num_sketches=int(payload["num_sketches"]),
                saturated=bool(payload["saturated"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise protocol.ProtocolError(
            f"malformed {kind!r} estimate payload: {exc}"
        ) from exc
    raise protocol.ProtocolError(f"unknown estimate kind {kind!r}")


# -- the server ---------------------------------------------------------------


@dataclass
class _Pending:
    """One validated request parked for the next drain."""

    request: protocol.QueryRequest
    tenant: TenantSpec
    resolved: tuple
    future: asyncio.Future
    batched: bool = False
    results: list | None = None


class QueryServer:
    """Asyncio query service over any fold target.

    ``target`` needs ``query``/``query_union``/``stream_names`` (every
    engine and coordinator in this repo); ``query_many`` and
    ``snapshot_position`` are used when present and degraded around when
    not.  See the module docstring for the consistency and batching
    model.

    ``batch_window`` (seconds) widens the micro-batch: requests are
    parked and drained together after at most that long.  The default
    ``0.0`` drains on the next event-loop iteration — concurrent
    requests already in flight still coalesce, at no added latency.
    """

    def __init__(
        self,
        target,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Iterable[TenantSpec] | None = None,
        max_frame_bytes: int = MAX_QUERY_FRAME_BYTES,
        plan_cache_size: int = 256,
        batch_window: float = 0.0,
        clock=time.monotonic,
    ) -> None:
        self.target = target
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        if batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        self._batch_window = batch_window
        self._clock = clock
        if tenants is None:
            tenants = [TenantSpec(DEFAULT_TENANT)]
        self._tenants: dict[str, TenantSpec] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._stats: dict[str, ServingStats] = {}
        for tenant in tenants:
            if tenant.name in self._tenants:
                raise ValueError(f"duplicate tenant {tenant.name!r}")
            self._tenants[tenant.name] = tenant
            if tenant.rate is not None:
                self._buckets[tenant.name] = TokenBucket(
                    tenant.rate, tenant.bucket_burst, clock=clock
                )
            self._stats[tenant.name] = ServingStats(tenant=tenant.name)
        self.plans = PlanCache(plan_cache_size)
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()
        self._pending: list[_Pending] = []
        self._drain_handle: asyncio.Handle | None = None
        self.drains = 0
        self.batched_drains = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting query sessions (resolves ``port``)."""
        if self._server is not None:
            raise RuntimeError("query server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener, cancel live sessions and parked drains."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            for task in list(self._handlers):
                task.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers, return_exceptions=True)
            self._handlers.clear()
        if self._drain_handle is not None:
            self._drain_handle.cancel()
            self._drain_handle = None
        for pending in self._pending:
            if not pending.future.done():
                pending.future.cancel()
        self._pending.clear()

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        return self._port

    # -- introspection -----------------------------------------------------

    def tenant_names(self) -> list[str]:
        """Configured tenant names, sorted."""
        return sorted(self._tenants)

    def stats(self) -> dict[str, ServingStats]:
        """Per-tenant serving counters (point-in-time copies)."""
        return {name: stats.snapshot() for name, stats in self._stats.items()}

    # -- connection handling -----------------------------------------------

    def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._guarded_serve(reader, writer)
        )
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _guarded_serve(self, reader, writer) -> None:
        try:
            await self._serve_session(reader, writer)
        except asyncio.IncompleteReadError:
            pass  # client went away; nothing to clean up
        except protocol.ProtocolError as exc:
            # Handshake violations and oversized frames: the stream
            # cannot be trusted past this point — answer and close.
            try:
                await protocol.write_message(
                    writer, protocol.error_message(str(exc))
                )
            except (ConnectionError, OSError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_session(self, reader, writer) -> None:
        header, _, _ = await protocol.read_message(
            reader, self._max_frame_bytes
        )
        if header.get("type") != "hello":
            raise protocol.ProtocolError(
                f"expected hello, got {header.get('type')!r}"
            )
        if header.get("version") not in protocol.SUPPORTED_VERSIONS:
            raise protocol.ProtocolError(
                f"protocol version {header.get('version')!r} not supported "
                f"(this server speaks {protocol.SUPPORTED_VERSIONS})"
            )
        role = header.get("role", "site")
        if role != "query":
            raise protocol.ProtocolError(
                f"this is the query port; hello role must be 'query', "
                f"got {role!r} (deltas go to the ingest port)"
            )
        await protocol.write_message(writer, protocol.welcome_message(0, 0))
        session_tenant: ServingStats | None = None
        while True:
            header, _, nbytes = await protocol.read_message(
                reader, self._max_frame_bytes
            )
            if header.get("type") == "error":
                return  # client-side goodbye
            try:
                request = protocol.query_from_message(header)
            except protocol.ProtocolError as exc:
                # The frame parsed but the header is not a valid query:
                # framing is intact, so answer typed and keep serving.
                request_id = header.get("id")
                if not isinstance(request_id, int) or isinstance(
                    request_id, bool
                ):
                    request_id = -1
                kind, message, details = classify_error(exc)
                if session_tenant is not None:
                    session_tenant.count_error(kind)
                await self._send(
                    writer,
                    protocol.query_error_message(
                        request_id, kind, message, details=details
                    ),
                    session_tenant,
                )
                continue
            stats = self._stats.get(request.tenant)
            if stats is not None:
                if session_tenant is None:
                    stats.connections += 1
                session_tenant = stats
                stats.frames_in += 1
                stats.bytes_in += nbytes
            try:
                pending = self._admit(request)
            except Exception as exc:  # typed below; nothing is unrecoverable
                kind, message, details = classify_error(exc)
                if stats is not None:
                    stats.count_error(kind)
                    if kind == "rate-limited":
                        stats.rate_limited += 1
                await self._send(
                    writer,
                    protocol.query_error_message(
                        request.id, kind, message, details=details
                    ),
                    stats,
                )
                continue
            try:
                results, position, batched = await pending.future
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                kind, message, details = classify_error(exc)
                if stats is not None:
                    stats.count_error(kind)
                await self._send(
                    writer,
                    protocol.query_error_message(
                        request.id, kind, message, details=details
                    ),
                    stats,
                )
                continue
            if stats is not None:
                stats.queries += 1
                stats.items += len(request.items)
                if batched:
                    stats.batched_queries += 1
            await self._send(
                writer,
                protocol.query_result_message(
                    request.id,
                    request.kind,
                    [estimate_to_dict(result) for result in results],
                    position,
                ),
                stats,
            )

    async def _send(
        self, writer, header: dict, stats: ServingStats | None
    ) -> None:
        nbytes = await protocol.write_message(writer, header)
        if stats is not None:
            stats.frames_out += 1
            stats.bytes_out += nbytes

    # -- request admission --------------------------------------------------

    def _admit(self, request: protocol.QueryRequest) -> _Pending:
        """Validate one request and park it for the next drain.

        Raises the typed errors the protocol maps: unknown tenant,
        rate limit, unparseable expression, unknown stream, bad
        epsilon/window.  Nothing is enqueued on failure.
        """
        tenant = self._tenants.get(request.tenant)
        if tenant is None:
            known = self.tenant_names()
            exc = UnknownTenantError(
                f"unknown tenant {request.tenant!r}; "
                f"known tenants: {', '.join(known) or '<none>'}"
            )
            exc.details = {"unknown": [request.tenant], "known": known}
            raise exc
        if not 0 < request.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if request.window is not None:
            if not getattr(self.target, "is_windowed", False):
                raise ValueError(
                    "windowed queries need a windowed serving target"
                )
            if not request.window > 0:
                raise ValueError("window must be positive")
        bucket = self._buckets.get(tenant.name)
        if bucket is not None:
            retry_after = bucket.try_acquire(float(len(request.items)))
            if retry_after > 0:
                raise RateLimitedError(
                    f"tenant {tenant.name!r} is over its "
                    f"{bucket.rate:g}/s query budget",
                    retry_after=retry_after,
                )
        if request.kind == "expression":
            logical: set[str] = set()
            resolved = []
            for text in request.items:
                plan = self.plans.get(text)  # ExpressionError on bad text
                logical.update(plan.expression.streams())
                resolved.append(plan.resolved(tenant.prefix))
            self._require_visible(tenant, logical)
            parked = _Pending(
                request, tenant, tuple(resolved), self._new_future()
            )
        else:
            self._require_visible(tenant, request.items)
            parked = _Pending(
                request,
                tenant,
                tuple(tenant.prefix + name for name in request.items),
                self._new_future(),
            )
        self._pending.append(parked)
        self._schedule_drain()
        return parked

    def _new_future(self) -> asyncio.Future:
        return asyncio.get_running_loop().create_future()

    def _require_visible(
        self, tenant: TenantSpec, names: Iterable[str]
    ) -> None:
        """Check logical ``names`` against the tenant's namespace.

        The error lists only streams under the tenant's prefix (by
        their logical names) — one tenant can never enumerate
        another's namespace from its error payloads.
        """
        prefix = tenant.prefix
        visible = {
            name[len(prefix):]
            for name in self.target.stream_names()
            if name.startswith(prefix)
        }
        unknown = sorted(set(names) - visible)
        if unknown:
            known = sorted(visible)
            exc = UnknownStreamError(
                f"no synopsis for stream(s) "
                f"{', '.join(repr(name) for name in unknown)}; "
                f"known streams: {', '.join(known) or '<none>'}"
            )
            exc.details = {"unknown": unknown, "known": known}
            raise exc

    # -- the drain ----------------------------------------------------------

    def _schedule_drain(self) -> None:
        if self._drain_handle is not None:
            return
        loop = asyncio.get_running_loop()
        if self._batch_window > 0:
            self._drain_handle = loop.call_later(
                self._batch_window, self._drain
            )
        else:
            self._drain_handle = loop.call_soon(self._drain)

    def _drain(self) -> None:
        """Answer every parked request against ONE engine snapshot.

        This method is synchronous — it never awaits between the first
        evaluation and the position read at the end, so on the single
        event loop no ingest fold, window expiry, or checkpoint can
        interleave: all answers in a drain describe exactly the state
        ``position`` names.  That is the whole snapshot-consistency
        mechanism; ingest is never locked out, merely *not scheduled*
        for the (microseconds-scale) duration of a drain.
        """
        self._drain_handle = None
        parked, self._pending = self._pending, []
        if not parked:
            return
        self.drains += 1
        if len(parked) > 1:
            self.batched_drains += 1
            for pending in parked:
                pending.batched = True
        try:
            groups: dict[tuple, list[_Pending]] = {}
            for pending in parked:
                key = (
                    pending.request.kind,
                    pending.request.epsilon,
                    pending.request.window,
                )
                groups.setdefault(key, []).append(pending)
            for (kind, epsilon, window), members in groups.items():
                if kind == "expression":
                    self._drain_expressions(members, epsilon, window)
                else:
                    self._drain_unions(members, epsilon, window)
            position = list(self._snapshot_position())
        except Exception as exc:
            # A loop callback must never leak: fail every still-parked
            # request typed instead of stranding its handler forever.
            for pending in parked:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for pending in parked:
            if pending.future.done():
                continue  # evaluation error already set
            pending.future.set_result(
                (pending.results, position, pending.batched)
            )

    def _drain_expressions(
        self, members: list[_Pending], epsilon: float, window: float | None
    ) -> None:
        flat = [
            expression for pending in members for expression in pending.resolved
        ]
        estimates = None
        query_many = getattr(self.target, "query_many", None)
        if query_many is not None:
            try:
                if window is not None:
                    estimates = query_many(flat, epsilon, window=window)
                else:
                    estimates = query_many(flat, epsilon)
            except Exception:
                # Isolate the failure: re-evaluate per request below so
                # one bad expression fails one request, not the batch.
                estimates = None
        if estimates is not None:
            cursor = iter(estimates)
            for pending in members:
                pending.results = [next(cursor) for _ in pending.resolved]
            return
        for pending in members:
            try:
                pending.results = [
                    self._query_one(expression, epsilon, window)
                    for expression in pending.resolved
                ]
            except Exception as exc:
                pending.future.set_exception(exc)

    def _query_one(self, expression, epsilon, window):
        if window is not None:
            return self.target.query(expression, epsilon, window=window)
        return self.target.query(expression, epsilon)

    def _drain_unions(
        self, members: list[_Pending], epsilon: float, window: float | None
    ) -> None:
        for pending in members:
            try:
                if window is not None:
                    result = self.target.query_union(
                        pending.resolved, epsilon, window=window
                    )
                else:
                    result = self.target.query_union(pending.resolved, epsilon)
            except Exception as exc:
                pending.future.set_exception(exc)
            else:
                pending.results = [result]

    def _snapshot_position(self) -> tuple[int, int]:
        position = getattr(self.target, "snapshot_position", None)
        if position is not None:
            return tuple(position)
        return (int(getattr(self.target, "updates_processed", 0)), 0)


# -- the client ---------------------------------------------------------------


class QueryClient:
    """A query session against a :class:`QueryServer`.

    Mirrors the :class:`~repro.streams.net.site.SiteClient` connection
    idiom (connect/io timeouts, explicit ``close``, async context
    manager) on the query side of the protocol.  Typed server errors
    re-raise locally as the same exception classes
    (:func:`error_from_header`); ``last_position`` is the snapshot token
    of the most recent answer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = DEFAULT_TENANT,
        client_id: str | None = None,
        connect_timeout: float = 5.0,
        io_timeout: float = 30.0,
        max_frame_bytes: int = MAX_QUERY_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.client_id = client_id or f"query-{uuid.uuid4().hex[:8]}"
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._max_frame_bytes = max_frame_bytes
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        self.last_position: tuple[int, int] | None = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> None:
        """Open the session (idempotent): hello/welcome handshake."""
        if self._writer is not None:
            return
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self._connect_timeout,
        )
        try:
            await protocol.write_message(
                writer,
                protocol.hello_message(self.client_id, "0", role="query"),
            )
            header, _, _ = await asyncio.wait_for(
                protocol.read_message(reader, self._max_frame_bytes),
                self._io_timeout,
            )
        except BaseException:
            writer.close()
            raise
        if header.get("type") == "error":
            writer.close()
            raise protocol.ProtocolError(
                f"server refused the session: {header.get('message')}"
            )
        if header.get("type") != "welcome":
            writer.close()
            raise protocol.ProtocolError(
                f"expected welcome, got {header.get('type')!r}"
            )
        self._reader, self._writer = reader, writer

    async def close(self) -> None:
        """Close the session; safe to call repeatedly."""
        if self._writer is None:
            return
        writer, self._writer, self._reader = self._writer, None, None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "QueryClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- queries -----------------------------------------------------------

    async def query(
        self,
        expressions: str | Sequence[str],
        epsilon: float = 0.1,
        window: float | None = None,
    ):
        """Estimate one expression text (or a batch of them).

        A single ``str`` returns one
        :class:`~repro.core.results.WitnessEstimate`; a sequence
        returns the aligned list — evaluated by the server in one
        snapshot-consistent pass.
        """
        single = isinstance(expressions, str)
        batch = [expressions] if single else list(expressions)
        results = await self._request(expressions=batch, epsilon=epsilon, window=window)
        return results[0] if single else results

    async def query_union(
        self,
        streams: Sequence[str],
        epsilon: float = 0.1,
        window: float | None = None,
    ) -> UnionEstimate:
        """Estimate the distinct count of a union of named streams."""
        results = await self._request(
            streams=list(streams), epsilon=epsilon, window=window
        )
        return results[0]

    async def _request(
        self,
        *,
        expressions: Sequence[str] | None = None,
        streams: Sequence[str] | None = None,
        epsilon: float,
        window: float | None,
    ) -> list:
        await self.connect()
        self._next_id += 1
        request_id = self._next_id
        await asyncio.wait_for(
            protocol.write_message(
                self._writer,
                protocol.query_message(
                    request_id,
                    self.tenant,
                    expressions=expressions,
                    streams=streams,
                    epsilon=epsilon,
                    window=window,
                ),
            ),
            self._io_timeout,
        )
        while True:
            header, _, _ = await asyncio.wait_for(
                protocol.read_message(self._reader, self._max_frame_bytes),
                self._io_timeout,
            )
            kind = header.get("type")
            if kind == "error":
                await self.close()
                raise protocol.ProtocolError(
                    f"server closed the session: {header.get('message')}"
                )
            if kind not in ("query_result", "query_error"):
                await self.close()
                raise protocol.ProtocolError(
                    f"unexpected {kind!r} frame in a query session"
                )
            if header.get("id") != request_id:
                continue  # stale answer from an abandoned request
            if kind == "query_error":
                raise error_from_header(header)
            position = header.get("position")
            if (
                not isinstance(position, list)
                or len(position) != 2
                or not all(isinstance(part, int) for part in position)
            ):
                raise protocol.ProtocolError(
                    "query_result carries no usable position"
                )
            self.last_position = tuple(position)
            results = header.get("results")
            if not isinstance(results, list):
                raise protocol.ProtocolError(
                    "query_result carries no results list"
                )
            return [estimate_from_dict(result) for result in results]
