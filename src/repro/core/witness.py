"""Shared machinery for the witness-based estimators (Sections 3.4–4).

The difference, intersection, and general set-expression estimators all
follow one pattern:

1. obtain a union estimate ``û`` for all participating streams;
2. fix the first-level bucket ``index = ⌈log₂(β·û / (1−ε))⌉`` (with
   ``β = 2``, the paper's optimal constant) so that, per sketch, the
   chosen bucket is a *singleton* for the combined stream with constant
   probability;
3. for each of the ``r`` sketches, discard the observation unless the
   bucket passes the singleton-union test (``noEstimate``), otherwise emit
   a 0/1 atomic estimate of whether the singleton is a *witness* for the
   target expression;
4. average the valid atomic estimates into ``p̂ ≈ |E| / |∪ᵢAᵢ|`` and return
   ``p̂ · û``.

:func:`run_witness_estimator` implements steps 2–4 given vectorised
``valid`` and ``witness`` masks; the per-operator modules supply those.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.family import SketchFamily, check_same_coins
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.union import estimate_union
from repro.errors import EstimationError

__all__ = ["BETA", "choose_witness_level", "run_witness_estimator"]

#: The paper's optimal level-selection constant (Section 3.4 analysis).
BETA = 2.0


def choose_witness_level(
    union_estimate: float, epsilon: float, num_levels: int
) -> int:
    """The bucket index ``⌈log₂(β·û / (1−ε))⌉``, clamped to valid levels.

    At this level ``R = 2^(index+1) ≥ β·|∪ᵢAᵢ|`` with high probability,
    which makes the singleton-union event occur with the constant
    probability ``≥ (β−1)/β²`` the analysis requires.
    """
    if union_estimate <= 0:
        return 0
    raw = math.ceil(math.log2(BETA * union_estimate / (1.0 - epsilon)))
    return int(min(max(raw, 0), num_levels - 1))


def run_witness_estimator(
    families: Sequence[SketchFamily],
    witness_masks: Callable[[list[np.ndarray]], tuple[np.ndarray, np.ndarray]],
    epsilon: float,
    union_estimate: float | UnionEstimate | None = None,
    pool_levels: int = 1,
) -> WitnessEstimate:
    """Drive the witness-estimation pattern over vectorised masks.

    Parameters
    ----------
    families:
        One sketch family per participating stream (same spec).
    witness_masks:
        Given the per-stream ``(r, s, 2)`` counter slabs at the chosen
        level, returns ``(valid, witness)`` boolean ``(r,)`` arrays:
        ``valid[i]`` — sketch ``i`` produced a 0/1 atomic observation
        (its bucket is a singleton for the combined stream); ``witness[i]``
        — that observation was 1.  ``witness`` need not be pre-masked by
        ``valid``; the intersection is taken here.
    epsilon:
        Target relative error.  The union sub-estimate is requested at
        ``ε/3`` as in the paper's error budget.
    union_estimate:
        Optional externally supplied ``û`` (ablation hook / reuse across
        queries).  When omitted it is computed from the same families.
        :class:`~repro.streams.engine.StreamEngine` always supplies it —
        at ``ε/3``, from its version-revalidated union cache — so N
        queries over one stream set pay for one union scan.  Supplying
        the estimate the omitted path would compute keeps the result
        bit-identical to the self-contained run.
    pool_levels:
        Number of consecutive first-level buckets, starting at the chosen
        index, to harvest observations from.  The paper's algorithms use
        exactly one (the default).  Pooling is an *extension*: conditioned
        on a bucket being a singleton for the combined stream, the witness
        probability is ``|E| / |∪ᵢAᵢ|`` at **every** level, so pooled
        observations stay unbiased while (roughly) doubling the valid
        count; observations within one sketch are no longer independent,
        which the paper's variance analysis does not cover (see
        ``benchmarks/bench_pooling.py`` for the measured effect).

    Raises
    ------
    EstimationError
        If no sketch produced a valid observation (probability vanishes
        exponentially in ``r``; typically indicates far too few sketches).
    """
    if not (0 < epsilon < 1):
        raise ValueError("epsilon must be in (0, 1)")
    check_same_coins(*families)

    if union_estimate is None:
        union_estimate = estimate_union(families, epsilon / 3.0)
    union_value = float(union_estimate)

    if union_value <= 0.0:
        # All streams are (estimated) empty; every expression over them is too.
        return WitnessEstimate(
            value=0.0,
            level=0,
            union_estimate=union_value,
            num_valid=0,
            num_witnesses=0,
            num_sketches=families[0].num_sketches,
        )

    if pool_levels < 1:
        raise ValueError("pool_levels must be at least 1")
    num_levels = families[0].shape.num_levels
    level = choose_witness_level(union_value, epsilon, num_levels)

    num_valid = 0
    num_witnesses = 0
    for pooled in range(level, min(level + pool_levels, num_levels)):
        slabs = [family.level_slab(pooled) for family in families]
        valid, witness = witness_masks(slabs)
        valid = np.asarray(valid, dtype=bool)
        witness = np.asarray(witness, dtype=bool) & valid
        num_valid += int(valid.sum())
        num_witnesses += int(witness.sum())
    if num_valid == 0:
        raise EstimationError(
            f"no sketch yielded a valid atomic observation at level {level}; "
            f"maintain more sketches (have {families[0].num_sketches})"
        )

    value = (num_witnesses / num_valid) * union_value
    return WitnessEstimate(
        value=value,
        level=level,
        union_estimate=union_value,
        num_valid=num_valid,
        num_witnesses=num_witnesses,
        num_sketches=families[0].num_sketches,
    )
