"""Venn-partition algebra for set expressions.

For an expression over streams ``A₁ … Aₙ``, the universe splits into the
``2**n − 1`` non-empty cells of the Venn diagram ("element is in exactly
this subset of streams").  Any set expression is a union of whole cells, so

* the exact cardinality ``|E|`` is a sum of cell sizes, and
* the controlled data generator of Section 5.1 works by assigning elements
  to cells with chosen probabilities so that the cells comprising ``E``
  carry total probability ``|E| / u``.

A cell is encoded as a frozenset of stream names (the streams the cell's
elements belong to); the empty cell is excluded throughout.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping

from repro.expr.ast import SetExpression

__all__ = [
    "Cell",
    "all_cells",
    "cells_of_expression",
    "expression_size_from_cells",
]

Cell = frozenset


def all_cells(stream_names: Iterable[str]) -> list[Cell]:
    """The ``2**n − 1`` non-empty Venn cells over the given streams.

    Cells are returned in a deterministic order (by size, then by sorted
    member names) so that generator configurations are reproducible.
    """
    names = sorted(set(stream_names))
    if not names:
        raise ValueError("need at least one stream")
    cells = []
    for size in range(1, len(names) + 1):
        for combo in combinations(names, size):
            cells.append(Cell(combo))
    return cells


def cells_of_expression(expression: SetExpression) -> list[Cell]:
    """The Venn cells (over ``expression.streams()``) that comprise ``E``.

    An element in cell ``c`` is in ``E`` iff ``E.contains`` holds for the
    membership pattern ``{name: name in c}``; since membership is the only
    thing set operators can observe, ``E`` equals the union of the returned
    cells exactly.
    """
    names = sorted(expression.streams())
    selected = []
    for cell in all_cells(names):
        membership = {name: name in cell for name in names}
        if expression.contains(membership):
            selected.append(cell)
    return selected


def expression_size_from_cells(
    expression: SetExpression, cell_sizes: Mapping[Cell, int]
) -> int:
    """Exact ``|E|`` from a map of Venn-cell sizes.

    ``cell_sizes`` may omit cells (treated as empty) and may include cells
    over a superset of the expression's streams; each provided cell is
    projected onto the expression's streams before the membership test, so
    ground truth computed over many streams remains usable for
    sub-expressions.
    """
    names = expression.streams()
    total = 0
    for cell, size in cell_sizes.items():
        membership = {name: name in cell for name in names}
        if expression.contains(membership):
            total += size
    return total
