"""Unit tests for the 2-level hash sketch synopsis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sketch import SketchHashes, SketchShape, TwoLevelHashSketch
from repro.errors import DomainError, IncompatibleSketchesError


def make_sketch(seed: int = 0, **shape_kwargs) -> TwoLevelHashSketch:
    shape = SketchShape(domain_bits=20, num_second_level=8, independence=4)
    if shape_kwargs:
        shape = SketchShape(**{**shape.__dict__, **shape_kwargs})
    hashes = SketchHashes.draw(np.random.default_rng(seed), shape)
    return TwoLevelHashSketch(hashes, shape)


class TestSketchShape:
    def test_defaults(self):
        shape = SketchShape()
        assert shape.domain_size == 2**30
        assert shape.counter_shape == (64, 16, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchShape(domain_bits=0)
        with pytest.raises(ValueError):
            SketchShape(domain_bits=61)
        with pytest.raises(ValueError):
            SketchShape(num_second_level=0)
        with pytest.raises(ValueError):
            SketchShape(independence=1)

    def test_counter_shape_tracks_s(self):
        assert SketchShape(num_second_level=5).counter_shape == (64, 5, 2)


class TestMaintenance:
    def test_fresh_sketch_is_empty(self):
        sketch = make_sketch()
        assert sketch.is_empty()
        assert sketch.counters.sum() == 0

    def test_single_insert_touches_s_counters(self):
        sketch = make_sketch()
        sketch.update(42, 1)
        assert int(sketch.counters.sum()) == sketch.shape.num_second_level

    def test_insert_then_delete_restores_zero_state(self):
        sketch = make_sketch()
        sketch.update(42, 1)
        sketch.update(42, -1)
        assert sketch.is_empty()
        assert int(np.abs(sketch.counters).sum()) == 0

    def test_deletion_invariance_headline_claim(self):
        """The sketch after insert+delete traffic equals the sketch that
        never saw the deleted items — the paper's robustness guarantee."""
        survivors = make_sketch(seed=3)
        with_churn = make_sketch(seed=3)
        rng = np.random.default_rng(20)
        keep = rng.choice(2**20, size=500, replace=False)
        churn = rng.choice(2**20, size=300, replace=False)
        for element in keep:
            survivors.update(int(element), 1)
            with_churn.update(int(element), 1)
        for element in churn:
            with_churn.update(int(element), 2)
        for element in churn:
            with_churn.update(int(element), -2)
        assert with_churn == survivors

    def test_update_batch_matches_scalar_updates(self):
        batched = make_sketch(seed=4)
        scalar = make_sketch(seed=4)
        rng = np.random.default_rng(21)
        elements = rng.integers(0, 2**20, size=300, dtype=np.uint64)
        counts = rng.integers(-3, 4, size=300)
        counts[counts == 0] = 1
        batched.update_batch(elements, counts)
        for element, count in zip(elements, counts):
            scalar.update(int(element), int(count))
        assert batched == scalar

    def test_update_batch_default_counts_are_single_insertions(self):
        batched = make_sketch(seed=5)
        scalar = make_sketch(seed=5)
        elements = np.arange(100, dtype=np.uint64)
        batched.update_batch(elements)
        for element in elements:
            scalar.update(int(element))
        assert batched == scalar

    def test_empty_batch_is_noop(self):
        sketch = make_sketch()
        sketch.update_batch(np.array([], dtype=np.uint64))
        assert sketch.is_empty()

    def test_domain_enforcement_scalar(self):
        sketch = make_sketch()
        with pytest.raises(DomainError):
            sketch.update(2**20, 1)
        with pytest.raises(DomainError):
            sketch.update(-1, 1)

    def test_domain_enforcement_batch(self):
        sketch = make_sketch()
        with pytest.raises(DomainError):
            sketch.update_batch(np.asarray([1, 2**20], dtype=np.uint64))

    def test_misaligned_counts_rejected(self):
        sketch = make_sketch()
        with pytest.raises(ValueError):
            sketch.update_batch(np.arange(3, dtype=np.uint64), np.array([1, 2]))

    def test_multiplicities_accumulate(self):
        sketch = make_sketch()
        sketch.update(7, 5)
        sketch.update(7, 3)
        level = sketch._level_of(7)
        assert sketch.bucket_total(level) == 8


class TestBucketAccessors:
    def test_bucket_total_counts_items_not_distinct(self):
        sketch = make_sketch()
        sketch.update(7, 4)
        level = sketch._level_of(7)
        assert sketch.bucket_total(level) == 4

    def test_bucket_shape(self):
        sketch = make_sketch()
        assert sketch.bucket(0).shape == (8, 2)

    def test_empty_bucket_total_zero(self):
        sketch = make_sketch()
        assert all(sketch.bucket_total(level) == 0 for level in range(64))


class TestAlgebra:
    def test_merge_equals_combined_stream(self):
        merged_target = make_sketch(seed=6)
        part_a = make_sketch(seed=6)
        part_b = make_sketch(seed=6)
        rng = np.random.default_rng(22)
        elements_a = rng.integers(0, 2**20, size=200, dtype=np.uint64)
        elements_b = rng.integers(0, 2**20, size=200, dtype=np.uint64)
        part_a.update_batch(elements_a)
        part_b.update_batch(elements_b)
        merged_target.update_batch(np.concatenate([elements_a, elements_b]))
        assert part_a.merged_with(part_b) == merged_target

    def test_merge_in_place(self):
        a = make_sketch(seed=7)
        b = make_sketch(seed=7)
        a.update(1, 1)
        b.update(2, 1)
        combined = a.merged_with(b)
        a.merge_in_place(b)
        assert a == combined

    def test_merge_requires_same_coins(self):
        a = make_sketch(seed=8)
        b = make_sketch(seed=9)
        with pytest.raises(IncompatibleSketchesError):
            a.merged_with(b)

    def test_copy_is_independent(self):
        a = make_sketch(seed=10)
        a.update(5, 1)
        b = a.copy()
        b.update(6, 1)
        assert a != b
        assert not a.is_empty()

    def test_equality_semantics(self):
        a = make_sketch(seed=11)
        b = make_sketch(seed=11)
        assert a == b
        a.update(3, 1)
        assert a != b
        b.update(3, 1)
        assert a == b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make_sketch())

    def test_eq_other_types(self):
        assert make_sketch() != "not a sketch"


class TestSerialisation:
    def test_roundtrip(self):
        original = make_sketch(seed=12)
        original.update_batch(np.arange(100, dtype=np.uint64))
        payload = original.to_bytes()
        restored = TwoLevelHashSketch.from_bytes(
            payload, original.hashes, original.shape
        )
        assert restored == original

    def test_roundtrip_preserves_negative_free_invariant(self):
        original = make_sketch(seed=13)
        original.update(1, 5)
        original.update(1, -2)
        restored = TwoLevelHashSketch.from_bytes(
            original.to_bytes(), original.hashes, original.shape
        )
        assert restored == original

    def test_wrong_length_rejected(self):
        sketch = make_sketch(seed=14)
        with pytest.raises(IncompatibleSketchesError):
            TwoLevelHashSketch.from_bytes(b"\x00" * 7, sketch.hashes, sketch.shape)

    def test_restored_counters_are_writable(self):
        original = make_sketch(seed=15)
        restored = TwoLevelHashSketch.from_bytes(
            original.to_bytes(), original.hashes, original.shape
        )
        restored.update(1, 1)  # must not raise (frombuffer gives read-only)


class TestConstruction:
    def test_wrong_counter_shape_rejected(self):
        shape = SketchShape(domain_bits=20, num_second_level=8, independence=4)
        hashes = SketchHashes.draw(np.random.default_rng(0), shape)
        with pytest.raises(IncompatibleSketchesError):
            TwoLevelHashSketch(hashes, shape, counters=np.zeros((2, 2, 2), dtype=np.int64))

    def test_bank_size_mismatch_rejected(self):
        shape_a = SketchShape(domain_bits=20, num_second_level=8, independence=4)
        shape_b = SketchShape(domain_bits=20, num_second_level=4, independence=4)
        hashes = SketchHashes.draw(np.random.default_rng(0), shape_a)
        with pytest.raises(IncompatibleSketchesError):
            TwoLevelHashSketch(hashes, shape_b)

    def test_shape_inferred_from_hashes(self):
        shape = SketchShape(domain_bits=30, num_second_level=8, independence=4)
        hashes = SketchHashes.draw(np.random.default_rng(0), shape)
        sketch = TwoLevelHashSketch(hashes)
        assert sketch.shape.num_second_level == 8
        assert sketch.shape.independence == 4
