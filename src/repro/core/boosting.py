"""Median-of-groups confidence boosting.

The classical route to the ``log(1/δ)`` confidence factor: split the ``r``
maintained sketches into ``g`` disjoint groups, estimate within each group
independently, and return the **median** of the group estimates.  A single
averaged estimate concentrates as ``1/√r`` but has polynomial tails; the
median of groups fails only when half the groups fail, driving the error
probability down exponentially in ``g``.

This composes with any of the library's estimators because sketch
families are prefix/slice-stable: group ``j`` is simply the contiguous
slice ``[j·(r/g), (j+1)·(r/g))`` of each stream's family, and slices of
same-spec families stay mutually compatible.

``benchmarks/bench_boosting.py`` measures the tail-error reduction.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, check_same_coins
from repro.errors import EstimationError
from repro.expr.ast import SetExpression

__all__ = ["family_groups", "boosted_estimate", "estimate_expression_boosted"]


def family_groups(
    family: SketchFamily, num_groups: int
) -> list[SketchFamily]:
    """Split a family into ``num_groups`` disjoint same-size sub-families.

    Each group is a zero-copy view; the group size is ``r // num_groups``
    (trailing sketches beyond ``g·size`` are unused).
    """
    if num_groups < 1:
        raise ValueError("num_groups must be positive")
    group_size = family.num_sketches // num_groups
    if group_size < 1:
        raise ValueError(
            f"cannot split {family.num_sketches} sketches into "
            f"{num_groups} non-empty groups"
        )
    return [
        family.slice(index * group_size, (index + 1) * group_size)
        for index in range(num_groups)
    ]


def boosted_estimate(
    families: Mapping[str, SketchFamily],
    estimator: Callable[[Mapping[str, SketchFamily]], float],
    num_groups: int = 5,
) -> float:
    """Median over ``num_groups`` disjoint-group runs of ``estimator``.

    ``estimator`` receives a mapping of same-sized group families (one
    per stream) and returns a float.  Groups where the estimator raises
    :class:`EstimationError` are skipped; if every group fails, the error
    propagates.
    """
    check_same_coins(*families.values())
    grouped = {
        name: family_groups(family, num_groups)
        for name, family in families.items()
    }
    estimates = []
    last_error: EstimationError | None = None
    for index in range(num_groups):
        group_families = {name: groups[index] for name, groups in grouped.items()}
        try:
            estimates.append(float(estimator(group_families)))
        except EstimationError as error:
            last_error = error
    if not estimates:
        assert last_error is not None
        raise last_error
    return float(np.median(estimates))


def estimate_expression_boosted(
    expression: SetExpression | str,
    families: Mapping[str, SketchFamily],
    epsilon: float = 0.1,
    num_groups: int = 5,
) -> float:
    """Median-boosted set-expression cardinality estimate."""

    def estimator(group_families: Mapping[str, SketchFamily]) -> float:
        return estimate_expression(expression, group_families, epsilon).value

    return boosted_estimate(families, estimator, num_groups)
