"""Paper-vs-measured comparison of sweep results.

Turns a :class:`~repro.experiments.runner.SweepResult` into verdicts
against the published anchor points (:mod:`repro.experiments.reference`)
and into CSV for external plotting.  ``EXPERIMENTS.md`` is written from
this module's output.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.experiments.reference import PaperAnchor, anchors_for
from repro.experiments.runner import SweepResult

__all__ = ["AnchorVerdict", "check_anchors", "to_csv"]


@dataclass(frozen=True)
class AnchorVerdict:
    """One anchor's outcome on a measured sweep."""

    anchor: PaperAnchor
    measured_max_error: float | None
    holds: bool | None  # None when the sweep did not cover the anchor

    def describe(self) -> str:
        """One-line HOLDS/MISSES/SKIP rendering of the verdict."""
        if self.holds is None:
            return (
                f"SKIP  ({self.anchor.claim}) — sweep does not include "
                f"{self.anchor.sketch_count} sketches"
            )
        status = "HOLDS" if self.holds else "MISSES"
        return (
            f"{status} measured worst-series error "
            f"{100 * self.measured_max_error:.1f}% vs paper bound "
            f"{100 * self.anchor.max_error:.0f}% at "
            f"{self.anchor.sketch_count} sketches — {self.anchor.claim}"
        )


def check_anchors(result: SweepResult) -> list[AnchorVerdict]:
    """Evaluate every published claim that touches this figure.

    An anchor bounds the error at a given sketch count; the measured
    value compared is the *worst* series (target size) at that count,
    which is the conservative reading of "across the tested sizes".
    """
    verdicts = []
    for anchor in anchors_for(result.config.name):
        if anchor.sketch_count not in result.config.sketch_counts:
            verdicts.append(AnchorVerdict(anchor, None, None))
            continue
        index = result.config.sketch_counts.index(anchor.sketch_count)
        measured = max(series.errors[index] for series in result.series)
        verdicts.append(AnchorVerdict(anchor, measured, measured <= anchor.max_error))
    return verdicts


def to_csv(result: SweepResult) -> str:
    """CSV rows: ``sketches,target_size,target_ratio,trimmed_error``."""
    buffer = io.StringIO()
    buffer.write("sketches,target_size,target_ratio,trimmed_error\n")
    for series in result.series:
        for count, error in zip(series.sketch_counts, series.errors):
            buffer.write(
                f"{count},{series.target_size},{series.target_ratio:g},"
                f"{error:.6f}\n"
            )
    return buffer.getvalue()
