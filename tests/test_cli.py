"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_flags(self):
        args = build_parser().parse_args(
            ["generate", "--expression", "A & B", "--out", "x.log"]
        )
        assert args.command == "generate"
        assert args.expression == "A & B"

    def test_query_accumulates_expressions(self):
        args = build_parser().parse_args(
            [
                "query",
                "--checkpoint", "ckpt",
                "--expression", "A & B",
                "--expression", "A - B",
            ]
        )
        assert args.expression == ["A & B", "A - B"]


class TestServeShipParser:
    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "1234", "--max-deltas", "5",
             "--checkpoint", "ckpt", "--checkpoint-every", "7"]
        )
        assert args.command == "serve"
        assert args.port == 1234
        assert args.max_deltas == 5
        assert args.checkpoint_every == 7

    def test_ship_flags(self):
        args = build_parser().parse_args(
            ["ship", "--log", "x.log", "--site-id", "edge-1", "--every", "128"]
        )
        assert args.command == "ship"
        assert args.site_id == "edge-1"
        assert args.every == 128


class TestServeShipPipeline:
    def test_serve_ship_query_round_trip(self, tmp_path, capsys):
        """A coordinator served by the CLI, fed by a CLI site, leaves a
        checkpoint the query command can answer from."""
        import socket
        import threading

        # Pre-import the net package: the serve thread and the shipping
        # main thread would otherwise race to initialise it concurrently.
        import repro.streams.net.coordinator  # noqa: F401
        import repro.streams.net.site  # noqa: F401
        from repro.streams.sources import save_updates
        from repro.streams.updates import deletions, insertions

        log = tmp_path / "edge.log"
        save_updates(
            log, insertions("A", range(64)) + deletions("A", range(8))
        )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        checkpoint = tmp_path / "ckpt"
        spec_args = [
            "--sketches", "32", "--second-level", "8",
            "--independence", "4", "--domain-bits", "16",
        ]

        serve_result: dict[str, int] = {}

        def serve() -> None:
            serve_result["code"] = main(
                [
                    "serve",
                    "--port", str(port),
                    "--checkpoint", str(checkpoint),
                    "--checkpoint-every", "1",
                    "--max-deltas", "1",
                    *spec_args,
                ]
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            assert main(
                [
                    "ship",
                    "--log", str(log),
                    "--port", str(port),
                    "--site-id", "edge",
                    *spec_args,
                ]
            ) == 0
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert serve_result["code"] == 0
        output = capsys.readouterr().out
        assert "shipped 72 updates" in output
        assert "deltas applied" in output

        assert main(
            [
                "query",
                "--checkpoint", str(checkpoint),
                "--expression", "A",
                "--epsilon", "0.3",
            ]
        ) == 0
        assert "|A|" in capsys.readouterr().out

    def test_serve_two_level_tree(self, tmp_path, capsys):
        """A 2-level federation tree, all CLI: two leaf coordinators
        (one folding into a 2-shard engine) re-export to a root, whose
        checkpoint answers a cross-leaf expression.  Single-core: every
        server runs its own event loop in a thread, no parallel
        executors."""
        import socket
        import threading

        import repro.streams.net.coordinator  # noqa: F401
        import repro.streams.net.site  # noqa: F401
        from repro.streams.sources import save_updates
        from repro.streams.updates import insertions

        log_a = tmp_path / "edge-a.log"
        log_b = tmp_path / "edge-b.log"
        save_updates(log_a, insertions("A", range(64)))
        save_updates(log_b, insertions("B", range(32, 96)))
        ports = []
        for _ in range(3):
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                ports.append(probe.getsockname()[1])
        root_port, leaf1_port, leaf2_port = ports
        root_ckpt = tmp_path / "root-ckpt"
        leaf2_ckpt = tmp_path / "leaf2-ckpt"
        spec_args = [
            "--sketches", "32", "--second-level", "8",
            "--independence", "4", "--domain-bits", "16",
        ]

        codes: dict[str, int] = {}

        def run_serve(name: str, argv: list[str]) -> threading.Thread:
            def target() -> None:
                codes[name] = main(["serve", *argv, *spec_args])

            thread = threading.Thread(target=target, daemon=True)
            thread.start()
            return thread

        # Root exits after both leaves' shutdown flushes arrive.
        root = run_serve("root", [
            "--port", str(root_port),
            "--checkpoint", str(root_ckpt), "--checkpoint-every", "1",
            "--max-deltas", "2",
        ])
        # Leaf 1: sharded fold, no checkpoint (direct uplink cut).
        leaf1 = run_serve("leaf1", [
            "--port", str(leaf1_port), "--shards", "2",
            "--parent", f"127.0.0.1:{root_port}",
            "--uplink-id", "leaf-a", "--uplink-every", "0",
            "--max-deltas", "1",
        ])
        # Leaf 2: flat fold with a checkpoint (cut-inside-checkpoint).
        leaf2 = run_serve("leaf2", [
            "--port", str(leaf2_port),
            "--parent", f"127.0.0.1:{root_port}",
            "--uplink-id", "leaf-b", "--uplink-every", "0",
            "--checkpoint", str(leaf2_ckpt), "--checkpoint-every", "1",
            "--max-deltas", "1",
        ])
        try:
            for log, port, site in (
                (log_a, leaf1_port, "edge-a"),
                (log_b, leaf2_port, "edge-b"),
            ):
                assert main([
                    "ship", "--log", str(log), "--port", str(port),
                    "--site-id", site, *spec_args,
                ]) == 0
        finally:
            for thread in (leaf1, leaf2, root):
                thread.join(timeout=15)
        assert not any(t.is_alive() for t in (leaf1, leaf2, root))
        assert codes == {"root": 0, "leaf1": 0, "leaf2": 0}
        output = capsys.readouterr().out
        assert "uplink leaf-a" in output
        assert "uplink leaf-b" in output
        assert "deltas shipped upstream" in output

        # The root folded both leaves: a cross-leaf expression answers
        # from its checkpoint.
        assert main([
            "query", "--checkpoint", str(root_ckpt),
            "--expression", "A & B", "--epsilon", "0.3",
        ]) == 0
        assert "|A & B|" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_prints_recommendation(self, capsys):
        assert main(["plan", "--epsilon", "0.3", "--delta", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "sketches" in output


class TestSimplifyCommand:
    def test_reports_analysis(self, capsys):
        assert main(["simplify", "--expression", "(A & B) - (A | B)"]) == 0
        output = capsys.readouterr().out
        assert "unsatisfiable" in output
        assert "simplified" in output

    def test_redundant_stream_dropped(self, capsys):
        main(["simplify", "--expression", "(A & B) | (A - B)"])
        output = capsys.readouterr().out
        assert "simplified : A" in output


class TestExactCommand:
    def test_ground_truth_from_log(self, tmp_path, capsys):
        from repro.streams.sources import save_updates
        from repro.streams.updates import deletions, insertions

        log_path = tmp_path / "log"
        save_updates(
            log_path,
            insertions("A", [1, 2, 3])
            + insertions("B", [2, 3, 4])
            + deletions("B", [2]),
        )
        assert main(
            [
                "exact",
                "--log", str(log_path),
                "--expression", "A & B",
                "--expression", "A - B",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "|A & B| = 1" in output
        assert "|A - B| = 2" in output


class TestFullPipeline:
    def test_generate_ingest_query(self, tmp_path, capsys):
        log_path = tmp_path / "updates.log.gz"
        checkpoint = tmp_path / "synopses"

        assert main(
            [
                "generate",
                "--expression", "A & B",
                "--union-size", "2048",
                "--target-ratio", "0.5",
                "--churn", "0.25",
                "--domain-bits", "22",
                "--seed", "3",
                "--out", str(log_path),
            ]
        ) == 0
        generated = capsys.readouterr().out
        assert "wrote" in generated
        # The generator printed the exact target; recover it for checking.
        exact_value = int(
            generated.split("exact |A & B| = ")[1].split(" ")[0].replace(",", "")
        )

        assert main(
            [
                "ingest",
                "--log", str(log_path),
                "--checkpoint", str(checkpoint),
                "--sketches", "192",
                "--domain-bits", "22",
            ]
        ) == 0
        assert "ingested" in capsys.readouterr().out
        assert (checkpoint / "manifest.json").is_file()

        assert main(
            [
                "query",
                "--checkpoint", str(checkpoint),
                "--expression", "A & B",
                "--epsilon", "0.15",
            ]
        ) == 0
        queried = capsys.readouterr().out
        assert "|A & B|" in queried
        estimate = float(
            queried.split("≈ ")[1].split(" ")[0].replace(",", "")
        )
        assert abs(estimate - exact_value) / exact_value < 0.6

    def test_query_with_explain(self, tmp_path, capsys):
        log_path = tmp_path / "updates.log"
        checkpoint = tmp_path / "ckpt"
        main(
            [
                "generate",
                "--expression", "(A - B) & C",
                "--union-size", "1024",
                "--target-ratio", "0.25",
                "--domain-bits", "22",
                "--out", str(log_path),
            ]
        )
        capsys.readouterr()
        main(
            [
                "ingest",
                "--log", str(log_path),
                "--checkpoint", str(checkpoint),
                "--sketches", "128",
                "--domain-bits", "22",
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "query",
                "--checkpoint", str(checkpoint),
                "--expression", "(A - B) & C",
                "--explain",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "subexpression" in output
        assert "(A - B)" in output


class TestCsvIngest:
    def test_ingest_accepts_csv_logs(self, tmp_path, capsys):
        csv_path = tmp_path / "flows.csv"
        rows = ["stream,element,delta"]
        rows += [f"R1,{i},1" for i in range(200)]
        rows += [f"R2,{i},1" for i in range(100, 300)]
        csv_path.write_text("\n".join(rows) + "\n")

        checkpoint = tmp_path / "ckpt"
        assert main(
            [
                "ingest",
                "--log", str(csv_path),
                "--checkpoint", str(checkpoint),
                "--sketches", "128",
                "--domain-bits", "20",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "query",
                "--checkpoint", str(checkpoint),
                "--expression", "R1 & R2",
                "--epsilon", "0.3",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "|R1 & R2|" in output
