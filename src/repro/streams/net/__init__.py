"""Asyncio network transport for the distributed delta protocol.

The distributed stored-coins model (:mod:`repro.streams.distributed`)
moved sites onto delta exports — counter diffs since the last export,
tagged with a site id and a monotone sequence.  This package puts those
exports on the wire:

* :mod:`~repro.streams.net.protocol` — length-framed messages (a JSON
  header plus raw counter blobs) and the asyncio read/write helpers;
* :mod:`~repro.streams.net.codec` — wire-format v2: the sparse
  varint-delta payload codec with optional zlib, picked per blob by
  measured size and negotiated per session in the hello/welcome
  handshake (v1 peers transparently stay dense);
* :mod:`~repro.streams.net.coordinator` —
  :class:`~repro.streams.net.coordinator.CoordinatorServer`, an asyncio
  TCP server that folds incoming deltas into a live
  :class:`~repro.streams.distributed.Coordinator` by sketch linearity,
  periodically checkpoints (counters plus the per-site sequence map)
  through :mod:`repro.streams.checkpoint`, and re-syncs reconnecting
  sites from their last applied sequence;
* :mod:`~repro.streams.net.site` —
  :class:`~repro.streams.net.site.SiteClient`, the shipping side:
  connect/send timeouts, bounded exponential backoff with jitter,
  reconnection, and retained-export replay.

Because exports are idempotent (sequence-tagged deltas), every failure
mode — duplicate delivery, dropped connection mid-frame, coordinator
restart from a checkpoint — converges to the same merged synopses an
unfailed run produces, bit for bit.  This container's single core means
the design goal is *concurrency* (many sites overlapping I/O on one
event loop), not parallel speedup.

Coordinators compose into **federation trees**: a
:class:`~repro.streams.net.coordinator.CoordinatorServer` can fold into
a :class:`~repro.streams.sharded.ShardedEngine` (``engine_factory=``)
and re-export its aggregated deltas to a parent coordinator through an
uplink :class:`~repro.streams.net.site.SiteClient` (``parent_port=``) —
the same sequence/retention/re-sync machinery at every hop, so the
whole tree inherits the per-hop exactly-once-in-effect guarantees.
"""

from repro.streams.net.codec import (
    DENSE_ONLY,
    PREFERRED_ENCODINGS,
    WIRE_ENCODINGS,
    CodecError,
)
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.protocol import (
    PROTOCOL_VERSION,
    ROLES,
    SUPPORTED_VERSIONS,
    ProtocolError,
)
from repro.streams.net.site import SiteClient, SiteConnectionError

__all__ = [
    "CoordinatorServer",
    "SiteClient",
    "SiteConnectionError",
    "ProtocolError",
    "CodecError",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ROLES",
    "WIRE_ENCODINGS",
    "PREFERRED_ENCODINGS",
    "DENSE_ONLY",
]
