"""The 2-level hash sketch synopsis (Section 3.1 of the paper).

A :class:`TwoLevelHashSketch` summarises one update stream rendering a
multi-set over the integer domain ``[M]``.  Conceptually it is the
three-dimensional counter array of Figure 3:

* **first level** — ``LSB(h(e))`` places element ``e`` in one of
  ``Theta(log M)`` buckets with geometrically decreasing probability;
* **second level** — each of ``s`` pairwise-independent binary hashes
  ``g_j`` splits the bucket's elements over a ``{0, 1}`` counter pair.

Each update ``<e, +/-v>`` adds ``v`` (or ``-v``) to the ``s`` counters
``X[LSB(h(e)), j, g_j(e)]``.  Because the counters are a *linear* function
of the element-frequency vector, the sketch is

* **deletion-invariant** — inserting and then deleting an element leaves
  the sketch bit-for-bit identical to one that never saw the element; and
* **mergeable** — the sketch of the multiset sum of two streams is the
  entrywise sum of their sketches (the basis of the distributed model in
  :mod:`repro.streams.distributed`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DomainError, IncompatibleSketchesError
from repro.hashing.families import (
    BinaryHashBank,
    PolynomialHash,
    random_binary_bank,
    random_polynomial_hash,
)
from repro.hashing.lsb import NUM_LEVELS, lsb_array

__all__ = [
    "SketchShape",
    "SketchHashes",
    "TwoLevelHashSketch",
    "scatter_add",
    "segmented_add",
]

# Above this total weight, float64 bincount accumulation could round; the
# exact (slower) sort-by-cell segmented-sum path is used instead.
_EXACT_FLOAT_LIMIT = 1 << 52


@dataclass(frozen=True)
class SketchShape:
    """Structural parameters of a 2-level hash sketch.

    ``domain_bits`` fixes the element domain ``[0, 2**domain_bits)`` (the
    paper's ``[M]``); ``num_second_level`` is the paper's ``s``;
    ``independence`` is the ``t`` of the ``t``-wise independent first-level
    hash family (Section 3.6 suggests ``t = Theta(log 1/eps)``).
    """

    domain_bits: int = 30
    num_second_level: int = 16
    independence: int = 8

    def __post_init__(self) -> None:
        if not (1 <= self.domain_bits <= 60):
            raise ValueError("domain_bits must be in [1, 60]")
        if self.num_second_level < 1:
            raise ValueError("need at least one second-level hash")
        if self.independence < 2:
            raise ValueError("first-level independence must be at least 2")

    @property
    def domain_size(self) -> int:
        """The ``M`` of the paper: elements must lie in ``[0, M)``."""
        return 1 << self.domain_bits

    @property
    def num_levels(self) -> int:
        """Number of first-level buckets maintained."""
        return NUM_LEVELS

    @property
    def counter_shape(self) -> tuple[int, int, int]:
        """Shape of the counter array: ``(levels, s, 2)``."""
        return (NUM_LEVELS, self.num_second_level, 2)


@dataclass(frozen=True)
class SketchHashes:
    """The concrete hash functions of one sketch instance.

    Two sketches are *comparable* (usable together in an estimator) exactly
    when they share equal ``SketchHashes`` — the same first-level
    polynomial and the same second-level bank.
    """

    first_level: PolynomialHash
    second_level: BinaryHashBank

    @classmethod
    def draw(cls, rng: np.random.Generator, shape: SketchShape) -> "SketchHashes":
        """Draw a fresh, independent pair of hash levels from ``rng``."""
        return cls(
            first_level=random_polynomial_hash(rng, shape.independence),
            second_level=random_binary_bank(rng, shape.num_second_level),
        )


def segmented_add(target: np.ndarray, indices: np.ndarray, weights: np.ndarray) -> None:
    """Exact int64 duplicate-safe scatter-add: sort by cell, sum segments.

    Semantically ``np.add.at(target, indices, weights)`` — duplicate
    indices accumulate — but built from vector primitives: a stable
    argsort groups equal indices, ``np.add.reduceat`` sums each run in
    int64 (no float rounding window to respect), and one non-duplicated
    fancy-index add lands the per-cell sums.  Several times faster than
    ``np.add.at``'s per-element inner loop on batch-sized inputs, and
    bit-identical to it (integer addition is associative/commutative, so
    reordering the adds cannot change the result).
    """
    if indices.size == 0:
        return
    order = np.argsort(indices, kind="stable")
    sorted_indices = indices[order]
    boundaries = np.empty(sorted_indices.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_indices[1:], sorted_indices[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    sums = np.add.reduceat(np.asarray(weights, dtype=np.int64)[order], starts)
    target[sorted_indices[starts]] += sums


def scatter_add(target: np.ndarray, indices: np.ndarray, weights: np.ndarray | None) -> None:
    """Add ``weights`` into ``target`` (flat, int64) at ``indices``.

    Uses ``np.bincount`` (fast, float64 accumulation) whenever the total
    absolute weight provably fits the float53 exact-integer window, and
    falls back to the exact :func:`segmented_add` otherwise.
    """
    if weights is None:
        target += np.bincount(indices, minlength=target.size)
        return
    if np.abs(weights, dtype=np.float64).sum() < _EXACT_FLOAT_LIMIT:
        binned = np.bincount(indices, weights=weights.astype(np.float64), minlength=target.size)
        target += np.rint(binned).astype(np.int64)
    else:
        segmented_add(target, indices, weights)


class TwoLevelHashSketch:
    """A 2-level hash sketch over one update stream.

    Parameters
    ----------
    hashes:
        The first-/second-level hash functions.  Pass the same object (or
        an equal one) for every stream that should be comparable.
    shape:
        Structural parameters; defaults match the library-wide defaults.
    counters:
        Optional pre-existing counter array to *wrap* (shared, not copied)
        — used by :class:`repro.core.family.SketchFamily` to expose its
        stacked storage as individual sketches.
    """

    __slots__ = ("hashes", "shape", "counters")

    def __init__(
        self,
        hashes: SketchHashes,
        shape: SketchShape | None = None,
        counters: np.ndarray | None = None,
    ) -> None:
        self.shape = shape if shape is not None else SketchShape(
            num_second_level=hashes.second_level.size,
            independence=hashes.first_level.independence,
        )
        if hashes.second_level.size != self.shape.num_second_level:
            raise IncompatibleSketchesError(
                "second-level bank size does not match the sketch shape"
            )
        self.hashes = hashes
        if counters is None:
            counters = np.zeros(self.shape.counter_shape, dtype=np.int64)
        elif counters.shape != self.shape.counter_shape:
            raise IncompatibleSketchesError(
                f"counter array has shape {counters.shape}, "
                f"expected {self.shape.counter_shape}"
            )
        self.counters = counters

    # -- maintenance ------------------------------------------------------

    def update(self, element: int, count: int = 1) -> None:
        """Process one update ``<element, +/-count>``.

        ``count`` may be negative (a deletion); the caller is responsible
        for deletion legality, exactly as in the paper's stream model.
        """
        self._check_domain(element)
        self.update_batch(
            np.asarray([element], dtype=np.uint64),
            np.asarray([count], dtype=np.int64),
        )

    def update_batch(self, elements, counts=None) -> None:
        """Vectorised maintenance over many updates at once.

        ``elements`` is an integer array; ``counts`` (optional) the signed
        frequency delta per element, defaulting to one insertion each.
        Exactly equivalent to calling :meth:`update` per element.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        if int(elements.max()) >= self.shape.domain_size:
            raise DomainError("batch contains elements outside [0, M)")
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != elements.shape:
                raise ValueError("counts must align with elements")

        s = self.shape.num_second_level
        levels = lsb_array(self.hashes.first_level(elements))  # (n,)
        bits = self.hashes.second_level.bits(elements).astype(np.int64)  # (n, s)
        # Flat index into (L, s, 2): ((level * s) + j) * 2 + bit.
        flat = (levels[:, None] * s + np.arange(s)[None, :]) * 2 + bits
        target = self.counters.reshape(-1)
        if counts is None:
            scatter_add(target, flat.reshape(-1), None)
            return
        first = int(counts[0])
        if bool((counts == first).all()):
            # Uniform deltas (every tuple inserts, or every tuple deletes,
            # the same magnitude): one unweighted histogram scaled once is
            # exact in int64 and skips the weight materialisation.
            target += np.bincount(flat.reshape(-1), minlength=target.size) * first
        else:
            scatter_add(target, flat.reshape(-1), np.repeat(counts, s))

    # -- bucket accessors used by the property checks ---------------------

    def bucket_total(self, level: int) -> int:
        """Net number of stream items whose element hashes to ``level``.

        Every update lands in exactly one cell of each second-level pair,
        so the first pair's sum is the bucket's total item count (the
        emptiness test ``X[i,1,0] + X[i,1,1] = 0`` of the paper).
        """
        return int(self.counters[level, 0, 0] + self.counters[level, 0, 1])

    def bucket(self, level: int) -> np.ndarray:
        """The ``(s, 2)`` counter slab of one first-level bucket."""
        return self.counters[level]

    # -- algebra -----------------------------------------------------------

    def merged_with(self, other: "TwoLevelHashSketch") -> "TwoLevelHashSketch":
        """Sketch of the multiset sum of the two underlying streams."""
        self._check_compatible(other)
        return TwoLevelHashSketch(self.hashes, self.shape, self.counters + other.counters)

    def merge_in_place(self, other: "TwoLevelHashSketch") -> None:
        """Fold ``other`` into this sketch (coordinator-side combine)."""
        self._check_compatible(other)
        self.counters += other.counters

    def copy(self) -> "TwoLevelHashSketch":
        """A deep copy with independent counter storage."""
        return TwoLevelHashSketch(self.hashes, self.shape, self.counters.copy())

    def is_empty(self) -> bool:
        """True iff the summarised multiset has no items (net)."""
        return int(self.counters[:, 0, :].sum()) == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoLevelHashSketch):
            return NotImplemented
        return (
            self.hashes == other.hashes
            and self.shape == other.shape
            and np.array_equal(self.counters, other.counters)
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("TwoLevelHashSketch is mutable and unhashable")

    # -- serialisation (synopses ship from sites to the coordinator) ------

    def to_bytes(self) -> bytes:
        """Serialise the counter state (hash seeds travel separately)."""
        return self.counters.astype("<i8").tobytes()

    @classmethod
    def from_bytes(
        cls, payload: bytes, hashes: SketchHashes, shape: SketchShape | None = None
    ) -> "TwoLevelHashSketch":
        """Rebuild a sketch from :meth:`to_bytes` output plus its hashes."""
        sketch = cls(hashes, shape)
        expected = sketch.counters.size * 8
        if len(payload) != expected:
            raise IncompatibleSketchesError(
                f"payload is {len(payload)} bytes, expected {expected}"
            )
        counters = np.frombuffer(payload, dtype="<i8").astype(np.int64)
        sketch.counters = counters.reshape(sketch.shape.counter_shape).copy()
        return sketch

    # -- internals ---------------------------------------------------------

    def _level_of(self, element: int) -> int:
        hashed = self.hashes.first_level(element)
        return int(lsb_array(np.asarray([hashed], dtype=np.uint64))[0])

    def _check_domain(self, element: int) -> None:
        if not (0 <= element < self.shape.domain_size):
            raise DomainError(
                f"element {element} outside domain [0, {self.shape.domain_size})"
            )

    def _check_compatible(self, other: "TwoLevelHashSketch") -> None:
        if self.hashes != other.hashes or self.shape != other.shape:
            raise IncompatibleSketchesError(
                "sketches use different hash functions or shapes"
            )
