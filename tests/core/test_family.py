"""Unit tests for sketch families (stacked synopses + shared coins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchFamily, SketchSpec, check_same_coins
from repro.core.sketch import SketchShape
from repro.errors import IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=4)


def spec(num_sketches: int = 8, seed: int = 0) -> SketchSpec:
    return SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SketchSpec(num_sketches=0)

    def test_with_num_sketches_preserves_coins(self):
        original = spec(8, seed=5)
        resized = original.with_num_sketches(4)
        assert resized.seed == original.seed
        assert resized.shape == original.shape
        assert resized.num_sketches == 4

    def test_hashes_deterministic(self):
        assert spec(4, seed=7).hashes() == spec(4, seed=7).hashes()

    def test_hashes_differ_across_seeds(self):
        assert spec(4, seed=7).hashes() != spec(4, seed=8).hashes()

    def test_hashes_differ_across_indices(self):
        drawn = spec(4, seed=7).hashes()
        assert len({h.first_level for h in drawn}) == 4

    def test_prefix_stability_of_hash_derivation(self):
        """The first k hash functions never depend on the family size."""
        large = spec(16, seed=9).hashes()
        small = spec(4, seed=9).hashes()
        assert large[:4] == small


class TestFamilyStructure:
    def test_build_empty(self):
        family = spec(8).build()
        assert len(family) == 8
        assert family.is_empty()
        assert family.counters.shape == (8,) + SHAPE.counter_shape

    def test_sketch_views_share_memory(self):
        family = spec(4).build()
        view = family.sketch(0)
        view.update(1, 1)
        assert not family.is_empty()

    def test_iteration_yields_all_members(self):
        family = spec(5).build()
        assert len(list(family)) == 5

    def test_wrong_counters_shape_rejected(self):
        with pytest.raises(IncompatibleSketchesError):
            SketchFamily(spec(4), counters=np.zeros((3, 64, 8, 2), dtype=np.int64))


class TestFamilyMaintenance:
    def test_update_hits_every_member(self):
        family = spec(4).build()
        family.update(7, 1)
        for sketch in family:
            assert not sketch.is_empty()

    def test_family_batch_matches_per_sketch_batch(self):
        family = spec(4, seed=1).build()
        rng = np.random.default_rng(30)
        elements = rng.integers(0, 2**20, size=200, dtype=np.uint64)
        counts = rng.integers(1, 4, size=200)
        family.update_batch(elements, counts)
        for index in range(4):
            solo = spec(4, seed=1).build().sketch(index)
            solo.update_batch(elements, counts)
            assert family.sketch(index) == solo

    def test_scalar_and_batch_agree(self):
        a = spec(3, seed=2).build()
        b = spec(3, seed=2).build()
        elements = [5, 9, 5, 100]
        for element in elements:
            a.update(element, 1)
        b.update_batch(np.asarray(elements, dtype=np.uint64))
        assert a == b

    def test_empty_batch_noop(self):
        family = spec(2).build()
        family.update_batch([])
        assert family.is_empty()


class TestPrefix:
    def test_prefix_equals_smaller_family(self):
        """A prefix view is indistinguishable from a family maintained at
        the smaller size all along (prefix-stable coins + shared data)."""
        large = spec(8, seed=3).build()
        small = spec(3, seed=3).build()
        rng = np.random.default_rng(31)
        elements = rng.integers(0, 2**20, size=500, dtype=np.uint64)
        large.update_batch(elements)
        small.update_batch(elements)
        assert large.prefix(3) == small

    def test_prefix_shares_counters(self):
        family = spec(4).build()
        prefix = family.prefix(2)
        family.update(1, 1)
        assert not prefix.is_empty()

    def test_prefix_bounds(self):
        family = spec(4).build()
        with pytest.raises(ValueError):
            family.prefix(0)
        with pytest.raises(ValueError):
            family.prefix(5)

    def test_full_prefix_is_equal(self):
        family = spec(4).build()
        family.update(9, 2)
        assert family.prefix(4) == family


class TestLevelAggregates:
    def test_level_totals_shape(self):
        family = spec(6).build()
        assert family.level_totals().shape == (6, 64)

    def test_level_totals_count_items(self):
        family = spec(4).build()
        family.update(7, 5)
        totals = family.level_totals()
        assert (totals.sum(axis=1) == 5).all()

    def test_level_slab_shape(self):
        family = spec(6).build()
        assert family.level_slab(3).shape == (6, 8, 2)


class TestFamilyAlgebra:
    def test_merge_linearity(self):
        whole = spec(4, seed=4).build()
        part_a = spec(4, seed=4).build()
        part_b = spec(4, seed=4).build()
        rng = np.random.default_rng(32)
        elements_a = rng.integers(0, 2**20, size=100, dtype=np.uint64)
        elements_b = rng.integers(0, 2**20, size=100, dtype=np.uint64)
        part_a.update_batch(elements_a)
        part_b.update_batch(elements_b)
        whole.update_batch(np.concatenate([elements_a, elements_b]))
        assert part_a.merged_with(part_b) == whole

    def test_merge_requires_same_spec(self):
        with pytest.raises(IncompatibleSketchesError):
            spec(4, seed=1).build().merged_with(spec(4, seed=2).build())

    def test_merge_in_place(self):
        a = spec(2).build()
        b = spec(2).build()
        a.update(1, 1)
        b.update(2, 1)
        merged = a.merged_with(b)
        a.merge_in_place(b)
        assert a == merged

    def test_copy_independent(self):
        a = spec(2).build()
        b = a.copy()
        a.update(1, 1)
        assert b.is_empty()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(spec(2).build())


class TestFamilySerialisation:
    def test_roundtrip(self):
        family = spec(4, seed=6).build()
        family.update_batch(np.arange(50, dtype=np.uint64))
        restored = SketchFamily.from_bytes(family.to_bytes(), family.spec)
        assert restored == family

    def test_wrong_length_rejected(self):
        with pytest.raises(IncompatibleSketchesError):
            SketchFamily.from_bytes(b"123", spec(2))

    def test_restored_counters_writable(self):
        family = spec(2).build()
        restored = SketchFamily.from_bytes(family.to_bytes(), family.spec)
        restored.update(1, 1)


class TestCheckSameCoins:
    def test_accepts_matching(self):
        a = spec(2, seed=7).build()
        b = spec(2, seed=7).build()
        assert check_same_coins(a, b) == a.spec

    def test_rejects_mismatched_seed(self):
        with pytest.raises(IncompatibleSketchesError):
            check_same_coins(spec(2, seed=1).build(), spec(2, seed=2).build())

    def test_rejects_mismatched_size(self):
        with pytest.raises(IncompatibleSketchesError):
            check_same_coins(spec(2).build(), spec(3).build())

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            check_same_coins()
