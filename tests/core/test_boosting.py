"""Unit tests for median-of-groups boosting and family slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.boosting import (
    boosted_estimate,
    estimate_expression_boosted,
    family_groups,
)
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import EstimationError, IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=22, num_second_level=8, independence=6)


def populated_families(num_sketches=120, seed=3):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    rng = np.random.default_rng(seed)
    pool = rng.choice(2**22, size=2000, replace=False).astype(np.uint64)
    family_a, family_b = spec.build(), spec.build()
    family_a.update_batch(pool[:1500])
    family_b.update_batch(pool[500:])
    return family_a, family_b


class TestSlice:
    def test_slice_equals_family_with_offset_spec(self):
        family_a, _ = populated_families()
        sliced = family_a.slice(40, 80)
        direct_spec = SketchSpec(
            num_sketches=40, shape=SHAPE, seed=3, index_offset=40
        )
        direct = direct_spec.build()
        rng = np.random.default_rng(3)
        pool = rng.choice(2**22, size=2000, replace=False).astype(np.uint64)
        direct.update_batch(pool[:1500])
        assert sliced == direct

    def test_slice_shares_memory(self):
        spec = SketchSpec(num_sketches=8, shape=SHAPE, seed=0)
        family = spec.build()
        sliced = family.slice(2, 5)
        family.sketch(3).update(1, 1)
        assert not sliced.is_empty()

    def test_slice_bounds(self):
        spec = SketchSpec(num_sketches=8, shape=SHAPE, seed=0)
        family = spec.build()
        with pytest.raises(ValueError):
            family.slice(5, 5)
        with pytest.raises(ValueError):
            family.slice(0, 9)

    def test_prefix_is_zero_offset_slice(self):
        family_a, _ = populated_families()
        assert family_a.slice(0, 30) == family_a.prefix(30)

    def test_offset_spec_validation(self):
        with pytest.raises(ValueError):
            SketchSpec(num_sketches=4, shape=SHAPE, seed=0, index_offset=-1)

    def test_offset_spec_json_roundtrip(self):
        spec = SketchSpec(num_sketches=4, shape=SHAPE, seed=7, index_offset=12)
        assert SketchSpec.from_json_dict(spec.to_json_dict()) == spec


class TestFamilyGroups:
    def test_groups_are_disjoint_and_sized(self):
        family_a, _ = populated_families(num_sketches=120)
        groups = family_groups(family_a, 5)
        assert len(groups) == 5
        assert all(len(group) == 24 for group in groups)
        offsets = [group.spec.index_offset for group in groups]
        assert offsets == [0, 24, 48, 72, 96]

    def test_groups_of_different_streams_are_compatible(self):
        family_a, family_b = populated_families()
        groups_a = family_groups(family_a, 4)
        groups_b = family_groups(family_b, 4)
        for group_a, group_b in zip(groups_a, groups_b):
            assert group_a.spec == group_b.spec

    def test_too_many_groups_rejected(self):
        family_a, _ = populated_families(num_sketches=120)
        with pytest.raises(ValueError):
            family_groups(family_a, 121)
        with pytest.raises(ValueError):
            family_groups(family_a, 0)


class TestBoostedEstimate:
    def test_median_of_group_estimates(self):
        family_a, family_b = populated_families()
        calls = []

        def fake_estimator(group_families):
            calls.append(group_families)
            return float(10 * len(calls))  # 10, 20, 30

        result = boosted_estimate(
            {"A": family_a, "B": family_b}, fake_estimator, num_groups=3
        )
        assert result == 20.0
        assert len(calls) == 3

    def test_failed_groups_skipped(self):
        family_a, family_b = populated_families()
        state = {"calls": 0}

        def flaky_estimator(group_families):
            state["calls"] += 1
            if state["calls"] == 1:
                raise EstimationError("no valid observation")
            return 7.0

        result = boosted_estimate(
            {"A": family_a, "B": family_b}, flaky_estimator, num_groups=3
        )
        assert result == 7.0

    def test_all_groups_failing_propagates(self):
        family_a, family_b = populated_families()

        def dead_estimator(group_families):
            raise EstimationError("nope")

        with pytest.raises(EstimationError):
            boosted_estimate(
                {"A": family_a, "B": family_b}, dead_estimator, num_groups=2
            )

    def test_mismatched_specs_rejected(self):
        family_a, _ = populated_families(seed=1)
        family_b, _ = populated_families(seed=2)
        with pytest.raises(IncompatibleSketchesError):
            boosted_estimate({"A": family_a, "B": family_b}, lambda f: 0.0)

    def test_expression_boosting_accuracy(self):
        family_a, family_b = populated_families(num_sketches=480, seed=8)
        value = estimate_expression_boosted(
            "A & B", {"A": family_a, "B": family_b}, 0.1, num_groups=3
        )
        # Truth is 1000 shared elements; groups of 160 sketches each.
        assert abs(value - 1000) / 1000 < 0.6
