"""Unit tests for engine checkpointing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import IncompatibleSketchesError
from repro.streams.checkpoint import (
    CheckpointError,
    checkpoint_engine,
    restore_engine,
)
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update, insertions

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=64, shape=SHAPE, seed=5)


def loaded_engine() -> StreamEngine:
    engine = StreamEngine(SPEC)
    rng = np.random.default_rng(500)
    for stream in ("A", "B"):
        for element in rng.integers(0, 2**20, size=500):
            engine.process(Update(stream, int(element), 1))
    return engine


class TestRoundTrip:
    def test_restored_state_identical(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        assert restored.spec == engine.spec
        assert restored.stream_names() == engine.stream_names()
        for name in engine.stream_names():
            assert restored.family(name) == engine.family(name)
        assert restored.updates_processed == engine.updates_processed

    def test_restored_engine_answers_identically(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        original = engine.query("A & B", 0.2)
        after = restored.query("A & B", 0.2)
        assert after.value == pytest.approx(original.value)

    def test_restored_engine_accepts_new_updates(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        restored.process(Update("A", 7, 1))
        restored.flush()

        engine.process(Update("A", 7, 1))
        engine.flush()
        assert restored.family("A") == engine.family("A")

    def test_unflushed_buffers_are_included(self, tmp_path):
        engine = StreamEngine(SPEC, batch_size=10_000)
        engine.process_many(insertions("A", range(100)))
        checkpoint_engine(engine, tmp_path / "ckpt")  # flushes internally
        restored = restore_engine(tmp_path / "ckpt")
        assert not restored.family("A").is_empty()

    def test_overwrite_existing_checkpoint(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        engine.process(Update("A", 3, 1))
        checkpoint_engine(engine, tmp_path / "ckpt")
        restored = restore_engine(tmp_path / "ckpt")
        assert restored.family("A") == engine.family("A")


class TestFailureModes:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError):
            restore_engine(tmp_path / "nope")

    def test_corrupt_manifest(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            restore_engine(directory)

    def test_wrong_format_version(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        manifest_path = tmp_path / "ckpt" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="99"):
            restore_engine(tmp_path / "ckpt")

    def test_missing_sketch_payload(self, tmp_path):
        engine = loaded_engine()
        checkpoint_engine(engine, tmp_path / "ckpt")
        (tmp_path / "ckpt" / "streams" / "A.sketch").unlink()
        with pytest.raises(CheckpointError, match="A"):
            restore_engine(tmp_path / "ckpt")


class TestAdoptFamily:
    def test_adopt_requires_matching_spec(self):
        engine = StreamEngine(SPEC)
        other = SketchSpec(num_sketches=32, shape=SHAPE, seed=5).build()
        with pytest.raises(IncompatibleSketchesError):
            engine.adopt_family("A", other)

    def test_adopt_replaces_buffered_updates(self):
        engine = StreamEngine(SPEC, batch_size=10_000)
        engine.process(Update("A", 1, 1))
        replacement = SPEC.build()
        engine.adopt_family("A", replacement)
        assert engine.family("A").is_empty()

    def test_mark_replayed_validation(self):
        engine = StreamEngine(SPEC)
        with pytest.raises(ValueError):
            engine.mark_replayed(-1)
