"""Unit tests for synopsis sizing (the paper's space bounds)."""

from __future__ import annotations

import pytest

from repro.core.sizing import (
    recommend_spec,
    second_level_hashes_needed,
    union_sketches_needed,
    witness_sketches_needed,
)


class TestUnionSizing:
    def test_scales_inverse_quadratically_in_epsilon(self):
        loose = union_sketches_needed(0.2, 0.05)
        tight = union_sketches_needed(0.1, 0.05)
        assert tight == pytest.approx(4 * loose, rel=0.05)

    def test_scales_logarithmically_in_delta(self):
        assert union_sketches_needed(0.1, 0.01) > union_sketches_needed(0.1, 0.1)
        ratio = union_sketches_needed(0.1, 1e-4) / union_sketches_needed(0.1, 1e-2)
        assert ratio == pytest.approx(2.0, rel=0.05)  # log scaling

    def test_known_value(self):
        import math

        expected = math.ceil(256 * math.log(20) / (7 * 0.01))
        assert union_sketches_needed(0.1, 0.05) == expected

    def test_validation(self):
        for epsilon, delta in ((0.0, 0.1), (1.0, 0.1), (0.1, 0.0), (0.1, 1.0)):
            with pytest.raises(ValueError):
                union_sketches_needed(epsilon, delta)


class TestWitnessSizing:
    def test_scales_with_inverse_ratio(self):
        easy = witness_sketches_needed(0.1, 0.05, cardinality_ratio=0.5)
        hard = witness_sketches_needed(0.1, 0.05, cardinality_ratio=0.05)
        assert hard == pytest.approx(10 * easy, rel=0.01)

    def test_scales_with_streams(self):
        two = witness_sketches_needed(0.1, 0.05, 0.25, num_streams=2)
        four = witness_sketches_needed(0.1, 0.05, 0.25, num_streams=4)
        assert four == pytest.approx(3 * two, rel=0.01)

    def test_harder_than_union(self):
        assert witness_sketches_needed(0.1, 0.05, 0.01) > union_sketches_needed(
            0.1, 0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            witness_sketches_needed(0.1, 0.05, 0.0)
        with pytest.raises(ValueError):
            witness_sketches_needed(0.1, 0.05, 1.5)
        with pytest.raises(ValueError):
            witness_sketches_needed(0.1, 0.05, 0.5, num_streams=0)


class TestSecondLevelSizing:
    def test_log_in_sketches_over_delta(self):
        assert second_level_hashes_needed(1024, 0.05) == pytest.approx(15, abs=1)

    def test_monotone_in_sketches(self):
        assert second_level_hashes_needed(10_000, 0.05) > second_level_hashes_needed(
            10, 0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            second_level_hashes_needed(0, 0.05)
        with pytest.raises(ValueError):
            second_level_hashes_needed(10, 0.0)


class TestRecommendSpec:
    def test_spec_is_buildable(self):
        plan = recommend_spec(0.3, 0.2, cardinality_ratio=0.5)
        family = plan.spec.build()
        assert family.is_empty()

    def test_independence_tracks_epsilon(self):
        loose = recommend_spec(0.5, 0.1, 0.5)
        tight = recommend_spec(0.01, 0.1, 0.5)
        assert tight.spec.shape.independence > loose.spec.shape.independence

    def test_bytes_accounting(self):
        plan = recommend_spec(0.3, 0.2, 0.5)
        shape = plan.spec.shape
        expected = plan.spec.num_sketches * 64 * shape.num_second_level * 2 * 8
        assert plan.bytes_per_stream == expected

    def test_describe_mentions_parameters(self):
        text = recommend_spec(0.3, 0.2, 0.5).describe()
        assert "0.3" in text and "0.2" in text and "sketches" in text

    def test_uses_max_of_union_and_witness_needs(self):
        plan = recommend_spec(0.3, 0.2, cardinality_ratio=0.001)
        assert plan.spec.num_sketches == witness_sketches_needed(0.3, 0.2, 0.001)
