"""Update-stream processing substrate: data model, engine, exact store,
sources, checkpointing, sharded parallel ingest, the distributed-sites
model, and the multi-tenant query serving front end."""

from repro.streams.checkpoint import (
    CheckpointError,
    checkpoint_engine,
    checkpoint_sharded_engine,
    restore_engine,
    restore_sharded_engine,
)
from repro.streams.continuous import (
    ContinuousQueryProcessor,
    Observation,
    StandingQuery,
)
from repro.streams.distributed import Coordinator, StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.exact import ExactStreamStore
from repro.streams.serving import (
    PlanCache,
    QueryClient,
    QueryServer,
    ServingStats,
    TenantSpec,
    TokenBucket,
)
from repro.streams.sharded import ShardedEngine, shard_for, shard_vector
from repro.streams.stats import IngestStats, ShardStats
from repro.streams.sources import (
    UpdateLogError,
    load_updates,
    replay_into,
    save_updates,
)
from repro.streams.updates import Update, deletions, insertions, interleave
from repro.streams.windows import SlidingWindowDriver

__all__ = [
    "ContinuousQueryProcessor",
    "Observation",
    "StandingQuery",
    "CheckpointError",
    "checkpoint_engine",
    "checkpoint_sharded_engine",
    "restore_engine",
    "restore_sharded_engine",
    "Coordinator",
    "StreamSite",
    "StreamEngine",
    "PlanCache",
    "QueryClient",
    "QueryServer",
    "ServingStats",
    "TenantSpec",
    "TokenBucket",
    "ShardedEngine",
    "shard_for",
    "shard_vector",
    "IngestStats",
    "ShardStats",
    "ExactStreamStore",
    "UpdateLogError",
    "load_updates",
    "replay_into",
    "save_updates",
    "Update",
    "deletions",
    "insertions",
    "interleave",
    "SlidingWindowDriver",
]
