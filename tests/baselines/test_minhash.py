"""Unit tests for the min-wise hashing (MIPs) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.minhash import BottomKSketch, KMinsSignature, estimate_jaccard
from repro.errors import IllegalDeletionError


def overlapping_pools(rng, total=4000, jaccard=0.5):
    """Two sets whose Jaccard coefficient is ``jaccard`` by construction."""
    shared = int(total * jaccard)
    per_side = (total - shared) // 2
    pool = rng.choice(2**30, size=total, replace=False)
    a = np.concatenate([pool[:shared], pool[shared : shared + per_side]])
    b = np.concatenate([pool[:shared], pool[shared + per_side :]])
    return a, b


class TestKMins:
    def test_jaccard_estimate(self):
        rng = np.random.default_rng(104)
        a, b = overlapping_pools(rng, jaccard=0.5)
        sig_a = KMinsSignature(k=256, seed=1)
        sig_b = KMinsSignature(k=256, seed=1)
        sig_a.insert_batch(a)
        sig_b.insert_batch(b)
        assert abs(estimate_jaccard(sig_a, sig_b) - 0.5) < 0.12

    def test_identical_sets_agree_fully(self):
        rng = np.random.default_rng(105)
        elements = rng.choice(2**30, size=500, replace=False)
        sig_a = KMinsSignature(k=32, seed=2)
        sig_b = KMinsSignature(k=32, seed=2)
        sig_a.insert_batch(elements)
        sig_b.insert_batch(elements)
        assert estimate_jaccard(sig_a, sig_b) == 1.0

    def test_disjoint_sets_rarely_agree(self):
        rng = np.random.default_rng(106)
        pool = rng.choice(2**30, size=2000, replace=False)
        sig_a = KMinsSignature(k=128, seed=3)
        sig_b = KMinsSignature(k=128, seed=3)
        sig_a.insert_batch(pool[:1000])
        sig_b.insert_batch(pool[1000:])
        assert estimate_jaccard(sig_a, sig_b) < 0.05

    def test_deletion_unsupported(self):
        signature = KMinsSignature(k=4)
        signature.insert(1)
        with pytest.raises(IllegalDeletionError):
            signature.delete(1)

    def test_coins_checked(self):
        with pytest.raises(ValueError):
            KMinsSignature(k=4, seed=1).agreement(KMinsSignature(k=4, seed=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            KMinsSignature(k=0)


class TestBottomK:
    def test_distinct_estimate(self):
        rng = np.random.default_rng(107)
        elements = rng.choice(2**30, size=10_000, replace=False)
        sketch = BottomKSketch(k=256, seed=4)
        sketch.insert_batch(elements)
        estimate = sketch.estimate_distinct()
        assert abs(estimate - 10_000) / 10_000 < 0.25

    def test_small_stream_exact(self):
        sketch = BottomKSketch(k=64, seed=5)
        sketch.insert_batch(np.arange(10, dtype=np.uint64))
        assert sketch.estimate_distinct() == 10.0

    def test_duplicates_ignored(self):
        sketch = BottomKSketch(k=8, seed=6)
        for _ in range(3):
            sketch.insert(42)
        assert sketch.estimate_distinct() == 1.0

    def test_jaccard(self):
        rng = np.random.default_rng(108)
        a, b = overlapping_pools(rng, jaccard=0.4)
        sketch_a = BottomKSketch(k=256, seed=7)
        sketch_b = BottomKSketch(k=256, seed=7)
        sketch_a.insert_batch(a)
        sketch_b.insert_batch(b)
        assert abs(sketch_a.jaccard(sketch_b) - 0.4) < 0.12

    def test_depletion_on_member_delete(self):
        """The paper's critique made concrete: deleting a sketched element
        punches an unfillable hole."""
        rng = np.random.default_rng(109)
        elements = rng.choice(2**30, size=1000, replace=False)
        sketch = BottomKSketch(k=16, seed=8)
        sketch.insert_batch(elements)
        # Find a member of the bottom-k set and delete it.
        member_values = set(sketch.values)
        member = next(
            int(e) for e in elements if int(sketch._hash(int(e))) in member_values
        )
        with pytest.raises(IllegalDeletionError):
            sketch.delete(member)
        assert sketch.depletions == 1
        assert len(sketch.values) == 15  # the hole remains

    def test_nonmember_delete_is_noop(self):
        rng = np.random.default_rng(110)
        elements = rng.choice(2**30, size=1000, replace=False)
        sketch = BottomKSketch(k=8, seed=9)
        sketch.insert_batch(elements)
        member_values = set(sketch.values)
        nonmember = next(
            int(e) for e in elements if int(sketch._hash(int(e))) not in member_values
        )
        sketch.delete(nonmember)  # must not raise
        assert sketch.depletions == 0

    def test_coins_checked(self):
        with pytest.raises(ValueError):
            BottomKSketch(k=4, seed=1).jaccard(BottomKSketch(k=4, seed=2))

    def test_validation(self):
        with pytest.raises(ValueError):
            BottomKSketch(k=0)
