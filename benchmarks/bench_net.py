"""Wire-format bench: delta bytes/update through a faulty 2-level tree.

The distributed model ships sketch synopses, not raw streams — so the
wire cost per update is the scaling lever for deep federation trees.
This bench drives a sparse-delta workload (each export round touches a
small set of counters) from several sites through a **leaf coordinator**
and up an uplink to a **root coordinator**, with a seeded
fault-injecting proxy (drop/duplicate/cut/delay) on every site→leaf hop
and on the uplink, plus one **leaf restart from its checkpoint**
mid-run.  The same workload runs twice:

* **v1** — dense frames (``encodings=("dense",)``), no batching: every
  export ships the full counter slab of every changed stream;
* **v2** — negotiated sparse varint encoding with zlib and uplink
  batching (:mod:`repro.streams.net.codec`).

Both runs must leave the root's merged synopses **bit-identical** to a
flat :class:`~repro.streams.engine.StreamEngine` fed every update
directly — faults, batching, and the restart change bytes and frame
counts, never the folded counters.  Results (bytes/update, deltas/s,
compression ratio, fault counts) land in ``BENCH_net.json``.

``--smoke`` runs a scaled-down version as a CI gate: it exits non-zero
on any codec round-trip bit-divergence, on the codec picking a sparse
encoding that is *larger* than dense for a sparse-favorable payload, on
root-vs-flat divergence, or on v2 failing to beat v1 bytes/update by at
least 5x on this sparse workload.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import random
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))

from repro.core.family import SketchFamily, SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.distributed import StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.net import codec
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.updates import Update

from streams.net.faults import FaultyTransport  # noqa: E402  (tests/ path)

SHAPE = SketchShape(domain_bits=24, num_second_level=16, independence=8)
STREAMS = ("A", "B")


def check_codec_roundtrip(spec: SketchSpec, seed: int) -> None:
    """Every encoding must reproduce the dense payload bit-exactly."""
    rng = np.random.default_rng(seed)
    cells = spec.counter_cells
    for nonzero in (0, 1, 17, cells // 200, cells):
        dense = np.zeros(cells, dtype="<i8")
        if nonzero:
            indices = rng.choice(cells, size=nonzero, replace=False)
            dense[indices] = rng.integers(
                -(2**62), 2**62, size=nonzero, dtype=np.int64
            )
        payload = dense.tobytes()
        for allowed in (
            codec.DENSE_ONLY,
            ("sparse",),
            ("dense+zlib",),
            ("sparse+zlib",),
            codec.PREFERRED_ENCODINGS,
        ):
            encoding, blob = codec.encode_delta(payload, allowed)
            decoded = codec.decode_dense(blob, encoding, cells)
            if bytes(decoded) != payload:
                raise SystemExit(
                    f"codec round-trip diverged: {encoding} over "
                    f"{nonzero} nonzero cells"
                )


def check_sparse_beats_dense(spec: SketchSpec, seed: int) -> None:
    """Sparse-favorable payloads must never ship larger than dense."""
    rng = np.random.default_rng(seed)
    cells = spec.counter_cells
    dense = np.zeros(cells, dtype="<i8")
    touched = max(1, cells // 100)  # 1% of counters — a sparse delta
    indices = rng.choice(cells, size=touched, replace=False)
    dense[indices] = rng.integers(1, 1000, size=touched, dtype=np.int64)
    payload = dense.tobytes()
    encoding, blob = codec.encode_delta(payload, codec.PREFERRED_ENCODINGS)
    if not encoding.startswith("sparse"):
        raise SystemExit(
            f"codec picked {encoding!r} for a 1%-sparse payload"
        )
    if len(blob) * 5 > len(payload):
        raise SystemExit(
            f"sparse encoding too large: {len(blob)} bytes for a "
            f"{len(payload)}-byte dense slab"
        )


async def run_tree(
    spec: SketchSpec,
    *,
    v2: bool,
    num_sites: int,
    rounds: int,
    updates_per_round: int,
    restart_leaf_at: int,
    checkpoint_dir: pathlib.Path,
    seed: int,
) -> dict:
    """One workload pass through the faulty 2-level tree."""
    encodings = codec.PREFERRED_ENCODINGS if v2 else codec.DENSE_ONLY
    max_batch = 16 if v2 else 1
    uplink_options = {
        "rng": random.Random(seed + 90),
        "encodings": encodings,
        "max_batch": max_batch,
    }

    root = CoordinatorServer(spec, encodings=encodings)
    await root.start()
    uplink_proxy = FaultyTransport(
        root.port,
        random.Random(seed + 1),
        drop=0.05,
        duplicate=0.05,
        delay=0.05,
        max_faults=6,
    )
    await uplink_proxy.start()

    def make_leaf(restore: bool) -> CoordinatorServer:
        kwargs = dict(
            checkpoint_every=0,
            parent_port=uplink_proxy.port,
            uplink_id="leaf-0",
            uplink_options=uplink_options,
            encodings=encodings,
        )
        if restore:
            return CoordinatorServer.restore(checkpoint_dir, **kwargs)
        return CoordinatorServer(
            spec, checkpoint_dir=checkpoint_dir, **kwargs
        )

    leaf = make_leaf(restore=False)
    await leaf.start()
    leaf_port = leaf.port

    proxies: list[FaultyTransport] = []
    clients: list[SiteClient] = []
    for index in range(num_sites):
        proxy = FaultyTransport(
            leaf_port,
            random.Random(seed + 10 + index),
            drop=0.08,
            duplicate=0.08,
            cut=0.04,
            delay=0.05,
            max_faults=8,
        )
        await proxy.start()
        proxies.append(proxy)
        clients.append(
            SiteClient(
                site=StreamSite(f"site-{index}", spec),
                port=proxy.port,
                rng=random.Random(seed + 40 + index),
                backoff_base=0.01,
                backoff_cap=0.1,
                max_retries=24,
                encodings=encodings,
                max_batch=max_batch,
            )
        )

    flat = StreamEngine(spec)
    rng = np.random.default_rng(seed)
    total_updates = 0
    restarted = False
    started = time.perf_counter()
    for round_index in range(rounds):
        if round_index == restart_leaf_at and not restarted:
            # Crash-and-restore: checkpoint covers the fold state, the
            # per-site sequence map, and the uplink's retained tail; the
            # restored leaf rebinds the same port so proxies reconnect.
            leaf.checkpoint()
            await leaf.stop()
            leaf = make_leaf(restore=True)
            leaf._port = leaf_port  # rebind where the proxies point
            await leaf.start()
            restarted = True
        for client in clients:
            # A sparse touch set: a handful of elements per stream, so
            # the per-round counter delta is a sliver of the dense slab.
            for stream in STREAMS:
                elements = rng.integers(
                    0, 2**SHAPE.domain_bits, size=updates_per_round
                )
                for element in elements:
                    update = Update(stream, int(element), 1)
                    client.observe(update)
                    flat.process(update)
                total_updates += updates_per_round
            await client.ship()
        await leaf.ship_upstream()
    # Final drain: everything retained anywhere reaches the root.
    for client in clients:
        await client.ship()
    await leaf.ship_upstream()
    elapsed = time.perf_counter() - started

    identical = all(
        root.coordinator.families()[name].to_bytes()
        == flat.families()[name].to_bytes()
        for name in STREAMS
    )
    root_estimate = root.query_union(list(STREAMS)).value
    flat_estimate = flat.query_union(list(STREAMS)).value

    site_stats = [client.stats.snapshot() for client in clients]
    uplink_stats = leaf.uplink.stats.snapshot()
    bytes_sent = sum(stats.bytes_sent for stats in site_stats)
    payload_dense = sum(stats.payload_bytes_dense for stats in site_stats)
    payload_wire = sum(stats.payload_bytes_wire for stats in site_stats)
    deltas_shipped = sum(stats.deltas_shipped for stats in site_stats)
    faults = sum(proxy.faults_injected for proxy in proxies)

    for client in clients:
        await client.close()
    for proxy in proxies:
        await proxy.stop()
    await leaf.stop()
    await uplink_proxy.stop()
    await root.stop()

    return {
        "wire_format": "v2" if v2 else "v1",
        "updates": total_updates,
        "deltas_shipped": deltas_shipped,
        "exports_coalesced": sum(
            stats.exports_coalesced for stats in site_stats
        ),
        "site_bytes_sent": bytes_sent,
        "bytes_per_update": bytes_sent / total_updates,
        "payload_bytes_dense": payload_dense,
        "payload_bytes_wire": payload_wire,
        "compression_ratio": (
            payload_dense / payload_wire if payload_wire else 1.0
        ),
        "uplink_bytes_sent": uplink_stats.bytes_sent,
        "uplink_compression_ratio": uplink_stats.compression_ratio,
        "deltas_per_second": deltas_shipped / elapsed if elapsed else 0.0,
        "elapsed_seconds": elapsed,
        "faults_injected": faults + uplink_proxy.faults_injected,
        "site_retries": sum(stats.retries for stats in site_stats),
        "leaf_restarted": restarted,
        "root_bit_identical_to_flat": identical,
        "root_estimate": root_estimate,
        "flat_estimate": flat_estimate,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--updates-per-round", type=int, default=64)
    parser.add_argument("--sketches", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("BENCH_net.json")
    )
    args = parser.parse_args()
    if args.smoke:
        args.sites, args.rounds, args.sketches = 2, 6, 48
        args.updates_per_round = 32

    spec = SketchSpec(num_sketches=args.sketches, shape=SHAPE, seed=3)
    print(
        f"spec: r={args.sketches}, dense slab "
        f"{spec.counter_payload_bytes:,} bytes/stream"
    )
    check_codec_roundtrip(spec, args.seed)
    check_sparse_beats_dense(spec, args.seed + 1)
    print("codec round-trip and sparse-size gates: ok")

    import tempfile

    results = {}
    for v2 in (False, True):
        with tempfile.TemporaryDirectory() as tmp:
            results["v2" if v2 else "v1"] = asyncio.run(
                run_tree(
                    spec,
                    v2=v2,
                    num_sites=args.sites,
                    rounds=args.rounds,
                    updates_per_round=args.updates_per_round,
                    restart_leaf_at=max(1, args.rounds // 2),
                    checkpoint_dir=pathlib.Path(tmp) / "leaf",
                    seed=args.seed,
                )
            )
    v1, v2 = results["v1"], results["v2"]
    improvement = (
        v1["bytes_per_update"] / v2["bytes_per_update"]
        if v2["bytes_per_update"]
        else float("inf")
    )
    for row in (v1, v2):
        print(
            f"{row['wire_format']}: {row['bytes_per_update']:,.1f} "
            f"bytes/update, {row['deltas_per_second']:,.1f} deltas/s, "
            f"codec x{row['compression_ratio']:.1f}, "
            f"{row['faults_injected']} faults, "
            f"restart={row['leaf_restarted']}, "
            f"bit-identical={row['root_bit_identical_to_flat']}"
        )
    print(f"v2 ships {improvement:,.1f}x fewer bytes/update than v1")

    payload = {
        "workload": {
            "sites": args.sites,
            "rounds": args.rounds,
            "updates_per_round_per_stream": args.updates_per_round,
            "streams": list(STREAMS),
            "num_sketches": args.sketches,
            "dense_payload_bytes": spec.counter_payload_bytes,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "v1": v1,
        "v2": v2,
        "bytes_per_update_improvement": improvement,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    for row in (v1, v2):
        if not row["root_bit_identical_to_flat"]:
            failures.append(
                f"{row['wire_format']} root diverged from the flat engine"
            )
        if row["root_estimate"] != row["flat_estimate"]:
            failures.append(
                f"{row['wire_format']} root query diverged from flat"
            )
        if not row["leaf_restarted"]:
            failures.append(f"{row['wire_format']} never restarted the leaf")
    if improvement < 5.0:
        failures.append(
            f"v2 only {improvement:.1f}x better than v1 (need >= 5x)"
        )
    if v2["compression_ratio"] < 5.0:
        failures.append(
            f"v2 codec ratio only x{v2['compression_ratio']:.1f}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
