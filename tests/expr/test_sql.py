"""Unit tests for SQL rendering of set expressions."""

from __future__ import annotations

import sqlite3

import pytest

from repro.expr.parser import parse
from repro.expr.sql import cardinality_sql, to_sql


class TestRendering:
    def test_leaf(self):
        assert to_sql(parse("A")) == "SELECT element FROM A"

    def test_binary_operators(self):
        assert to_sql(parse("A | B")) == (
            "SELECT element FROM A UNION SELECT element FROM B"
        )
        assert to_sql(parse("A & B")) == (
            "SELECT element FROM A INTERSECT SELECT element FROM B"
        )
        assert to_sql(parse("A - B")) == (
            "SELECT element FROM A EXCEPT SELECT element FROM B"
        )

    def test_nesting_wrapped_as_subselect(self):
        sql = to_sql(parse("(A - B) & C"))
        assert sql == (
            "SELECT element FROM "
            "(SELECT element FROM A EXCEPT SELECT element FROM B) AS sub1 "
            "INTERSECT SELECT element FROM C"
        )

    def test_custom_column(self):
        assert "customer_id" in to_sql(parse("A & B"), column="customer_id")

    def test_bad_column_rejected(self):
        with pytest.raises(ValueError):
            to_sql(parse("A"), column="id; DROP TABLE users")

    def test_cardinality_wrapper(self):
        sql = cardinality_sql(parse("A - B"))
        assert sql.startswith("SELECT COUNT(*) FROM (")
        assert sql.endswith(") AS result")


class TestAgainstSqlite:
    """The rendered SQL must compute exactly what the AST evaluates."""

    SETS = {"A": {1, 2, 3, 4}, "B": {3, 4, 5}, "C": {1, 4, 5, 6}}

    @pytest.fixture()
    def connection(self):
        connection = sqlite3.connect(":memory:")
        for name, members in self.SETS.items():
            connection.execute(f"CREATE TABLE {name} (element INTEGER)")
            connection.executemany(
                f"INSERT INTO {name} VALUES (?)", [(m,) for m in members]
            )
        yield connection
        connection.close()

    @pytest.mark.parametrize(
        "text",
        [
            "A",
            "A | B",
            "A & B",
            "A - B",
            "(A - B) & C",
            "A - (B | C)",
            "(A & B) | (B & C)",
            "((A | B) - C) | (B & C)",
        ],
    )
    def test_results_match_ast_evaluation(self, connection, text: str):
        expression = parse(text)
        rows = connection.execute(to_sql(expression)).fetchall()
        assert {row[0] for row in rows} == expression.evaluate(self.SETS)

    @pytest.mark.parametrize("text", ["A & B", "(A - B) & C", "A - (B | C)"])
    def test_cardinality_sql_matches(self, connection, text: str):
        expression = parse(text)
        (count,) = connection.execute(cardinality_sql(expression)).fetchone()
        assert count == len(expression.evaluate(self.SETS))

    def test_multiset_tables_deduplicated(self, connection):
        """SQL set operators deduplicate — matching distinct-count
        semantics even when tables hold duplicate rows."""
        connection.execute("INSERT INTO A VALUES (1), (1), (1)")
        expression = parse("A & C")
        rows = connection.execute(to_sql(expression)).fetchall()
        assert {row[0] for row in rows} == {1, 4}
        assert len(rows) == 2
