"""Tests for the API-reference generator."""

from __future__ import annotations

import pathlib

from repro.tools.apidoc import main, render_api_markdown


class TestRenderApiMarkdown:
    def test_covers_every_public_module(self):
        markdown = render_api_markdown()
        for module in (
            "repro.core.sketch",
            "repro.core.family",
            "repro.core.union",
            "repro.core.difference",
            "repro.core.intersection",
            "repro.core.expression",
            "repro.expr.parser",
            "repro.streams.engine",
            "repro.baselines.fm",
            "repro.datagen.controlled",
            "repro.experiments.runner",
        ):
            assert f"## `{module}`" in markdown, module

    def test_covers_headline_symbols(self):
        markdown = render_api_markdown()
        for symbol in (
            "TwoLevelHashSketch",
            "SketchFamily",
            "estimate_union(",
            "estimate_difference(",
            "estimate_intersection(",
            "estimate_expression(",
            "StreamEngine",
            "parse(",
        ):
            assert symbol in markdown, symbol

    def test_entries_carry_docstrings(self):
        markdown = render_api_markdown()
        # Spot-check that summaries came through, not placeholders.
        assert "A 2-level hash sketch over one update stream." in markdown
        assert markdown.count("*(undocumented)*") < 10

    def test_reexports_not_duplicated(self):
        markdown = render_api_markdown()
        # TwoLevelHashSketch is re-exported at three levels but documented
        # only where it is defined.
        assert markdown.count("#### class `TwoLevelHashSketch") == 1

    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "API.md"
        assert main(["--out", str(out)]) == 0
        assert out.is_file()
        assert out.read_text().startswith("# API reference")


class TestPublishedCopyIsFresh:
    def test_docs_api_md_matches_code(self):
        """The committed docs/API.md must match what the generator emits
        (regenerate with `python -m repro.tools.apidoc` after API changes)."""
        published = pathlib.Path(__file__).parent.parent / "docs" / "API.md"
        assert published.is_file(), "run python -m repro.tools.apidoc"
        assert published.read_text() == render_api_markdown()
