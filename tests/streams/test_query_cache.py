"""Unit tests for the engine's semantic query cache."""

from __future__ import annotations

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=128, shape=SHAPE, seed=33)


def loaded_engine() -> StreamEngine:
    engine = StreamEngine(SPEC)
    rng = np.random.default_rng(900)
    pool = rng.choice(2**20, size=2000, replace=False)
    for element in pool[:1500]:
        engine.process(Update("A", int(element), 1))
    for element in pool[500:]:
        engine.process(Update("B", int(element), 1))
    return engine


class TestQueryCache:
    def test_repeat_query_is_cached(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        second = engine.query("A & B", 0.2)
        assert second is first  # identical object, not merely equal

    def test_equivalent_spellings_share_entry(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        assert engine.query("B & A", 0.2) is first
        assert engine.query("A - (A - B)", 0.2) is first

    def test_different_epsilon_not_shared(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        assert engine.query("A & B", 0.15) is not first

    def test_different_pooling_not_shared(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        assert engine.query("A & B", 0.2, pool_levels=4) is not first

    def test_updates_invalidate(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        engine.process(Update("A", 7, 1))
        assert engine.query("A & B", 0.2) is not first

    def test_bypass(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        bypassed = engine.query("A & B", 0.2, use_cache=False)
        assert bypassed is not first
        assert bypassed.value == first.value  # deterministic estimator

    def test_inequivalent_expressions_not_shared(self):
        engine = loaded_engine()
        intersection = engine.query("A & B", 0.2)
        difference = engine.query("A - B", 0.2)
        assert difference is not intersection


class TestInvalidationWithoutUpdates:
    """Regression: adopt_family / mark_replayed change the synopses (or the
    position they are keyed on) without moving ``updates_processed``
    through ``process``, and used to leave stale cache entries behind."""

    def test_adopt_family_invalidates(self):
        engine = loaded_engine()
        stale = engine.query("A & B", 0.2)
        engine.adopt_family("A", SPEC.build())  # A is now empty
        fresh = engine.query("A & B", 0.2)
        assert fresh is not stale
        assert fresh.value == 0.0  # intersection with an empty stream

    def test_adopt_family_invalidates_unrelated_expressions_too(self):
        """Cache keys don't record which streams each entry read, so the
        whole cache goes — an entry over B alone must also refresh."""
        engine = loaded_engine()
        stale = engine.query("B", 0.2)
        engine.adopt_family("B", SPEC.build())
        assert engine.query("B", 0.2) is not stale

    def test_mark_replayed_invalidates(self):
        engine = loaded_engine()
        stale = engine.query("A & B", 0.2)
        engine.mark_replayed(10)
        fresh = engine.query("A & B", 0.2)
        assert fresh is not stale
        assert fresh.value == stale.value  # same synopses, fresh entry

    def test_mark_replayed_zero_keeps_cache(self):
        engine = loaded_engine()
        first = engine.query("A & B", 0.2)
        engine.mark_replayed(0)
        assert engine.query("A & B", 0.2) is first
