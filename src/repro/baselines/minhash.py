"""Min-wise independent permutations (MIPs) baseline.

The paper identifies MIPs [Broder et al. 1998; Cohen 1997; Indyk 1999] as
the only prior technique able to estimate non-union set operations — but
only over *insert-only* streams.  This module implements the two standard
variants:

* :class:`KMinsSignature` — ``k`` independent hash functions, keep the
  minimum hash value of each (the classic MinHash signature).  The
  fraction of coordinates where two signatures agree estimates the Jaccard
  coefficient ``|A ∩ B| / |A ∪ B|``.
* :class:`BottomKSketch` — one hash function, keep the ``k`` smallest
  hash values.  Supports Jaccard/union/intersection estimation and —
  crucially for the comparison — makes the **deletion-depletion** failure
  mode concrete: deleting an element currently *inside* the bottom-k set
  cannot be handled without rescanning the stream, because the evicted
  slot's rightful occupant was discarded.  ``delete`` on a member raises
  :class:`~repro.errors.IllegalDeletionError` (after removing the value),
  and the sketch counts how often it would have needed a rescan.

Both variants share first-level hash functions with the 2-level sketches
(same seeding scheme), so comparisons use identical coins.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.family import _draw_family_hashes
from repro.core.sketch import SketchShape
from repro.errors import IllegalDeletionError

__all__ = ["KMinsSignature", "BottomKSketch", "estimate_jaccard"]


class KMinsSignature:
    """Classic MinHash: per hash function, the minimum hash value seen."""

    def __init__(self, k: int = 64, seed: int = 0, domain_bits: int = 30) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.seed = seed
        self.domain_bits = domain_bits
        shape = SketchShape(domain_bits=domain_bits)
        self._hashes = _draw_family_hashes(seed, 0, k, shape)
        self.minima = np.full(k, np.iinfo(np.uint64).max, dtype=np.uint64)

    def insert(self, element: int) -> None:
        """Process one element insertion."""
        self.insert_batch(np.asarray([element], dtype=np.uint64))

    def insert_batch(self, elements) -> None:
        """Insert a batch of elements."""
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        for index in range(self.k):
            hashed = self._hashes[index].first_level(elements)
            self.minima[index] = min(self.minima[index], np.uint64(hashed.min()))

    def delete(self, element: int) -> None:
        """Deleting the current minimum would require a stream rescan."""
        raise IllegalDeletionError(
            "MinHash signatures cannot process deletions without rescanning "
            "the stream"
        )

    def agreement(self, other: "KMinsSignature") -> float:
        """Fraction of agreeing coordinates ≈ Jaccard(A, B)."""
        self._check_coins(other)
        return float((self.minima == other.minima).mean())

    def _check_coins(self, other: "KMinsSignature") -> None:
        if (self.k, self.seed, self.domain_bits) != (
            other.k,
            other.seed,
            other.domain_bits,
        ):
            raise ValueError("signatures built with different coins")


class BottomKSketch:
    """Bottom-k sketch: the ``k`` smallest hash values under one function.

    ``delete`` demonstrates MIP depletion: a deletion of a non-member is a
    no-op (it never made the sketch), but deleting a *member* punches a
    hole that only a rescan could refill.  The sketch removes the value,
    increments :attr:`depletions`, and raises so callers see the failure
    the way a production system would.
    """

    def __init__(self, k: int = 64, seed: int = 0, domain_bits: int = 30) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.seed = seed
        self.domain_bits = domain_bits
        shape = SketchShape(domain_bits=domain_bits)
        self._hash = _draw_family_hashes(seed, 0, 1, shape)[0].first_level
        # value -> element, kept as a dict plus a lazily rebuilt heap.
        self._members: dict[int, int] = {}
        self.depletions = 0

    # -- maintenance --------------------------------------------------------

    def insert(self, element: int) -> None:
        """Process one element insertion."""
        value = int(self._hash(int(element)))
        if value in self._members:
            return
        if len(self._members) < self.k:
            self._members[value] = int(element)
            return
        worst = max(self._members)
        if value < worst:
            del self._members[worst]
            self._members[value] = int(element)

    def insert_batch(self, elements) -> None:
        """Insert a batch of elements."""
        for element in np.asarray(elements, dtype=np.uint64):
            self.insert(int(element))

    def delete(self, element: int) -> None:
        """Remove ``element``; raises if the sketch is now depleted."""
        value = int(self._hash(int(element)))
        if value not in self._members:
            return
        del self._members[value]
        self.depletions += 1
        raise IllegalDeletionError(
            f"bottom-{self.k} sketch depleted by deleting element {element}; "
            "a rescan of past stream items would be required"
        )

    # -- estimation ------------------------------------------------------------

    @property
    def values(self) -> list[int]:
        return sorted(self._members)

    def estimate_distinct(self) -> float:
        """``(k-1) / v_k`` scaled to the hash range (standard bottom-k)."""
        if len(self._members) < self.k:
            return float(len(self._members))
        kth = self.values[self.k - 1]
        hash_range = float(2**61 - 1)
        return (self.k - 1) * hash_range / float(kth)

    def jaccard(self, other: "BottomKSketch") -> float:
        """Bottom-k Jaccard estimate over the union's bottom-k values."""
        self._check_coins(other)
        union_bottom = heapq.nsmallest(self.k, set(self.values) | set(other.values))
        if not union_bottom:
            return 0.0
        shared = set(self.values) & set(other.values)
        return sum(1 for value in union_bottom if value in shared) / len(union_bottom)

    def _check_coins(self, other: "BottomKSketch") -> None:
        if (self.k, self.seed, self.domain_bits) != (
            other.k,
            other.seed,
            other.domain_bits,
        ):
            raise ValueError("sketches built with different coins")


def estimate_jaccard(
    signature_a: KMinsSignature, signature_b: KMinsSignature
) -> float:
    """Jaccard coefficient estimate from two k-mins signatures."""
    return signature_a.agreement(signature_b)
