"""Unit tests for the BJKST distinct-count baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bjkst import BJKSTSketch
from repro.errors import IllegalDeletionError


class TestEstimation:
    def test_small_stream_exact(self):
        sketch = BJKSTSketch(epsilon=0.5, seed=1)
        sketch.insert_batch(np.arange(20, dtype=np.uint64))
        assert sketch.estimate_distinct() == 20.0
        assert sketch.threshold == 0

    @pytest.mark.parametrize("true_count", [5_000, 50_000])
    def test_large_stream_accuracy(self, true_count: int):
        rng = np.random.default_rng(true_count)
        elements = rng.choice(2**30, size=true_count, replace=False)
        sketch = BJKSTSketch(epsilon=0.2, seed=2)
        sketch.insert_batch(elements)
        estimate = sketch.estimate_distinct()
        assert abs(estimate - true_count) / true_count < 0.25

    def test_duplicates_ignored(self):
        sketch = BJKSTSketch(epsilon=0.5, seed=3)
        for _ in range(100):
            sketch.insert(42)
        assert sketch.estimate_distinct() == 1.0

    def test_capacity_respected(self):
        rng = np.random.default_rng(600)
        elements = rng.choice(2**30, size=50_000, replace=False)
        sketch = BJKSTSketch(epsilon=0.3, seed=4)
        sketch.insert_batch(elements)
        assert sketch.kept_size <= sketch.capacity
        assert sketch.threshold > 0

    def test_scalar_and_batch_agree(self):
        rng = np.random.default_rng(601)
        elements = rng.choice(2**30, size=3000, replace=False)
        batched = BJKSTSketch(epsilon=0.3, seed=5)
        batched.insert_batch(elements)
        scalar = BJKSTSketch(epsilon=0.3, seed=5)
        for element in elements:
            scalar.insert(int(element))
        assert batched.estimate_distinct() == scalar.estimate_distinct()
        assert batched.threshold == scalar.threshold

    def test_tighter_epsilon_larger_budget(self):
        assert BJKSTSketch(epsilon=0.05).capacity > BJKSTSketch(epsilon=0.2).capacity

    def test_validation(self):
        with pytest.raises(ValueError):
            BJKSTSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            BJKSTSketch(epsilon=1.0)


class TestLimitations:
    def test_deletion_raises(self):
        sketch = BJKSTSketch(epsilon=0.3)
        sketch.insert(1)
        with pytest.raises(IllegalDeletionError):
            sketch.delete(1)
