"""Simple tabulation hashing — an alternative first-level family.

Tabulation hashing (Zobrist; analysed by Pǎtraşcu & Thorup) splits a key
into ``c`` character bytes and XORs ``c`` random table entries::

    h(x) = T₀[x₀] ⊕ T₁[x₁] ⊕ … ⊕ T₇[x₇]

It is only 3-wise independent, yet behaves like a fully random function
for many hashing applications (including distinct-element estimation),
and evaluates with table lookups instead of modular multiplications.
The library keeps ``t``-wise polynomial hashing as the default first
level — it is what the paper's Section 3.6 analysis covers — and offers
tabulation as a measured alternative (see ``benchmarks/bench_hashing.py``
for the speed/accuracy trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TabulationHash", "random_tabulation_hash"]

_NUM_CHARS = 8  # 64-bit keys split into 8 byte-characters
_TABLE_SIZE = 256
# Output is masked to 61 bits so tabulation drops into the same LSB/level
# pipeline as the polynomial family (whose range is [2**61 - 1]).
_OUTPUT_MASK = np.uint64((1 << 61) - 1)


@dataclass(frozen=True)
class TabulationHash:
    """A simple (3-wise independent) tabulation hash ``[2**64] -> [2**61]``."""

    tables: tuple[tuple[int, ...], ...]
    _table_array: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.tables) != _NUM_CHARS or any(
            len(table) != _TABLE_SIZE for table in self.tables
        ):
            raise ValueError(
                f"need {_NUM_CHARS} tables of {_TABLE_SIZE} 64-bit entries"
            )
        object.__setattr__(
            self, "_table_array", np.asarray(self.tables, dtype=np.uint64)
        )

    @property
    def independence(self) -> int:
        """Tabulation hashing is exactly 3-wise independent."""
        return 3

    def __call__(self, element):
        scalar = np.isscalar(element)
        values = np.atleast_1d(np.asarray(element, dtype=np.uint64))
        hashed = np.zeros_like(values)
        for char_index in range(_NUM_CHARS):
            chars = (values >> np.uint64(8 * char_index)) & np.uint64(0xFF)
            hashed ^= self._table_array[char_index][chars.astype(np.intp)]
        hashed &= _OUTPUT_MASK
        return int(hashed[0]) if scalar else hashed


def random_tabulation_hash(rng: np.random.Generator) -> TabulationHash:
    """Draw a tabulation hash with uniform random tables."""
    tables = tuple(
        tuple(
            int(entry)
            for entry in rng.integers(0, 2**64, size=_TABLE_SIZE, dtype=np.uint64)
        )
        for _ in range(_NUM_CHARS)
    )
    return TabulationHash(tables)
