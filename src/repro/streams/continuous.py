"""Continuous (standing) queries over the stream engine.

The architecture of the paper's Figure 1 serves queries *online* while
updates keep streaming in.  :class:`ContinuousQueryProcessor` wraps a
:class:`~repro.streams.engine.StreamEngine` with standing set-expression
queries that re-evaluate every ``every`` processed updates, keep a
history of observations, and fire alert callbacks on threshold crossings
— the "detect the DoS attack as it happens" loop of the paper's
introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.results import WitnessEstimate
from repro.errors import ReproError, UnknownQueryError
from repro.expr.ast import SetExpression
from repro.expr.parser import parse
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

__all__ = ["Observation", "StandingQuery", "ContinuousQueryProcessor"]


@dataclass(frozen=True)
class Observation:
    """One evaluation of a standing query."""

    at_update: int  # engine.updates_processed when evaluated
    estimate: WitnessEstimate

    @property
    def value(self) -> float:
        """The cardinality estimate of this observation."""
        return self.estimate.value


@dataclass
class StandingQuery:
    """A registered continuous query and its observation history.

    ``history`` and ``alerts`` are plain lists used as ring buffers: when
    a log exceeds ``max_history`` entries the oldest are dropped, so a
    query evaluated every few updates on an unbounded stream holds a
    bounded tail of observations rather than growing without limit.
    ``max_history=None`` disables trimming (the pre-existing behaviour).

    Alerts are **edge-triggered**: a sustained breach records and fires
    once, on the observation that *crossed* the threshold, and arms
    again only after an observation back at or below it.  ``realert_every
    = n`` opts into periodic re-pages while the breach is sustained —
    every ``n``-th breaching observation after the crossing fires again.
    (The previous level-triggered behaviour re-fired on *every*
    evaluation of a sustained breach, flooding the callback and the
    ``alerts`` ring at the evaluation cadence.)

    ``window`` (windowed engines only) makes the query evaluate over the
    most recent ``window`` time units instead of all time.
    """

    name: str
    expression: SetExpression
    epsilon: float
    every: int
    threshold: float | None
    on_alert: Callable[["StandingQuery", Observation], None] | None
    max_history: int | None = 10_000
    window: float | None = None
    realert_every: int | None = None
    history: list[Observation] = field(default_factory=list)
    alerts: list[Observation] = field(default_factory=list)
    #: Whether the last observation was above threshold (the edge detector).
    currently_breached: bool = False
    #: Consecutive breaching observations in the current breach episode.
    breach_run: int = 0

    @property
    def latest(self) -> Observation | None:
        """The most recent observation, if any."""
        return self.history[-1] if self.history else None

    def breached(self, observation: Observation) -> bool:
        """Whether an observation exceeds the query's alert threshold."""
        return self.threshold is not None and observation.value > self.threshold

    def record(self, observation: Observation) -> bool:
        """Append an observation (and any alert), trimming both logs.

        Returns whether to alert: True on a threshold *crossing* (the
        first breaching observation after a non-breaching one), or — with
        ``realert_every`` set — on every ``realert_every``-th breaching
        observation of a sustained breach.  The caller fires ``on_alert``.
        """
        self.history.append(observation)
        self._trim(self.history)
        if not self.breached(observation):
            self.currently_breached = False
            self.breach_run = 0
            return False
        self.breach_run += 1
        if self.currently_breached:
            # Sustained breach: silent unless periodic re-pages opted in.
            alerted = (
                self.realert_every is not None
                and (self.breach_run - 1) % self.realert_every == 0
            )
        else:
            self.currently_breached = True
            alerted = True  # rising edge
        if alerted:
            self.alerts.append(observation)
            self._trim(self.alerts)
        return alerted

    def _trim(self, log: list[Observation]) -> None:
        # Front-trim in place: history/alerts stay plain lists (cheap
        # amortised, and list equality keeps working for callers/tests).
        if self.max_history is not None and len(log) > self.max_history:
            del log[: len(log) - self.max_history]


class ContinuousQueryProcessor:
    """Evaluates standing queries as updates flow through the engine.

    Usage::

        processor = ContinuousQueryProcessor(engine)
        processor.register(
            "bypass", "(R1 & R2) - R3", every=10_000,
            threshold=50_000, on_alert=page_the_oncall,
        )
        for update in traffic:
            processor.process(update)

    Evaluation cost is bounded: queries touch only per-level aggregates of
    the maintained synopses, so even aggressive cadences stay cheap
    relative to maintenance.
    """

    def __init__(self, engine: StreamEngine) -> None:
        self.engine = engine
        self._queries: dict[str, StandingQuery] = {}

    # -- registration -----------------------------------------------------

    def register(
        self,
        name: str,
        expression: SetExpression | str,
        epsilon: float = 0.1,
        every: int = 10_000,
        threshold: float | None = None,
        on_alert: Callable[[StandingQuery, Observation], None] | None = None,
        max_history: int | None = 10_000,
        window: float | None = None,
        realert_every: int | None = None,
    ) -> StandingQuery:
        """Register a standing query evaluated every ``every`` updates.

        ``threshold``/``on_alert`` make it an alerting rule: an
        observation that *crosses* the threshold is recorded in
        ``query.alerts`` and the callback (if any) fires; a sustained
        breach stays silent until it clears and crosses again, unless
        ``realert_every=n`` opts into a re-page every ``n``-th breaching
        observation (see :class:`StandingQuery`).

        ``window`` (windowed engines only) evaluates the query over the
        most recent ``window`` time units — the "distinct IPs in A ∩ B
        over the last 5 minutes" shape.  The alert cadence is then per
        window state: ``every`` still counts processed updates, but each
        evaluation sees only in-window traffic, so a breach clears on
        its own as the offending cohort ages out.

        ``max_history`` bounds the per-query observation and alert logs
        (oldest entries dropped first).  The generous default keeps
        long-running processors at a fixed footprint; pass ``None`` to
        keep every observation.
        """
        if name in self._queries:
            raise ReproError(f"standing query {name!r} already registered")
        if every < 1:
            raise ValueError("every must be positive")
        if not (0 < epsilon < 1):
            raise ValueError("epsilon must be in (0, 1)")
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be positive (or None)")
        if realert_every is not None and realert_every < 1:
            raise ValueError("realert_every must be positive (or None)")
        window = self.engine._checked_query_window(window)
        if isinstance(expression, str):
            expression = parse(expression)
        query = StandingQuery(
            name=name,
            expression=expression,
            epsilon=epsilon,
            every=every,
            threshold=threshold,
            on_alert=on_alert,
            max_history=max_history,
            window=window,
            realert_every=realert_every,
        )
        self._queries[name] = query
        return query

    def unregister(self, name: str) -> None:
        """Remove a standing query (its history is discarded).

        Raises :class:`~repro.errors.ReproError` (also a ``KeyError``,
        for callers that catch the builtin) naming the known queries
        when ``name`` was never registered.
        """
        del self._queries[self._checked_name(name)]

    def query_names(self) -> list[str]:
        """Names of the registered standing queries."""
        return sorted(self._queries)

    def _checked_name(self, name: str) -> str:
        if name not in self._queries:
            known = ", ".join(self.query_names()) or "<none>"
            raise UnknownQueryError(
                f"no standing query named {name!r}; registered queries: {known}"
            )
        return name

    def __getitem__(self, name: str) -> StandingQuery:
        """The registered query, or :class:`UnknownQueryError` (a
        ``KeyError`` subclass) naming the registered queries — the same
        typed error every lookup path raises, so a serving layer can map
        it to one protocol error kind."""
        return self._queries[self._checked_name(name)]

    # -- streaming ----------------------------------------------------------

    def process(self, update: Update) -> None:
        """Feed one update; evaluate any queries whose cadence is due.

        When several queries fall due on the same tick they are evaluated
        through :meth:`~repro.streams.engine.StreamEngine.query_many`, so
        queries over the same stream set share one union estimate and one
        set of singleton/non-emptiness masks — results stay bit-identical
        to evaluating each query alone.
        """
        self.engine.process(update)
        self._evaluate_due()

    def process_many(self, updates) -> None:
        """Feed a sequence of updates through :meth:`process`."""
        for update in updates:
            self.process(update)

    def observe(self, update: Update, at: float) -> None:
        """Feed one *timestamped* update (windowed engines only).

        Routes through :meth:`StreamEngine.observe`, so the update lands
        in both the all-time synopses and the window rings, then
        evaluates due queries exactly like :meth:`process` — windowed
        standing queries see the ring state as of ``at``.
        """
        self.engine.observe(update, at)
        self._evaluate_due()

    def observe_many(self, updates) -> int:
        """Feed ``(update, timestamp)`` pairs; returns the observed count."""
        observed = 0
        for update, at in updates:
            self.observe(update, at)
            observed += 1
        return observed

    def _evaluate_due(self) -> None:
        position = self.engine.updates_processed
        due = [
            query
            for query in self._queries.values()
            if position % query.every == 0
        ]
        if not due:
            return
        if len(due) == 1:
            self._evaluate(due[0], position)
            return
        # query_many shares work per stream set but takes one epsilon (and
        # one window) per call, so group the due queries first.
        groups: dict[tuple, list[StandingQuery]] = {}
        for query in due:
            groups.setdefault((query.epsilon, query.window), []).append(query)
        for (epsilon, window), group in groups.items():
            estimates = self.engine.query_many(
                [query.expression for query in group],
                epsilon=epsilon,
                window=window,
            )
            for query, estimate in zip(group, estimates):
                self._record(query, estimate, position)

    def evaluate_now(self, name: str) -> Observation:
        """Force an immediate evaluation of one standing query.

        Raises :class:`~repro.errors.UnknownQueryError` naming the
        registered queries when ``name`` was never registered.
        """
        query = self._queries[self._checked_name(name)]
        return self._evaluate(query, self.engine.updates_processed)

    # -- internals -------------------------------------------------------------

    def _evaluate(self, query: StandingQuery, position: int) -> Observation:
        estimate = self.engine.query(
            query.expression, query.epsilon, window=query.window
        )
        return self._record(query, estimate, position)

    def _record(
        self, query: StandingQuery, estimate: WitnessEstimate, position: int
    ) -> Observation:
        observation = Observation(at_update=position, estimate=estimate)
        if query.record(observation) and query.on_alert is not None:
            query.on_alert(query, observation)
        return observation
