"""Unit tests for the wire-format v2 payload codec.

Bit-exactness is the contract: whatever encoding a negotiation permits,
decoding must reproduce the dense counter slab byte for byte, and any
malformed payload must raise :class:`CodecError` instead of folding
garbage into a coordinator.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import IncompatibleSketchesError
from repro.streams.net import codec

SHAPE = SketchShape(domain_bits=12, num_second_level=4, independence=4)
SPEC = SketchSpec(num_sketches=8, shape=SHAPE, seed=11)

CELLS = SPEC.counter_cells


def dense_with(nonzero: dict[int, int]) -> bytes:
    slab = np.zeros(CELLS, dtype="<i8")
    for index, value in nonzero.items():
        slab[index] = value
    return slab.tobytes()


class TestNegotiation:
    def test_intersection_in_supported_order(self):
        picked = codec.negotiate_encodings(
            ["sparse", "dense+zlib", "made-up"],
            ("sparse+zlib", "sparse", "dense+zlib", "dense"),
        )
        assert picked == ("sparse", "dense+zlib", "dense")

    def test_dense_always_included(self):
        assert codec.negotiate_encodings([]) == ("dense",)
        assert "dense" in codec.negotiate_encodings(["sparse"])

    def test_dense_only_supported_side(self):
        picked = codec.negotiate_encodings(
            codec.PREFERRED_ENCODINGS, codec.DENSE_ONLY
        )
        assert picked == ("dense",)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "allowed",
        [
            codec.DENSE_ONLY,
            ("sparse",),
            ("dense+zlib",),
            ("sparse+zlib",),
            codec.PREFERRED_ENCODINGS,
        ],
    )
    @pytest.mark.parametrize("nonzero", [0, 1, 5, CELLS])
    def test_byte_exact_over_every_encoding(self, allowed, nonzero):
        rng = np.random.default_rng(nonzero * 31 + len(allowed))
        slab = np.zeros(CELLS, dtype="<i8")
        if nonzero:
            where = rng.choice(CELLS, size=nonzero, replace=False)
            slab[where] = rng.integers(
                -(2**62), 2**62, size=nonzero, dtype=np.int64
            )
        payload = slab.tobytes()
        encoding, blob = codec.encode_delta(payload, allowed)
        assert encoding in set(allowed) | {"dense"}
        assert codec.decode_dense(blob, encoding, CELLS) == payload

    def test_extreme_values_survive_zigzag(self):
        payload = dense_with(
            {0: -(2**63), 1: 2**63 - 1, 2: -1, CELLS - 1: 1}
        )
        for allowed in (("sparse",), ("sparse+zlib",)):
            encoding, blob = codec.encode_delta(payload, allowed)
            assert codec.decode_dense(blob, encoding, CELLS) == payload

    def test_fuzz_random_sparsity(self):
        rng = np.random.default_rng(99)
        for _ in range(25):
            slab = np.zeros(CELLS, dtype="<i8")
            nonzero = int(rng.integers(0, CELLS))
            where = rng.choice(CELLS, size=nonzero, replace=False)
            slab[where] = rng.integers(
                -(2**40), 2**40, size=nonzero, dtype=np.int64
            )
            payload = slab.tobytes()
            encoding, blob = codec.encode_delta(
                payload, codec.PREFERRED_ENCODINGS
            )
            assert codec.decode_dense(blob, encoding, CELLS) == payload

    def test_decode_accepts_memoryview(self):
        payload = dense_with({7: 3})
        encoding, blob = codec.encode_delta(payload, ("sparse",))
        assert (
            codec.decode_dense(memoryview(blob), encoding, CELLS) == payload
        )


class TestSizeChoice:
    def test_sparse_chosen_for_sparse_payload(self):
        payload = dense_with({3: 1, 100: -2, CELLS - 1: 7})
        encoding, blob = codec.encode_delta(
            payload, codec.PREFERRED_ENCODINGS
        )
        assert encoding.startswith("sparse")
        assert len(blob) < len(payload)

    def test_dense_fallback_never_larger_than_v1(self):
        # A fully dense random slab: the sparse form is strictly larger,
        # so the codec must fall back to (possibly zipped) dense.
        rng = np.random.default_rng(3)
        slab = rng.integers(-(2**62), 2**62, size=CELLS, dtype=np.int64)
        payload = slab.astype("<i8").tobytes()
        encoding, blob = codec.encode_delta(
            payload, codec.PREFERRED_ENCODINGS
        )
        assert len(blob) <= len(payload)
        assert codec.decode_dense(blob, encoding, CELLS) == payload

    def test_disallowed_encodings_never_produced(self):
        payload = dense_with({3: 1})
        encoding, _ = codec.encode_delta(payload, codec.DENSE_ONLY)
        assert encoding == "dense"
        encoding, _ = codec.encode_delta(payload, ("dense", "dense+zlib"))
        assert encoding in ("dense", "dense+zlib")

    def test_zlib_dropped_when_it_does_not_shrink(self):
        # A tiny sparse body barely compresses; whatever wins must never
        # exceed the un-zipped sparse form.
        payload = dense_with({0: 1})
        _, sparse_blob = codec.encode_delta(payload, ("sparse",))
        _, best_blob = codec.encode_delta(
            payload, ("sparse", "sparse+zlib")
        )
        assert len(best_blob) <= len(sparse_blob)


class TestMalformedPayloads:
    def test_unknown_encoding_rejected(self):
        with pytest.raises(codec.CodecError, match="unknown"):
            codec.decode_dense(b"", "brotli", CELLS)

    def test_wrong_dense_length_rejected(self):
        with pytest.raises(codec.CodecError, match="expected"):
            codec.decode_dense(b"\x00" * 16, "dense", CELLS)

    def test_truncated_sparse_rejected(self):
        _, blob = codec.encode_delta(dense_with({5: 9, 6: 2}), ("sparse",))
        with pytest.raises(codec.CodecError):
            codec.decode_dense(blob[:-1], "sparse", CELLS)

    def test_trailing_bytes_rejected(self):
        _, blob = codec.encode_delta(dense_with({5: 9}), ("sparse",))
        with pytest.raises(codec.CodecError):
            codec.decode_dense(blob + b"\x00", "sparse", CELLS)

    def test_count_beyond_slab_rejected(self):
        blob = struct.pack(">I", CELLS + 1)
        with pytest.raises(codec.CodecError, match="claims"):
            codec.decode_sparse_cells(blob, CELLS)

    def test_indices_beyond_slab_rejected(self):
        blob = codec.encode_sparse_cells(
            np.array([CELLS - 1]), np.array([5])
        )
        with pytest.raises(codec.CodecError, match="exceed"):
            codec.decode_sparse_cells(blob, CELLS - 1)

    def test_wraparound_gap_rejected(self):
        # A 2^64-1 gap must not wrap the reconstruction arithmetic: it
        # would turn the second step into 0, yielding duplicate indices
        # [5, 5] whose last element passes the final bound — and the
        # payload would then fold differently through the scatter path
        # (one addend wins) than through the dense path.
        gaps = np.array([5, np.iinfo(np.uint64).max], dtype=np.uint64)
        blob = (
            struct.pack(">I", 2)
            + codec._varint_encode(gaps)
            + codec._varint_encode(
                codec._zigzag(np.array([7, 9], dtype=np.int64))
            )
        )
        with pytest.raises(codec.CodecError, match="exceed"):
            codec.decode_sparse_cells(blob, CELLS)
        with pytest.raises(codec.CodecError, match="exceed"):
            codec.decode_dense(blob, "sparse", CELLS)

    def test_varint_overflow_rejected(self):
        # An 11-byte continuation run cannot encode any 64-bit value.
        blob = struct.pack(">I", 1) + b"\xff" * 11 + b"\x00"
        with pytest.raises(codec.CodecError):
            codec.decode_sparse_cells(blob, CELLS)

    def test_corrupt_zlib_rejected(self):
        with pytest.raises(codec.CodecError, match="zlib"):
            codec.decode_dense(b"not zlib at all", "sparse+zlib", CELLS)

    def test_zlib_bomb_rejected(self):
        # A stream inflating far past the slab size must be refused
        # without materialising the inflated body.
        bomb = zlib.compress(b"\x00" * (8 * CELLS * 64), 9)
        with pytest.raises(codec.CodecError, match="inflates"):
            codec.decode_dense(bomb, "dense+zlib", CELLS)


class TestFamilyCellHelpers:
    def test_nonzero_cells_round_trip(self):
        family = SPEC.build()
        family.update_batch(np.arange(50, dtype=np.uint64))
        indices, values = family.nonzero_cells()
        rebuilt = type(family).from_cells(indices, values, SPEC)
        assert rebuilt.to_bytes() == family.to_bytes()

    def test_add_cells_matches_merge(self):
        base = SPEC.build()
        base.update_batch(np.arange(30, dtype=np.uint64))
        delta = SPEC.build()
        delta.update_batch(np.arange(30, 60, dtype=np.uint64))
        expected = base.copy()
        expected.merge_in_place(delta)
        base.add_cells(*delta.nonzero_cells())
        assert base.to_bytes() == expected.to_bytes()

    def test_from_cells_rejects_out_of_range(self):
        with pytest.raises(IncompatibleSketchesError):
            type(SPEC.build()).from_cells(
                np.array([SPEC.counter_cells]), np.array([1]), SPEC
            )

    def test_from_cells_rejects_unsorted_negative_middle(self):
        # Public classmethod: unsorted input must not slip a negative
        # middle index past a first/last-only check (it would wrap into
        # the wrong cell).
        with pytest.raises(IncompatibleSketchesError):
            type(SPEC.build()).from_cells(
                np.array([0, -3, 5]), np.array([1, 1, 1]), SPEC
            )

    def test_from_cells_rejects_unsorted_oversized_middle(self):
        with pytest.raises(IncompatibleSketchesError):
            type(SPEC.build()).from_cells(
                np.array([0, SPEC.counter_cells + 1, 5]),
                np.array([1, 1, 1]),
                SPEC,
            )

    def test_counter_cell_arithmetic(self):
        assert SPEC.counter_payload_bytes == 8 * SPEC.counter_cells
        assert len(SPEC.build().to_bytes()) == SPEC.counter_payload_bytes
