"""Ablation: averaged estimate vs median-of-groups boosting.

Both use the same synopsis budget (r sketches).  The plain estimator
averages all witness observations — best mean error; the boosted variant
takes the median over g disjoint groups — fatter mean error (each group
sees r/g observations) but a much lighter upper tail, which is what the
(ε, δ) guarantee is about.  The bench reports mean and 90th-percentile
errors over repeated trials.
"""

from __future__ import annotations

import numpy as np
from _common import build_families

from repro.core.boosting import estimate_expression_boosted
from repro.core.intersection import estimate_intersection
from repro.datagen.controlled import generate_controlled
from repro.errors import EstimationError
from repro.experiments.metrics import relative_error

TRIALS = 20
NUM_SKETCHES = 240
NUM_GROUPS = 3


def run_boosting_comparison():
    plain_errors, boosted_errors = [], []
    for trial in range(TRIALS):
        rng = np.random.default_rng(7000 + trial)
        dataset = generate_controlled("A & B", 4096, 0.25, rng, domain_bits=24)
        families = build_families(dataset, NUM_SKETCHES, seed=trial)
        truth = dataset.target_size
        plain = estimate_intersection(families["A"], families["B"], 0.1).value
        plain_errors.append(relative_error(plain, truth))
        try:
            boosted = estimate_expression_boosted(
                "A & B", families, 0.1, num_groups=NUM_GROUPS
            )
        except EstimationError:
            boosted = 0.0
        boosted_errors.append(relative_error(boosted, truth))
    return {
        "plain_mean": float(np.mean(plain_errors)),
        "plain_p90": float(np.percentile(plain_errors, 90)),
        "boosted_mean": float(np.mean(boosted_errors)),
        "boosted_p90": float(np.percentile(boosted_errors, 90)),
    }


def test_boosting_tail_behaviour(benchmark):
    stats = benchmark.pedantic(run_boosting_comparison, rounds=1, iterations=1)
    print()
    print(
        f"|A ∩ B| at r={NUM_SKETCHES}: averaged vs median-of-{NUM_GROUPS} "
        f"({TRIALS} trials)"
    )
    print(f"{'':>10s} {'mean error':>11s} {'p90 error':>10s}")
    print(
        f"{'averaged':>10s} {100 * stats['plain_mean']:10.1f}% "
        f"{100 * stats['plain_p90']:9.1f}%"
    )
    print(
        f"{'boosted':>10s} {100 * stats['boosted_mean']:10.1f}% "
        f"{100 * stats['boosted_p90']:9.1f}%"
    )
    print("theory: averaging optimises the mean; the median-of-groups trick")
    print("        buys the log(1/δ) confidence factor at some mean cost")

    # Both must be usable estimators at this budget.
    assert stats["plain_mean"] < 0.5
    assert stats["boosted_mean"] < 0.7
