"""Ground-truth validation of the property checks.

Unlike the unit tests (which probe constructed cases), these tests build
sketches from known element sets, recompute every bucket's *true*
contents from the first-level hash, and compare the checks' verdicts
bucket by bucket: singleton checks may never produce a false negative,
and their false-positive rate is bounded by Lemma 3.1.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.checks import (
    identical_singleton_bucket,
    singleton_bucket,
    singleton_union_bucket,
)
from repro.core.sketch import SketchHashes, SketchShape, TwoLevelHashSketch
from repro.hashing.lsb import lsb

SHAPE = SketchShape(domain_bits=20, num_second_level=12, independence=6)


def build_with_truth(elements, seed):
    """A sketch plus the true bucket→distinct-elements map."""
    hashes = SketchHashes.draw(np.random.default_rng(seed), SHAPE)
    sketch = TwoLevelHashSketch(hashes, SHAPE)
    truth: dict[int, set[int]] = defaultdict(set)
    for element in elements:
        element = int(element)
        sketch.update(element, 1)
        truth[lsb(hashes.first_level(element))].add(element)
    return sketch, truth


class TestSingletonGroundTruth:
    def test_no_false_negatives_and_bounded_false_positives(self):
        rng = np.random.default_rng(42)
        false_positives = 0
        multi_buckets = 0
        for seed in range(10):
            elements = rng.choice(2**20, size=300, replace=False)
            sketch, truth = build_with_truth(elements, seed)
            for level in range(SHAPE.num_levels):
                actual = len(truth.get(level, set()))
                verdict = singleton_bucket(sketch, level)
                if actual == 1:
                    assert verdict, "false negative: true singleton rejected"
                elif actual == 0:
                    assert not verdict, "empty bucket declared singleton"
                else:
                    multi_buckets += 1
                    if verdict:
                        false_positives += 1
        # Lemma 3.1: each multi-element bucket errs w.p. <= 2^-12.
        assert multi_buckets > 50  # the test actually exercised the case
        assert false_positives <= 2

    def test_identical_singleton_ground_truth(self):
        rng = np.random.default_rng(43)
        for seed in range(5):
            pool = rng.choice(2**20, size=400, replace=False)
            shared, only_a, only_b = pool[:150], pool[150:275], pool[275:]
            hashes = SketchHashes.draw(np.random.default_rng(seed), SHAPE)
            sketch_a = TwoLevelHashSketch(hashes, SHAPE)
            sketch_b = TwoLevelHashSketch(hashes, SHAPE)
            truth_a: dict[int, set[int]] = defaultdict(set)
            truth_b: dict[int, set[int]] = defaultdict(set)
            for element in np.concatenate([shared, only_a]):
                sketch_a.update(int(element), 1)
                truth_a[lsb(hashes.first_level(int(element)))].add(int(element))
            for element in np.concatenate([shared, only_b]):
                sketch_b.update(int(element), 1)
                truth_b[lsb(hashes.first_level(int(element)))].add(int(element))

            for level in range(SHAPE.num_levels):
                set_a = truth_a.get(level, set())
                set_b = truth_b.get(level, set())
                expected = len(set_a) == 1 and set_a == set_b
                verdict = identical_singleton_bucket(sketch_a, sketch_b, level)
                if expected:
                    assert verdict, "false negative on identical singleton"
                # (false positives possible at rate 2^-s; not asserted per
                # bucket, covered statistically above)

    def test_singleton_union_ground_truth(self):
        rng = np.random.default_rng(44)
        for seed in range(5):
            pool = rng.choice(2**20, size=300, replace=False)
            hashes = SketchHashes.draw(np.random.default_rng(100 + seed), SHAPE)
            sketch_a = TwoLevelHashSketch(hashes, SHAPE)
            sketch_b = TwoLevelHashSketch(hashes, SHAPE)
            truth_union: dict[int, set[int]] = defaultdict(set)
            for element in pool[:200]:
                sketch_a.update(int(element), 1)
                truth_union[lsb(hashes.first_level(int(element)))].add(int(element))
            for element in pool[100:]:
                sketch_b.update(int(element), 1)
                truth_union[lsb(hashes.first_level(int(element)))].add(int(element))

            for level in range(SHAPE.num_levels):
                expected = len(truth_union.get(level, set())) == 1
                verdict = singleton_union_bucket(sketch_a, sketch_b, level)
                if expected:
                    assert verdict, "false negative on union singleton"
