"""The update-stream processing engine (Figure 1 of the paper).

:class:`StreamEngine` is the query-processing architecture the paper
sketches: it maintains one synopsis (a :class:`SketchFamily`) per update
stream, in one pass over the update tuples, in arbitrary arrival order —
and answers set-expression cardinality queries from the synopses alone.

Updates are micro-batched per stream: ``process`` appends to an in-memory
buffer and the vectorised sketch-maintenance path runs when the buffer
fills (or on ``flush``/query).  The buffered updates are a constant-size
staging area, not a violation of the streaming model — updates are still
seen once, in order, and never re-read.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, SketchSpec
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.union import estimate_union
from repro.expr.ast import SetExpression
from repro.expr.parser import parse
from repro.streams.updates import Update

__all__ = ["StreamEngine"]


class StreamEngine:
    """Maintains per-stream 2-level hash sketch synopses and answers queries.

    Parameters
    ----------
    spec:
        The sketch recipe every stream synopsis follows.  One spec for the
        whole engine — synopses must share "coins" to be combinable.
    batch_size:
        Number of buffered updates per stream that triggers the vectorised
        maintenance path.
    use_plan:
        Route maintenance through the spec's shared
        :class:`~repro.core.plan.HashPlan` (stacked hashing plus the
        element-row cache; bit-identical counters).  Because the plan is
        keyed to the spec's coins, *all* streams of the engine share one
        plan: an element hashed for one stream is a cache hit for every
        other.  ``False`` restores the classic per-sketch path.
    """

    def __init__(
        self, spec: SketchSpec, batch_size: int = 4096, use_plan: bool = True
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.spec = spec
        self._batch_size = batch_size
        self._plan_arg = "auto" if use_plan else None
        self._families: dict[str, SketchFamily] = {}
        self._buffers: dict[str, tuple[list[int], list[int]]] = {}
        self._updates_processed = 0
        # (canonical cells, streams, epsilon, pool) -> (as-of position, estimate)
        self._query_cache: dict[tuple, tuple[int, WitnessEstimate]] = {}

    # -- ingest --------------------------------------------------------------

    def process(self, update: Update) -> None:
        """Ingest one update tuple ``<stream, element, ±delta>``."""
        elements, deltas = self._buffers.setdefault(update.stream, ([], []))
        elements.append(update.element)
        deltas.append(update.delta)
        self._updates_processed += 1
        if len(elements) >= self._batch_size:
            self._flush_stream(update.stream)

    def process_many(self, updates: Iterable[Update]) -> None:
        """Ingest a sequence of update tuples."""
        for update in updates:
            self.process(update)

    def flush(self) -> None:
        """Push all buffered updates into the synopses."""
        for stream in list(self._buffers):
            self._flush_stream(stream)

    # -- queries ----------------------------------------------------------------

    def query(
        self,
        expression: SetExpression | str,
        epsilon: float = 0.1,
        pool_levels: int = 1,
        use_cache: bool = True,
    ) -> WitnessEstimate:
        """Estimate ``|E|`` for a set expression over the engine's streams.

        ``pool_levels`` enables the level-pooling extension (see
        :func:`repro.core.witness.run_witness_estimator`).

        Repeat queries are served from a semantic cache: the key is the
        expression's canonical Venn-cell set, so equivalent spellings
        (``"A & B"`` vs ``"B & A"`` vs ``"A - (A - B)"``) share one entry.
        Entries are invalidated as soon as any update has been processed
        since they were computed.  ``use_cache=False`` bypasses it.
        """
        if isinstance(expression, str):
            expression = parse(expression)
        self.flush()

        from repro.expr.optimize import canonical_cells

        key = (
            canonical_cells(expression),
            frozenset(expression.streams()),
            epsilon,
            pool_levels,
        )
        if use_cache:
            cached = self._query_cache.get(key)
            if cached is not None and cached[0] == self._updates_processed:
                return cached[1]

        families = {
            name: self._family(name) for name in expression.streams()
        }
        estimate = estimate_expression(
            expression, families, epsilon, pool_levels=pool_levels
        )
        if use_cache:
            self._query_cache[key] = (self._updates_processed, estimate)
        return estimate

    def query_union(
        self, stream_names: Iterable[str], epsilon: float = 0.1
    ) -> UnionEstimate:
        """Estimate the distinct-element count of a union of streams."""
        self.flush()
        families = [self._family(name) for name in stream_names]
        return estimate_union(families, epsilon)

    def explain(self, expression: SetExpression | str, epsilon: float = 0.1):
        """Per-subexpression cardinality breakdown (one consistent scan).

        Returns an :class:`~repro.core.explain.ExpressionExplanation`.
        """
        from repro.core.explain import explain_expression

        if isinstance(expression, str):
            expression = parse(expression)
        self.flush()
        families = {name: self._family(name) for name in expression.streams()}
        return explain_expression(expression, families, epsilon)

    # -- introspection ---------------------------------------------------------

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    def stream_names(self) -> list[str]:
        """Streams with a registered synopsis or buffered updates."""
        return sorted(set(self._families) | set(self._buffers))

    def family(self, stream: str) -> SketchFamily:
        """The maintained synopsis for ``stream`` (flushed first)."""
        self._flush_stream(stream)
        return self._family(stream)

    def synopsis_bytes(self) -> int:
        """Total size of all maintained counter arrays, in bytes."""
        return sum(family.counters.nbytes for family in self._families.values())

    def plan_stats(self):
        """Hash-plan cache counters for this engine's spec.

        Returns a :class:`~repro.core.plan.HashPlanStats` snapshot.  The
        plan is shared process-wide by spec, so the counters cover every
        family built from the same coins (all this engine's streams, and
        any sibling engine on the spec).  With ``use_plan=False`` the
        snapshot is empty.
        """
        from repro.core.plan import HashPlanStats, plan_for

        if self._plan_arg is None:
            return HashPlanStats()
        return plan_for(self.spec).stats()

    # -- checkpoint support -----------------------------------------------

    def adopt_family(self, stream: str, family: SketchFamily) -> None:
        """Install a pre-built synopsis for ``stream`` (checkpoint restore,
        or hand-off from a :class:`~repro.streams.distributed.Coordinator`).

        The family must follow the engine's spec; any buffered updates for
        the stream are discarded in favour of the adopted state.
        """
        if family.spec != self.spec:
            from repro.errors import IncompatibleSketchesError

            raise IncompatibleSketchesError(
                "adopted family does not follow the engine's SketchSpec"
            )
        self._families[stream] = family
        self._buffers.pop(stream, None)
        # The synopsis changed without updates_processed moving, so cached
        # estimates keyed on the old position would be served against the
        # new state — drop them all.
        self._query_cache.clear()

    def mark_replayed(self, num_updates: int) -> None:
        """Record updates that were applied before this engine existed
        (restored state); keeps ``updates_processed`` meaningful."""
        if num_updates < 0:
            raise ValueError("num_updates must be non-negative")
        self._updates_processed += num_updates
        if num_updates:
            self._query_cache.clear()

    # -- internals ------------------------------------------------------------

    def _family(self, stream: str) -> SketchFamily:
        if stream not in self._families:
            self._families[stream] = self.spec.build()
        return self._families[stream]

    def _flush_stream(self, stream: str) -> None:
        buffered = self._buffers.get(stream)
        if not buffered or not buffered[0]:
            return
        elements, deltas = buffered
        # ingest_batch aggregates the buffer by linearity (duplicates
        # collapse, churn cancels) before maintenance and routes through
        # the shared hash plan — bit-identical to update_batch, faster on
        # real (skewed, churning) traffic.
        self._family(stream).ingest_batch(elements, deltas, plan=self._plan_arg)
        self._buffers[stream] = ([], [])
