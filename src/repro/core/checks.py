"""Elementary property checks over 2-level hash sketches (Section 3.2).

The estimators never look at raw elements — they only ask three questions
about the collection of distinct elements that landed in a given
first-level bucket:

* :func:`singleton_bucket` — does the bucket hold exactly one distinct
  element?
* :func:`identical_singleton_bucket` — do two streams' buckets hold the
  same single element?
* :func:`singleton_union_bucket` — is the *union* of two streams' buckets
  a singleton?

Each check inspects the ``s`` second-level counter pairs; by Lemma 3.1 it
answers correctly with probability at least ``1 - 2**-s``.  (The only
possible error is declaring a multi-element bucket a singleton, which
requires all ``s`` pairwise-independent binary hashes to agree on every
element pair.)

Scalar versions take :class:`~repro.core.sketch.TwoLevelHashSketch`
objects and follow the paper's pseudo-code (Figure 4) line by line; the
``*_mask`` versions evaluate the same predicate for all ``r`` members of a
:class:`~repro.core.family.SketchFamily` at once on ``(r, s, 2)`` counter
slabs, which is what the estimators use.
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch import TwoLevelHashSketch

__all__ = [
    "singleton_bucket",
    "identical_singleton_bucket",
    "singleton_union_bucket",
    "empty_mask",
    "singleton_mask",
    "identical_singleton_mask",
    "singleton_union_mask",
    "combined_singleton_union_mask",
]


# -- scalar checks (paper Figure 4) -----------------------------------------


def singleton_bucket(sketch: TwoLevelHashSketch, level: int) -> bool:
    """True iff bucket ``level`` (probably) holds exactly one element.

    Mirrors procedure ``SingletonBucket``: an empty bucket is not a
    singleton; a bucket where some second-level pair has both counters
    positive provably holds at least two distinct elements.
    """
    bucket = sketch.bucket(level)
    if bucket[0, 0] + bucket[0, 1] == 0:
        return False
    both_sides = (bucket[:, 0] > 0) & (bucket[:, 1] > 0)
    return not bool(both_sides.any())


def identical_singleton_bucket(
    sketch_a: TwoLevelHashSketch, sketch_b: TwoLevelHashSketch, level: int
) -> bool:
    """True iff both buckets are singletons holding the same value.

    Mirrors ``IdenticalSingletonBucket``: after both pass the singleton
    test, the two elements are (probably) equal iff their second-level
    occupancy patterns agree in every pair.
    """
    if not singleton_bucket(sketch_a, level) or not singleton_bucket(sketch_b, level):
        return False
    bucket_a = sketch_a.bucket(level)
    bucket_b = sketch_b.bucket(level)
    differs = ((bucket_a > 0) != (bucket_b > 0)).any()
    return not bool(differs)


def singleton_union_bucket(
    sketch_a: TwoLevelHashSketch, sketch_b: TwoLevelHashSketch, level: int
) -> bool:
    """True iff the union of the two buckets' element sets is a singleton.

    Mirrors ``SingletonUnionBucket``: either one bucket is a singleton and
    the other empty, or both are identical singletons.
    """
    a_total = sketch_a.bucket_total(level)
    b_total = sketch_b.bucket_total(level)
    if singleton_bucket(sketch_a, level) and b_total == 0:
        return True
    if singleton_bucket(sketch_b, level) and a_total == 0:
        return True
    return identical_singleton_bucket(sketch_a, sketch_b, level)


# -- vectorised family checks -------------------------------------------------
#
# Each mask function maps one or more (r, s, 2) level slabs (see
# SketchFamily.level_slab) to an (r,) boolean array.


def empty_mask(slab: np.ndarray) -> np.ndarray:
    """Per-member emptiness of the bucket: ``(r,)`` bool."""
    return (slab[:, 0, 0] + slab[:, 0, 1]) == 0


def singleton_mask(slab: np.ndarray) -> np.ndarray:
    """Vectorised :func:`singleton_bucket` over all family members."""
    non_empty = ~empty_mask(slab)
    both_sides = ((slab[:, :, 0] > 0) & (slab[:, :, 1] > 0)).any(axis=1)
    return non_empty & ~both_sides


def identical_singleton_mask(slab_a: np.ndarray, slab_b: np.ndarray) -> np.ndarray:
    """Vectorised :func:`identical_singleton_bucket`."""
    singles = singleton_mask(slab_a) & singleton_mask(slab_b)
    same_pattern = ~((slab_a > 0) != (slab_b > 0)).any(axis=(1, 2))
    return singles & same_pattern


def singleton_union_mask(slab_a: np.ndarray, slab_b: np.ndarray) -> np.ndarray:
    """Vectorised :func:`singleton_union_bucket`."""
    one_sided_a = singleton_mask(slab_a) & empty_mask(slab_b)
    one_sided_b = singleton_mask(slab_b) & empty_mask(slab_a)
    return one_sided_a | one_sided_b | identical_singleton_mask(slab_a, slab_b)


def combined_singleton_union_mask(slabs: list[np.ndarray]) -> np.ndarray:
    """Singleton test for the union of *n* streams' buckets.

    Generalises ``SingletonUnionBucket`` to many streams by exploiting
    sketch linearity: summing the slabs yields the slab of the combined
    multiset (all net frequencies are non-negative), whose distinct-element
    set is exactly the union of the per-stream bucket contents — so the
    plain singleton test applies.
    """
    if not slabs:
        raise ValueError("need at least one slab")
    if len(slabs) == 1:
        return singleton_mask(slabs[0])
    # Accumulate into one buffer instead of a chain of `combined + slab`
    # temporaries (n-1 allocations for n streams); int64 addition is
    # exact and order-independent, so the mask is unchanged.
    combined = np.add(slabs[0], slabs[1])
    for slab in slabs[2:]:
        np.add(combined, slab, out=combined)
    return singleton_mask(combined)
