"""Least-significant-set-bit utilities.

The first level of a 2-level hash sketch maps an element ``e`` to bucket
``LSB(h(e))``, the position of the lowest set bit of the hashed value.
Because ``h(e)`` is (approximately) uniform over a ``2**61``-sized range,
``Pr[LSB(h(e)) = l] = 2**-(l+1)`` — the geometric level distribution that
both the Flajolet-Martin estimator and the 2-level hash sketch rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lsb", "lsb_array", "NUM_LEVELS"]

#: Number of first-level buckets a sketch keeps.  A 61-bit hash value has an
#: LSB in ``[0, 60]``; the all-zero hash (probability ``2**-61``) is parked
#: at the top level.  64 keeps the array shape round.
NUM_LEVELS = 64


def lsb(value: int) -> int:
    """Return the position of the least-significant set bit of ``value``.

    The value ``0`` has no set bit; it is mapped to ``NUM_LEVELS - 1``, a
    level whose natural hit probability (``2**-61``) is far below anything
    the estimators inspect, so the convention is statistically invisible.
    """
    if value < 0:
        raise ValueError("lsb is defined for non-negative integers")
    if value == 0:
        return NUM_LEVELS - 1
    return (value & -value).bit_length() - 1


def lsb_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`lsb` over a ``uint64`` array.

    Isolating the lowest set bit with ``v & -v`` yields a power of two,
    which converts to ``float64`` exactly (single-bit mantissa), so
    ``log2`` recovers the bit index without error for inputs below
    ``2**64``.  Zeros map to ``NUM_LEVELS - 1`` as in the scalar version.
    """
    values = np.asarray(values, dtype=np.uint64)
    isolated = values & (~values + np.uint64(1))
    out = np.full(values.shape, NUM_LEVELS - 1, dtype=np.int64)
    nonzero = isolated != 0
    out[nonzero] = np.log2(isolated[nonzero].astype(np.float64)).astype(np.int64)
    return out
