"""Hash-substrate bench: polynomial vs tabulation first-level hashing.

The default first-level family is a degree-(t−1) polynomial over
GF(2^61−1) — the construction the paper's limited-independence analysis
(Section 3.6) covers.  Tabulation hashing is only 3-wise independent but
evaluates by table lookups.  This bench measures raw hashing throughput
for both and checks that each feeds the geometric LSB level distribution
the sketches rely on.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import random_polynomial_hash
from repro.hashing.lsb import lsb_array
from repro.hashing.tabulation import random_tabulation_hash

N = 1 << 20


def _elements() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.integers(0, 2**30, size=N, dtype=np.uint64)


def test_polynomial_hash_throughput(benchmark):
    hash_fn = random_polynomial_hash(np.random.default_rng(1), independence=8)
    elements = _elements()
    benchmark.pedantic(hash_fn, args=(elements,), rounds=5, iterations=1)
    rate = N / benchmark.stats["mean"]
    print(f"\npolynomial (t=8): {rate / 1e6:.1f} M elements/s")


def test_tabulation_hash_throughput(benchmark):
    hash_fn = random_tabulation_hash(np.random.default_rng(2))
    elements = _elements()
    benchmark.pedantic(hash_fn, args=(elements,), rounds=5, iterations=1)
    rate = N / benchmark.stats["mean"]
    print(f"\ntabulation (3-wise): {rate / 1e6:.1f} M elements/s")


def test_level_distribution_quality(benchmark):
    """Both families must produce geometric LSB levels — the property
    every estimator in the library rests on."""

    def measure():
        elements = _elements()
        deviations = {}
        for name, hash_fn in (
            ("polynomial", random_polynomial_hash(np.random.default_rng(3), 8)),
            ("tabulation", random_tabulation_hash(np.random.default_rng(4))),
        ):
            levels = lsb_array(hash_fn(elements))
            worst = 0.0
            for level in range(8):
                frequency = float((levels == level).mean())
                expected = 2.0 ** -(level + 1)
                worst = max(worst, abs(frequency - expected) / expected)
            deviations[name] = worst
        return deviations

    deviations = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for name, worst in deviations.items():
        print(f"{name}: worst relative deviation from 2^-(l+1) over levels "
              f"0-7: {100 * worst:.2f}%")
    assert all(worst < 0.05 for worst in deviations.values())
