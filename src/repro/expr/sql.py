"""Rendering set expressions as SQL.

The paper motivates set-expression cardinality estimation partly through
SQL's ``UNION`` / ``INTERSECT`` / ``EXCEPT`` operators over compatible
tables.  :func:`to_sql` renders an expression tree as the corresponding
SQL statement, so an optimiser integration can round-trip between the
estimator's expression language and the queries it is sizing::

    >>> from repro.expr.parser import parse
    >>> from repro.expr.sql import to_sql
    >>> to_sql(parse("(A - B) & C"), column="customer_id")
    'SELECT customer_id FROM (SELECT customer_id FROM A EXCEPT SELECT customer_id FROM B) AS sub1 INTERSECT SELECT customer_id FROM C'

SQL's set operators deduplicate (bag semantics need ``ALL``, which
cardinality-of-distinct estimation deliberately avoids), matching the
paper's distinct-count semantics exactly.
"""

from __future__ import annotations

from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
)

__all__ = ["to_sql", "cardinality_sql"]

_OPERATOR_SQL = {
    UnionExpr: "UNION",
    IntersectionExpr: "INTERSECT",
    DifferenceExpr: "EXCEPT",
}


def to_sql(expression: SetExpression, column: str = "element") -> str:
    """The SQL set-operation statement computing ``E``.

    ``column`` is the (shared, compatible) column selected from each
    stream's table; stream identifiers become table names verbatim.
    Nested compounds are rendered as wrapped subselects
    (``SELECT col FROM (…) AS subN``) rather than bare parenthesised
    operands, which not every engine (e.g. SQLite) accepts.
    """
    _check_identifier(column)
    statement, _ = _render(expression, column, alias_counter=0)
    return statement


def cardinality_sql(expression: SetExpression, column: str = "element") -> str:
    """The SQL query computing the exact ``|E|`` the estimators estimate."""
    return f"SELECT COUNT(*) FROM ({to_sql(expression, column)}) AS result"


def _render(
    expression: SetExpression, column: str, alias_counter: int
) -> tuple[str, int]:
    if isinstance(expression, StreamRef):
        return f"SELECT {column} FROM {expression.name}", alias_counter
    operator = _OPERATOR_SQL[type(expression)]
    left, alias_counter = _render_operand(expression.left, column, alias_counter)
    right, alias_counter = _render_operand(expression.right, column, alias_counter)
    return f"{left} {operator} {right}", alias_counter


def _render_operand(
    expression: SetExpression, column: str, alias_counter: int
) -> tuple[str, int]:
    """An operand usable inside a compound: leaves render plainly,
    nested compounds become wrapped subselects."""
    if isinstance(expression, StreamRef):
        return f"SELECT {column} FROM {expression.name}", alias_counter
    inner, alias_counter = _render(expression, column, alias_counter)
    alias_counter += 1
    return (
        f"SELECT {column} FROM ({inner}) AS sub{alias_counter}",
        alias_counter,
    )


def _check_identifier(column: str) -> None:
    if not column or not column.replace("_", "").isalnum():
        raise ValueError(f"invalid column identifier: {column!r}")
