"""Update-log files: durable, replayable update streams.

A deployment needs its update streams to come from *somewhere* — packet
taps, transaction logs, message queues.  This module provides the
lowest common denominator: a line-oriented update-log format

.. code-block:: text

    # comment lines and blanks are ignored
    A 12345 +1
    B 777 -2

(stream id, element, signed delta — whitespace separated), with optional
gzip compression chosen by file suffix.  Logs written by
:func:`save_updates` replay identically through :func:`load_updates`,
and :func:`replay_into` feeds any object with a ``process(update)``
method (the :class:`~repro.streams.engine.StreamEngine`, the exact
store, a site).
"""

from __future__ import annotations

import gzip
import pathlib
from typing import Callable, Iterable, Iterator

from repro.errors import ReproError
from repro.streams.updates import Update

__all__ = [
    "save_updates",
    "load_updates",
    "load_updates_csv",
    "replay_into",
    "UpdateLogError",
]


class UpdateLogError(ReproError, ValueError):
    """An update-log line could not be parsed."""


def _open(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_updates(path: str | pathlib.Path, updates: Iterable[Update]) -> int:
    """Write updates to a log file (gzip if the path ends in ``.gz``).

    Returns the number of updates written.
    """
    path = pathlib.Path(path)
    count = 0
    with _open(path, "w") as handle:
        handle.write("# repro update log: <stream> <element> <delta>\n")
        for update in updates:
            handle.write(f"{update.stream} {update.element} {update.delta:+d}\n")
            count += 1
    return count


def load_updates(path: str | pathlib.Path) -> Iterator[Update]:
    """Stream updates back from a log file, one pass, in order.

    Raises :class:`UpdateLogError` (with line number) on malformed lines;
    the ``Update`` constructor's own validation (non-zero delta,
    non-negative element) applies too.
    """
    path = pathlib.Path(path)
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3:
                raise UpdateLogError(
                    f"{path}:{line_number}: expected 3 fields, got {len(parts)}"
                )
            stream, element_text, delta_text = parts
            try:
                element = int(element_text)
                delta = int(delta_text)
            except ValueError as exc:
                raise UpdateLogError(
                    f"{path}:{line_number}: non-integer field ({exc})"
                ) from exc
            try:
                yield Update(stream, element, delta)
            except ValueError as exc:
                raise UpdateLogError(f"{path}:{line_number}: {exc}") from exc


def load_updates_csv(
    path: str | pathlib.Path,
    stream_column: str = "stream",
    element_column: str = "element",
    delta_column: str = "delta",
    default_delta: int = 1,
) -> Iterator[Update]:
    """Stream updates from a CSV file with a header row.

    Column names are configurable so real exports (NetFlow dumps,
    transaction logs) load without reshaping.  When the delta column is
    missing from the header, every row counts as ``default_delta``
    insertions — the common case for event logs that only record
    occurrences.
    """
    import csv

    path = pathlib.Path(path)
    with _open(path, "r") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise UpdateLogError(f"{path}: empty CSV (no header row)")
        for required in (stream_column, element_column):
            if required not in reader.fieldnames:
                raise UpdateLogError(
                    f"{path}: missing column {required!r} "
                    f"(have {', '.join(reader.fieldnames)})"
                )
        has_delta = delta_column in reader.fieldnames
        for row_number, row in enumerate(reader, start=2):
            try:
                element = int(row[element_column])
                delta = int(row[delta_column]) if has_delta else default_delta
            except (TypeError, ValueError) as exc:
                raise UpdateLogError(
                    f"{path}:{row_number}: non-integer field ({exc})"
                ) from exc
            try:
                yield Update(row[stream_column], element, delta)
            except ValueError as exc:
                raise UpdateLogError(f"{path}:{row_number}: {exc}") from exc


def replay_into(
    path: str | pathlib.Path,
    *sinks,
    progress: Callable[[int], None] | None = None,
    progress_every: int = 100_000,
) -> int:
    """Replay a log into one or more consumers with ``process``/``apply``.

    Each sink must expose ``process(update)`` (engines, sites) or
    ``apply(update)`` (the exact store).  Returns the number of updates
    replayed.  ``.csv`` / ``.csv.gz`` paths route through
    :func:`load_updates_csv` with default column names.
    """
    methods = []
    for sink in sinks:
        handler = getattr(sink, "process", None) or getattr(sink, "apply", None)
        if handler is None:
            raise TypeError(f"{type(sink).__name__} has no process()/apply() method")
        methods.append(handler)

    suffixes = pathlib.Path(path).suffixes
    is_csv = ".csv" in suffixes
    source = load_updates_csv(path) if is_csv else load_updates(path)
    count = 0
    for update in source:
        for handler in methods:
            handler(update)
        count += 1
        if progress is not None and count % progress_every == 0:
            progress(count)
    return count
