"""Set-expression trees, parsing, and Venn-partition algebra."""

from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
    streams,
)
from repro.expr.compile import CompiledExpression, compile_expression
from repro.expr.optimize import (
    canonical_cells,
    equivalent,
    is_tautology,
    is_unsatisfiable,
    simplify,
)
from repro.expr.parser import parse
from repro.expr.sql import cardinality_sql, to_sql
from repro.expr.venn import (
    Cell,
    all_cells,
    cells_of_expression,
    expression_size_from_cells,
)

__all__ = [
    "DifferenceExpr",
    "IntersectionExpr",
    "SetExpression",
    "StreamRef",
    "UnionExpr",
    "streams",
    "CompiledExpression",
    "compile_expression",
    "parse",
    "canonical_cells",
    "equivalent",
    "is_tautology",
    "is_unsatisfiable",
    "simplify",
    "to_sql",
    "cardinality_sql",
    "Cell",
    "all_cells",
    "cells_of_expression",
    "expression_size_from_cells",
]
