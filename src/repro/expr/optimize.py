"""Set-expression analysis and simplification.

Because set operators only observe per-stream membership, an expression
over streams ``S`` is *semantically* nothing more than the set of Venn
cells it covers (see :mod:`repro.expr.venn`).  That gives a complete
decision procedure:

* :func:`canonical_cells` — the expression's meaning as a frozenset of
  cells;
* :func:`equivalent` — two expressions denote the same set function iff
  their cell sets (over the union of their stream sets) coincide;
* :func:`is_unsatisfiable` / :func:`is_tautology` — empty / full cover;
* :func:`simplify` — rebuild a (often smaller) expression tree from the
  cell set in disjunctive normal form, with special-casing for the empty
  and full covers.

The estimators use :func:`is_unsatisfiable` to answer ``|E| = 0`` without
touching any synopsis, and the engine's planner can use
:func:`equivalent` to reuse cached estimates across spellings of the
same query.
"""

from __future__ import annotations

from functools import reduce

from repro.errors import ExpressionError
from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
)
from repro.expr.venn import Cell, all_cells, cells_of_expression

__all__ = [
    "canonical_cells",
    "equivalent",
    "is_unsatisfiable",
    "is_tautology",
    "simplify",
]


def canonical_cells(
    expression: SetExpression, over_streams: frozenset[str] | None = None
) -> frozenset[Cell]:
    """The expression's meaning as a set of Venn cells.

    ``over_streams`` (optional) widens the cell universe — needed to
    compare expressions that mention different stream sets.  Each cell of
    the wider universe is projected onto the expression's own streams for
    the membership test.
    """
    names = expression.streams()
    universe = names if over_streams is None else frozenset(over_streams) | names
    selected = []
    for cell in all_cells(sorted(universe)):
        membership = {name: name in cell for name in universe}
        if expression.contains(membership):
            selected.append(cell)
    return frozenset(selected)


def equivalent(first: SetExpression, second: SetExpression) -> bool:
    """True iff the two expressions denote the same set for all inputs."""
    universe = first.streams() | second.streams()
    return canonical_cells(first, universe) == canonical_cells(second, universe)


def is_unsatisfiable(expression: SetExpression) -> bool:
    """True iff ``E`` is empty for every possible stream contents."""
    return not cells_of_expression(expression)


def is_tautology(expression: SetExpression) -> bool:
    """True iff ``E`` equals the union of its streams for every input."""
    names = expression.streams()
    return len(cells_of_expression(expression)) == 2 ** len(names) - 1


def simplify(expression: SetExpression) -> SetExpression:
    """An equivalent expression rebuilt from the canonical cell set.

    Simplification proceeds in two steps:

    1. **stream elimination** — a stream whose membership never changes
       the outcome (e.g. ``C`` in ``(A & B) | (A - B) | (A & B & C)``)
       is dropped from the universe;
    2. **DNF rebuild** over the essential streams: each covered Venn cell
       becomes the intersection of its member streams minus the union of
       the rest, the terms joined by union.  Degenerate covers collapse —
       unsatisfiable → ``A - A`` (there is no empty-set literal in the
       grammar), full cover → the plain union of the essential streams.

    The output is not guaranteed minimal in general — minimal two-level
    form is set-cover-hard — but it is canonical: equivalent inputs map
    to structurally equal outputs.
    """
    names = sorted(expression.streams())
    if not names:
        raise ExpressionError("expression mentions no streams")

    essential = _essential_streams(expression, names)
    if not essential:
        # The expression ignores every stream; since the all-false pattern
        # evaluates to False, it is unsatisfiable.
        anchor = StreamRef(names[0])
        return DifferenceExpr(anchor, anchor)

    cells = _cells_over(expression, names, essential)
    if not cells:
        anchor = StreamRef(essential[0])
        return DifferenceExpr(anchor, anchor)
    if len(cells) == 2 ** len(essential) - 1:
        return _union_of([StreamRef(name) for name in essential])

    terms = [_cell_term(cell, essential) for cell in sorted(cells, key=_cell_key)]
    return _union_of(terms)


def _essential_streams(expression: SetExpression, names: list[str]) -> list[str]:
    """Streams whose membership can change the expression's outcome.

    A stream ``s`` is redundant iff flipping its membership bit never
    changes ``contains`` — checked over all patterns of the remaining
    (still-essential) streams, so elimination cascades.
    """
    essential = list(names)
    changed = True
    while changed:
        changed = False
        for candidate in list(essential):
            others = [name for name in essential if name != candidate]
            if _is_redundant(expression, candidate, others):
                essential.remove(candidate)
                changed = True
    return essential


def _is_redundant(
    expression: SetExpression, candidate: str, others: list[str]
) -> bool:
    for pattern in range(2 ** len(others)):
        membership = {
            name: bool(pattern >> index & 1) for index, name in enumerate(others)
        }
        with_candidate = dict(membership, **{candidate: True})
        without_candidate = dict(membership, **{candidate: False})
        if expression.contains(with_candidate) != expression.contains(
            without_candidate
        ):
            return False
    return True


def _cells_over(
    expression: SetExpression, all_names: list[str], essential: list[str]
) -> list[Cell]:
    """Covered cells over the essential universe (eliminated streams are
    membership-irrelevant, so they are fixed to False)."""
    selected = []
    for cell in all_cells(essential):
        membership = {name: name in cell for name in all_names}
        if expression.contains(membership):
            selected.append(cell)
    return selected


def _cell_key(cell: Cell) -> tuple:
    return (len(cell), tuple(sorted(cell)))


def _cell_term(cell: Cell, names: list[str]) -> SetExpression:
    """The expression denoting exactly one Venn cell."""
    inside = [StreamRef(name) for name in sorted(cell)]
    outside = [StreamRef(name) for name in names if name not in cell]
    term = reduce(IntersectionExpr, inside[1:], inside[0])
    if outside:
        term = DifferenceExpr(term, _union_of(outside))
    return term


def _union_of(parts: list[SetExpression]) -> SetExpression:
    return reduce(UnionExpr, parts[1:], parts[0])
