"""Ablation: the ε knob's effect on the witness level and accuracy.

ε enters the estimator twice: the union sub-estimate runs at ε/3, and
the witness level is ``⌈log₂(β·û/(1−ε))⌉`` — larger ε pushes the level
up (sparser buckets, fewer but cleaner singleton observations).  At a
fixed synopsis budget the measured error is therefore fairly flat in ε:
the parameter prescribes the *target*, while the synopsis size decides
what you actually get.  This bench documents that (often misunderstood)
behaviour.
"""

from __future__ import annotations

from _common import build_families, intersection_dataset

from repro.core.intersection import estimate_intersection
from repro.experiments.metrics import relative_error, trimmed_mean_error

EPSILONS = (0.05, 0.1, 0.2, 0.4)
NUM_SKETCHES = 192
TRIALS = 8


def run_epsilon_sweep():
    rows = []
    datasets = [intersection_dataset(seed=1100 + t) for t in range(TRIALS)]
    family_sets = [
        build_families(dataset, NUM_SKETCHES, seed=t)
        for t, dataset in enumerate(datasets)
    ]
    for epsilon in EPSILONS:
        errors = []
        valid_counts = []
        for dataset, families in zip(datasets, family_sets):
            estimate = estimate_intersection(families["A"], families["B"], epsilon)
            errors.append(relative_error(estimate.value, dataset.target_size))
            valid_counts.append(estimate.num_valid)
        rows.append(
            (
                epsilon,
                trimmed_mean_error(errors),
                sum(valid_counts) / len(valid_counts),
            )
        )
    return rows


def test_epsilon_sensitivity(benchmark):
    rows = benchmark.pedantic(run_epsilon_sweep, rounds=1, iterations=1)
    print()
    print(f"ε sensitivity, |A ∩ B| at ratio 0.25, r={NUM_SKETCHES}")
    print(f"{'ε':>6s} {'trimmed error':>14s} {'avg valid obs':>14s}")
    for epsilon, error, valid in rows:
        print(f"{epsilon:6.2f} {100 * error:13.1f}% {valid:14.1f}")
    print("note: with the synopsis budget fixed, ε mostly moves the witness")
    print("level; accuracy is governed by r — ε is a target, not a dial")

    errors = [error for _, error, _ in rows]
    assert all(error < 0.6 for error in errors)
    # Flat within generous noise — no cliff as epsilon varies 8x.
    assert max(errors) - min(errors) < 0.35
