"""Cross-operator accuracy matrix.

One parametrised sweep exercising the witness estimator through varied
Boolean structures — every operator, several nesting shapes, two target
ratios — against exact ground truth from the controlled generator.  The
tolerances are deliberately loose (these are correctness-of-logic tests,
not benchmark assertions; tight accuracy claims live in benchmarks/).
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.expression import estimate_expression
from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.datagen.controlled import generate_controlled
from repro.experiments.metrics import relative_error

# Full-accuracy sweeps dominate suite runtime; the fast tier skips them
# (`pytest -m "not slow"`), the default invocation still runs everything.
pytestmark = pytest.mark.slow

SHAPE = SketchShape(domain_bits=24, num_second_level=12, independence=8)
NUM_SKETCHES = 384
TRIALS = 3

# "A | B" is absent: it covers its whole union, so a target ratio below 1
# is unsatisfiable by construction (the generator rejects it, correctly).
EXPRESSIONS = [
    "A & B",
    "A - B",
    "(A - B) & C",
    "A - (B | C)",
    "(A & B) | (B & C)",
    "(A | B) & (B | C)",
    "((A - B) | (B - C)) & (A | C)",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
@pytest.mark.parametrize("ratio", [0.5, 0.25])
def test_expression_accuracy(text: str, ratio: float):
    """Median-of-trials error must be moderate; every estimate positive
    when the target is a solid fraction of the union."""
    errors = []
    for trial in range(TRIALS):
        # crc32, not hash(): str hashing is salted per process, which made
        # the drawn datasets — and with them this test — change per run.
        rng = np.random.default_rng(
            [zlib.crc32(text.encode()) % 2**32, int(ratio * 100), trial]
        )
        dataset = generate_controlled(text, 3072, ratio, rng, domain_bits=24)
        spec = SketchSpec(num_sketches=NUM_SKETCHES, shape=SHAPE, seed=trial)
        families = {}
        for name in dataset.stream_names():
            family = spec.build()
            family.update_batch(dataset.elements[name])
            families[name] = family
        estimate = estimate_expression(text, families, 0.1, pool_levels=4)
        truth = dataset.target_size
        assert truth > 0
        errors.append(relative_error(estimate.value, truth))
    assert float(np.median(errors)) < 0.45, (text, ratio, errors)
