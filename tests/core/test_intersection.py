"""Unit tests for the set-intersection estimator (Section 3.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.intersection import (
    atomic_intersection_estimate,
    estimate_intersection,
)
from repro.core.sketch import SketchShape
from repro.errors import IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=24, num_second_level=12, independence=8)


def two_families(only_a, shared, only_b, num_sketches=256, seed=0):
    spec = SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed)
    family_a, family_b = spec.build(), spec.build()
    family_a.update_batch(np.concatenate([only_a, shared]).astype(np.uint64))
    family_b.update_batch(np.concatenate([shared, only_b]).astype(np.uint64))
    return family_a, family_b


def controlled_pools(rng, u, shared_fraction):
    pool = rng.choice(2**24, size=u, replace=False)
    num_shared = int(u * shared_fraction)
    rest = u - num_shared
    shared = pool[:num_shared]
    only_a = pool[num_shared : num_shared + rest // 2]
    only_b = pool[num_shared + rest // 2 :]
    return only_a, shared, only_b


class TestAccuracy:
    @pytest.mark.parametrize("shared_fraction", [0.5, 0.25])
    def test_moderate_targets(self, shared_fraction: float):
        rng = np.random.default_rng(60)
        only_a, shared, only_b = controlled_pools(rng, 4096, shared_fraction)
        family_a, family_b = two_families(only_a, shared, only_b, 512)
        truth = len(shared)
        estimate = estimate_intersection(family_a, family_b, 0.1)
        assert abs(estimate.value - truth) / truth < 0.5

    def test_identical_streams(self):
        rng = np.random.default_rng(61)
        pool = rng.choice(2**24, size=2048, replace=False)
        family_a, family_b = two_families(pool[:0], pool, pool[:0], 256)
        estimate = estimate_intersection(family_a, family_b, 0.1)
        assert abs(estimate.value - 2048) / 2048 < 0.35

    def test_disjoint_streams_estimate_zero(self):
        rng = np.random.default_rng(62)
        pool = rng.choice(2**24, size=2048, replace=False)
        family_a, family_b = two_families(pool[:1024], pool[:0], pool[1024:], 256)
        estimate = estimate_intersection(family_a, family_b, 0.1)
        assert estimate.value == 0.0
        assert estimate.num_witnesses == 0

    def test_both_empty(self):
        empty = np.array([], dtype=np.uint64)
        family_a, family_b = two_families(empty, empty, empty)
        assert estimate_intersection(family_a, family_b).value == 0.0

    def test_deletions_shrink_intersection(self):
        rng = np.random.default_rng(63)
        only_a, shared, only_b = controlled_pools(rng, 2048, 0.5)
        family_a, family_b = two_families(only_a, shared, only_b, 512)
        # Remove half the shared elements from B.
        removed = shared[: len(shared) // 2].astype(np.uint64)
        family_b.update_batch(removed, np.full(removed.size, -1))
        truth = len(shared) - removed.size
        estimate = estimate_intersection(family_a, family_b, 0.1)
        assert abs(estimate.value - truth) / truth < 0.5


class TestComplementarity:
    def test_intersection_plus_differences_cover_union(self):
        """|A∩B| + |A−B| + |B−A| must come out close to |A∪B| when the
        three estimates use the same synopses."""
        rng = np.random.default_rng(64)
        only_a, shared, only_b = controlled_pools(rng, 4096, 0.4)
        family_a, family_b = two_families(only_a, shared, only_b, 512)
        from repro.core.difference import estimate_difference
        from repro.core.union import estimate_union

        union = estimate_union([family_a, family_b], 0.1 / 3)
        intersection = estimate_intersection(
            family_a, family_b, 0.1, union_estimate=union
        )
        diff_ab = estimate_difference(family_a, family_b, 0.1, union_estimate=union)
        diff_ba = estimate_difference(family_b, family_a, 0.1, union_estimate=union)
        reconstructed = intersection.value + diff_ab.value + diff_ba.value
        assert abs(reconstructed - union.value) / union.value < 0.35


class TestAtomicEstimator:
    def test_matches_vectorised_masks(self):
        rng = np.random.default_rng(65)
        only_a, shared, only_b = controlled_pools(rng, 1024, 0.5)
        family_a, family_b = two_families(only_a, shared, only_b, 64)
        estimate = estimate_intersection(family_a, family_b, 0.1)
        num_valid = num_witnesses = 0
        for index in range(64):
            atomic = atomic_intersection_estimate(
                family_a.sketch(index), family_b.sketch(index), estimate.level
            )
            if atomic is not None:
                num_valid += 1
                num_witnesses += atomic
        assert num_valid == estimate.num_valid
        assert num_witnesses == estimate.num_witnesses

    def test_no_estimate_on_empty_bucket(self):
        spec = SketchSpec(num_sketches=1, shape=SHAPE, seed=1)
        family_a, family_b = spec.build(), spec.build()
        assert (
            atomic_intersection_estimate(family_a.sketch(0), family_b.sketch(0), 5)
            is None
        )


class TestValidation:
    def test_bad_epsilon(self):
        empty = np.array([], dtype=np.uint64)
        family_a, family_b = two_families(empty, empty, empty)
        with pytest.raises(ValueError):
            estimate_intersection(family_a, family_b, 1.5)

    def test_mismatched_specs(self):
        spec_a = SketchSpec(num_sketches=8, shape=SHAPE, seed=1)
        spec_b = SketchSpec(num_sketches=8, shape=SHAPE, seed=2)
        with pytest.raises(IncompatibleSketchesError):
            estimate_intersection(spec_a.build(), spec_b.build())
