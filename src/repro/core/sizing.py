"""Synopsis sizing from the paper's space bounds (Theorems 3.3–3.5, 4.1).

The theorems say how much synopsis a target accuracy needs:

* union: ``r = Θ(log(1/δ) / ε²)`` sketches;
* difference/intersection/expressions: the same, multiplied by the
  inverse cardinality ratio ``|∪ᵢAᵢ| / |E|`` (small expressions are hard),
  and by ``n`` for an ``n``-stream expression;
* second-level hashes: ``s = Θ(log(r/δ))`` so that all property checks
  over all sketches succeed simultaneously (union bound).

The Θ-constants are not pinned down by the paper; this module uses the
explicit constants its analysis derives (e.g. ``256/(7ε²)·ln(1/δ)`` for
the union Chernoff bound, ``β = 2`` and ``ε₁ = (√5−1)/2`` for the witness
estimators) so the recommendations are concrete and conservative.
:func:`recommend_spec` turns a target ``(ε, δ)`` and an expected
cardinality ratio into a ready-to-use :class:`~repro.core.family.SketchSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape

__all__ = [
    "union_sketches_needed",
    "witness_sketches_needed",
    "second_level_hashes_needed",
    "SynopsisPlan",
    "recommend_spec",
]

#: The paper's optimal witness-level constant and the Chernoff split
#: constant ε₁ = (√5 − 1)/2 from the Section 3.4 analysis.
_BETA = 2.0
_EPSILON_1 = (math.sqrt(5.0) - 1.0) / 2.0


def union_sketches_needed(epsilon: float, delta: float) -> int:
    """Sketches for an (ε, δ) union estimate (Theorem 3.3 analysis).

    The Chernoff bound in Section 3.3 requires
    ``r ≥ 256·log(1/δ) / (7·ε²)``.
    """
    _check(epsilon, delta)
    return max(1, math.ceil(256.0 * math.log(1.0 / delta) / (7.0 * epsilon**2)))


def witness_sketches_needed(
    epsilon: float, delta: float, cardinality_ratio: float, num_streams: int = 2
) -> int:
    """Sketches for an (ε, δ) witness estimate of ``|E|``.

    Parameters
    ----------
    cardinality_ratio:
        The expected ``|E| / |∪ᵢAᵢ|`` — the hardness knob in Theorems
        3.4/3.5/4.1.  Smaller ratios need proportionally more sketches.
    num_streams:
        The ``n`` factor of Theorem 4.1 (2 for plain difference and
        intersection).

    The analysis needs ``r' ≥ 2·log(1/δ)·(u/|E|) / (ε/3)²`` *valid*
    observations, and a valid observation occurs with probability at
    least ``(1−ε₁)(β−1)/β²``; dividing gives the total ``r``.
    """
    _check(epsilon, delta)
    if not (0.0 < cardinality_ratio <= 1.0):
        raise ValueError("cardinality_ratio must lie in (0, 1]")
    if num_streams < 1:
        raise ValueError("num_streams must be positive")
    valid_needed = (
        2.0 * math.log(1.0 / delta) / ((epsilon / 3.0) ** 2) / cardinality_ratio
    )
    valid_probability = (1.0 - _EPSILON_1) * (_BETA - 1.0) / _BETA**2
    scale = max(1, num_streams - 1)
    return max(1, math.ceil(scale * valid_needed / valid_probability))


def second_level_hashes_needed(num_sketches: int, delta: float) -> int:
    """``s`` so every singleton check across ``r`` sketches holds w.p. 1−δ.

    Each check errs with probability ``2^-s``; a union bound over the
    ``r`` sketches (each consulted a constant number of times) needs
    ``2^-s ≤ δ / r``, i.e. ``s ≥ log₂(r/δ)``.
    """
    if num_sketches < 1:
        raise ValueError("num_sketches must be positive")
    if not (0.0 < delta < 1.0):
        raise ValueError("delta must lie in (0, 1)")
    return max(1, math.ceil(math.log2(num_sketches / delta)))


@dataclass(frozen=True)
class SynopsisPlan:
    """A sizing recommendation plus its cost accounting."""

    spec: SketchSpec
    epsilon: float
    delta: float
    cardinality_ratio: float
    num_streams: int

    @property
    def bytes_per_stream(self) -> int:
        """Counter storage for one stream's family (8-byte counters)."""
        shape = self.spec.shape
        return self.spec.num_sketches * shape.num_levels * shape.num_second_level * 2 * 8

    def describe(self) -> str:
        """One-paragraph human-readable summary of the plan."""
        return (
            f"(ε={self.epsilon:g}, δ={self.delta:g}) at |E|/u ≥ "
            f"{self.cardinality_ratio:g} over {self.num_streams} streams: "
            f"{self.spec.num_sketches} sketches × "
            f"{self.spec.shape.num_second_level} second-level hashes "
            f"≈ {self.bytes_per_stream / 1e6:.1f} MB per stream\n"
            f"note: worst-case Chernoff constants; the paper's experiments "
            f"(and ours) observe ~10% error from a few hundred sketches at "
            f"moderate ratios — treat this as an upper bound"
        )


def recommend_spec(
    epsilon: float,
    delta: float,
    cardinality_ratio: float = 1.0,
    num_streams: int = 2,
    domain_bits: int = 30,
    seed: int = 0,
) -> SynopsisPlan:
    """A :class:`SketchSpec` meeting an (ε, δ) target for a workload.

    ``cardinality_ratio`` is the smallest ``|E| / |∪ᵢAᵢ|`` the workload
    must resolve (1.0 if only unions are asked); ``num_streams`` the
    widest expression.  The independence ``t = max(4, ⌈log₂(3/ε)⌉)``
    follows Section 3.6's limited-independence requirement.
    """
    union_r = union_sketches_needed(epsilon, delta)
    witness_r = witness_sketches_needed(epsilon, delta, cardinality_ratio, num_streams)
    num_sketches = max(union_r, witness_r)
    shape = SketchShape(
        domain_bits=domain_bits,
        num_second_level=second_level_hashes_needed(num_sketches, delta),
        independence=max(4, math.ceil(math.log2(3.0 / epsilon))),
    )
    spec = SketchSpec(num_sketches=num_sketches, shape=shape, seed=seed)
    return SynopsisPlan(
        spec=spec,
        epsilon=epsilon,
        delta=delta,
        cardinality_ratio=cardinality_ratio,
        num_streams=num_streams,
    )


def _check(epsilon: float, delta: float) -> None:
    if not (0.0 < epsilon < 1.0):
        raise ValueError("epsilon must lie in (0, 1)")
    if not (0.0 < delta < 1.0):
        raise ValueError("delta must lie in (0, 1)")
