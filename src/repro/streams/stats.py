"""Ingest metrics for the sharded parallel-ingestion layer.

The sharded engine (:mod:`repro.streams.sharded`) runs maintenance on
several shards at once, so "how fast is ingest?" stops being one number:
each shard has its own routed-update count, its own flush clock, and its
own aggregation ratio, and the query path adds merge work on top.  The
dataclasses here are the introspection surface — cheap plain-data
snapshots, safe to read while ingestion continues.

``ShardStats`` describes one shard; ``IngestStats`` is the engine-level
roll-up returned by :meth:`repro.streams.sharded.ShardedEngine.stats`.
:class:`~repro.core.plan.HashPlanStats` (re-exported here) reports the
shared hash plan's element-row cache — hit rate, evictions, and the
hash-vs-scatter time breakdown — via ``IngestStats.plan`` and
:meth:`repro.streams.engine.StreamEngine.plan_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.plan import HashPlanStats

__all__ = [
    "ShardStats",
    "IngestStats",
    "HashPlanStats",
    "QueryStats",
    "WindowStats",
    "TransportStats",
    "rollup_transport_stats",
]


@dataclass
class QueryStats:
    """Query-path counters of a :class:`~repro.streams.engine.StreamEngine`.

    Answered expression queries split three ways:

    * ``cache_hits`` — served from the semantic cache with no updates
      processed since the entry was stored;
    * ``revalidations`` — updates *were* processed, but every sketch level
      the entry's estimate consulted was still clean in every
      participating family, so the stored (bit-identical) result was
      served after an O(streams) version check;
    * ``recomputes`` — a full estimator run.

    The ``union_*`` trio counts the same outcomes for union estimates
    (both ``query_union`` calls and the ``ε/3`` sub-estimates of
    expression queries).  ``batch_queries``/``batch_groups`` describe
    :meth:`~repro.streams.engine.StreamEngine.query_many`: how many
    queries went through the batch path and how many shared evaluation
    groups (one per distinct stream set) they collapsed into.

    Mutable by design — the engine counts in place and
    :meth:`~repro.streams.engine.StreamEngine.query_stats` hands out
    copies.
    """

    queries: int = 0
    cache_hits: int = 0
    revalidations: int = 0
    recomputes: int = 0
    union_queries: int = 0
    union_cache_hits: int = 0
    union_revalidations: int = 0
    union_recomputes: int = 0
    batch_queries: int = 0
    batch_groups: int = 0
    #: Expression/union queries answered over a sliding window
    #: (``query(..., window=...)``); included in the totals above.
    window_queries: int = 0

    @property
    def served_from_cache(self) -> int:
        """Expression queries answered without an estimator run."""
        return self.cache_hits + self.revalidations

    @property
    def hit_rate(self) -> float:
        """Fraction of expression queries answered from the cache."""
        if self.queries == 0:
            return 0.0
        return self.served_from_cache / self.queries


@dataclass
class WindowStats:
    """Window-ring counters of a windowed
    :class:`~repro.streams.engine.StreamEngine` (summed over its
    per-stream rings).

    ``empty_expiries`` counts expired buckets that were all-zero —
    those rotations leave the in-window totals' versions untouched, so
    cached windowed estimates revalidate in O(streams) instead of
    recomputing; the difference ``buckets_expired - empty_expiries`` is
    the number of expiries that actually changed a window.
    """

    #: Bucket-boundary crossings of the ring clocks.
    rotations: int = 0
    #: Buckets aged out of the rings (subtracted from window totals
    #: unless all-zero).
    buckets_expired: int = 0
    #: Expired buckets that were all-zero (no version bump anywhere).
    empty_expiries: int = 0
    #: Memoised sub-window sums rebuilt because their member buckets
    #: changed.
    subwindow_rebuilds: int = 0


@dataclass
class TransportStats:
    """Per-peer counters of the delta-shipping transport
    (:mod:`repro.streams.net`).

    One instance describes one site's traffic as seen from one endpoint:
    the :class:`~repro.streams.net.site.SiteClient` keeps a single
    instance for itself; the
    :class:`~repro.streams.net.coordinator.CoordinatorServer` keeps one
    per connected site id.  Counters that only one side can observe stay
    at zero on the other (e.g. ``retries`` is client-side,
    ``deltas_applied`` coordinator-side).

    Mutable by design — the transport counts in place and hands out
    copies via ``snapshot()``.
    """

    site_id: str = ""
    role: str = "site"
    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    deltas_shipped: int = 0
    deltas_applied: int = 0
    duplicates_dropped: int = 0
    resyncs: int = 0
    retries: int = 0
    reconnects: int = 0
    acks_received: int = 0
    checkpoints_written: int = 0
    # -- wire-format v2 counters --
    #: Exports that rode inside another export's frame instead of their
    #: own (uplink batching): each coalesced frame covering ``n``
    #: exports adds ``n - 1``.
    exports_coalesced: int = 0
    #: What the shipped delta frames' payloads would have cost as plain
    #: dense counter slabs (streams per frame × slab bytes — the v1
    #: wire format for the *same* frames).  Site and coordinator apply
    #: this one definition, so the derived ``compression_ratio`` agrees
    #: at both endpoints and isolates the codec's effect; frame-count
    #: savings from uplink batching show in ``exports_coalesced``.
    payload_bytes_dense: int = 0
    #: What the delta payloads actually cost under the negotiated
    #: encodings.  ``payload_bytes_dense - payload_bytes_wire`` is the
    #: codec's whole effect; framing/header bytes live in
    #: ``bytes_sent``/``bytes_received``.
    payload_bytes_wire: int = 0
    #: ``message type -> total frame bytes`` through this endpoint, both
    #: directions (hello, welcome, delta, ack, error).
    message_bytes: dict = field(default_factory=dict)

    def count_message(self, message_type: str, nbytes: int) -> None:
        """Attribute one frame's bytes to its message type."""
        self.message_bytes[message_type] = (
            self.message_bytes.get(message_type, 0) + nbytes
        )

    @property
    def payload_bytes_saved(self) -> int:
        """Payload bytes the v2 codec kept off the wire (vs. dense)."""
        return self.payload_bytes_dense - self.payload_bytes_wire

    @property
    def compression_ratio(self) -> float:
        """``payload_bytes_dense / payload_bytes_wire`` (1.0 before any)."""
        if self.payload_bytes_wire == 0:
            return 1.0
        return self.payload_bytes_dense / self.payload_bytes_wire

    def snapshot(self) -> "TransportStats":
        """A point-in-time copy (the original keeps counting)."""
        return replace(self, message_bytes=dict(self.message_bytes))

    def merged_with(self, other: "TransportStats") -> "TransportStats":
        """Counter-wise sum of two snapshots (per-hop roll-up step).

        ``site_id``/``role`` keep this instance's values when they
        agree with ``other``'s and turn into ``"*"`` when they differ —
        a summed row spanning several peers no longer describes one.
        """
        merged = {
            name: getattr(self, name) + getattr(other, name)
            for name in (
                "frames_sent", "frames_received", "bytes_sent",
                "bytes_received", "deltas_shipped", "deltas_applied",
                "duplicates_dropped", "resyncs", "retries", "reconnects",
                "acks_received", "checkpoints_written",
                "exports_coalesced", "payload_bytes_dense",
                "payload_bytes_wire",
            )
        }
        message_bytes = dict(self.message_bytes)
        for message_type, nbytes in other.message_bytes.items():
            message_bytes[message_type] = (
                message_bytes.get(message_type, 0) + nbytes
            )
        return TransportStats(
            site_id=self.site_id if self.site_id == other.site_id else "*",
            role=self.role if self.role == other.role else "*",
            message_bytes=message_bytes,
            **merged,
        )

    @property
    def delivery_ratio(self) -> float:
        """``deltas_applied / (deltas_applied + duplicates_dropped)``.

        1.0 means no redundant shipping reached this endpoint; lower
        values quantify retransmission overhead (never correctness —
        duplicates are dropped idempotently).
        """
        seen = self.deltas_applied + self.duplicates_dropped
        if seen == 0:
            return 1.0
        return self.deltas_applied / seen


def rollup_transport_stats(stats, site_id: str = "total") -> TransportStats:
    """Sum an iterable of :class:`TransportStats` into one roll-up row.

    A coordinator in a federation tree sees one stats instance per
    connected child plus one for its own uplink hop; this collapses them
    into a single per-hop total (e.g. for the ``repro serve`` shutdown
    summary).  An empty iterable yields an all-zero row.
    """
    total: TransportStats | None = None
    for entry in stats:
        total = entry.snapshot() if total is None else total.merged_with(entry)
    if total is None:
        return TransportStats(site_id=site_id, role="*")
    return replace(total, site_id=site_id)


@dataclass(frozen=True)
class ShardStats:
    """Ingest counters of one worker shard (a point-in-time snapshot).

    Attributes
    ----------
    shard_id:
        Index of the shard in ``[0, num_shards)``.
    updates_routed:
        Update tuples the partitioner assigned to this shard.
    updates_applied:
        Distinct-element updates that reached counter maintenance after
        the linearity aggregation step (duplicates collapse, exact
        insert/delete churn cancels), so
        ``updates_applied <= updates_routed``.
    batches_flushed:
        Number of buffered batches the shard's worker has executed.
    flush_seconds:
        Total wall-clock time the worker spent inside sketch maintenance.
    streams:
        Number of streams with synopsis state on this shard.
    """

    shard_id: int
    updates_routed: int = 0
    updates_applied: int = 0
    batches_flushed: int = 0
    flush_seconds: float = 0.0
    streams: int = 0

    @property
    def aggregation_ratio(self) -> float:
        """``updates_applied / updates_routed`` (1.0 when nothing routed).

        Below 1.0 means the linearity aggregation is absorbing duplicate
        or cancelling updates before they cost any hashing.
        """
        if self.updates_routed == 0:
            return 1.0
        return self.updates_applied / self.updates_routed

    @property
    def updates_per_second(self) -> float:
        """Maintenance throughput of this shard (0.0 before any flush)."""
        if self.flush_seconds <= 0.0:
            return 0.0
        return self.updates_routed / self.flush_seconds


@dataclass(frozen=True)
class IngestStats:
    """Engine-level ingest/merge metrics for a sharded engine.

    Attributes
    ----------
    shards:
        One :class:`ShardStats` snapshot per shard, in shard order.
    merges:
        How many times the query path rebuilt merged per-stream synopses
        (counter summation across shards).
    merge_seconds:
        Total wall-clock time spent in those merges.
    plan:
        Hash-plan counters, when plan-based maintenance is active.  Cache
        counters (hits, misses, evictions, entries) are summed over the
        per-shard plans; the busy-clock fields stay bounded by elapsed
        wall time (in-process backends read the shards' shared
        :class:`~repro.core.plan.PlanTimers` once, the ``"processes"``
        backend reports the slowest worker as of the last
        synchronisation), with the summed per-thread work in the
        ``*_cpu_seconds`` fields.
    """

    shards: tuple[ShardStats, ...] = field(default_factory=tuple)
    merges: int = 0
    merge_seconds: float = 0.0
    plan: HashPlanStats | None = None

    @property
    def updates_routed(self) -> int:
        """Total update tuples routed across all shards."""
        return sum(shard.updates_routed for shard in self.shards)

    @property
    def updates_applied(self) -> int:
        """Total post-aggregation updates applied across all shards."""
        return sum(shard.updates_applied for shard in self.shards)

    @property
    def aggregation_ratio(self) -> float:
        """Fleet-wide ``updates_applied / updates_routed``."""
        routed = self.updates_routed
        if routed == 0:
            return 1.0
        return self.updates_applied / routed

    @property
    def busiest_shard(self) -> ShardStats | None:
        """The shard with the most routed updates (None when empty)."""
        if not self.shards:
            return None
        return max(self.shards, key=lambda shard: shard.updates_routed)

    def as_table(self) -> str:
        """A small ASCII table (one row per shard) for CLI output."""
        lines = [
            "shard  routed      applied     batches  flush_s   upd/s",
        ]
        for shard in self.shards:
            lines.append(
                f"{shard.shard_id:<6d} {shard.updates_routed:<11,d} "
                f"{shard.updates_applied:<11,d} {shard.batches_flushed:<8d} "
                f"{shard.flush_seconds:<9.3f} {shard.updates_per_second:,.0f}"
            )
        lines.append(
            f"total  {self.updates_routed:,} routed, "
            f"{self.updates_applied:,} applied "
            f"(aggregation ×{self.aggregation_ratio:.2f}), "
            f"{self.merges} merges in {self.merge_seconds:.3f}s"
        )
        plan = self.plan
        if plan is not None and plan.lookups:
            lines.append(
                f"plan   {plan.hits:,}/{plan.hits + plan.misses:,} row-cache "
                f"hits ({100 * plan.hit_rate:.0f}%), "
                f"hash {plan.hash_seconds:.3f}s / "
                f"scatter {plan.scatter_seconds:.3f}s busy "
                f"({plan.hash_cpu_seconds:.3f}s / "
                f"{plan.scatter_cpu_seconds:.3f}s cpu)"
            )
            if plan.dense_hits:
                lines.append(
                    f"dense  {plan.dense_hits:,}/{plan.lookups:,} table "
                    f"gathers ({100 * plan.dense_rate:.0f}%), "
                    f"{plan.dense_entries:,} precomputed rows"
                )
        return "\n".join(lines)
