"""Shared hash plans: compute sketch scatter indices once, reuse everywhere.

The "stored coins" contract of the paper (Section 2) means every
:class:`~repro.core.family.SketchFamily` built from one
:class:`~repro.core.family.SketchSpec` uses *identical* hash functions —
and the 2-level hash sketch update is a pure function of the element:

    element  →  the ``r·s`` flat counter cells it touches in the stacked
                ``(r, levels, s, 2)`` tensor (one ``(level, j, bit)``
                triple per member sketch and second-level hash).

Only the *signed count* of an update varies between streams, batches, and
shards; the cell indices never do.  A :class:`HashPlan` exploits that
determinism four ways:

* **stacked evaluation** — all ``r`` first-level polynomials are evaluated
  as one ``(r, t)`` coefficient matrix through the 2-D form of
  :func:`repro.hashing.mersenne.horner_mod`, and all ``r·s`` second-level
  masks as one broadcast AND / popcount / XOR, so the Python-level loop
  runs ``t − 1`` times per batch instead of ``r`` times;
* **an element → index-row LRU** — a bounded cache of previously computed
  ``(r·s,)`` index rows, so the heavy hitters of a skewed stream skip
  hashing entirely on every batch after their first;
* **dense precomputed-scatter tables** — for a bounded domain prefix (or
  a learned hot-key dictionary) a :class:`DenseScatterTable` materialises
  *every* element's index row up front, turning the hot part of each
  batch into one pure gather with no hashing, no per-element Python, and
  no cache-admission traffic; the LRU serves only the tail (see
  :meth:`HashPlan.ensure_dense_domain` / :meth:`HashPlan.ensure_dense_keys`);
* **sharing by coins** — :func:`plan_for` memoises one plan per spec, so
  every family of the spec (every stream of a
  :class:`~repro.streams.engine.StreamEngine`) reuses the same plan *and
  the same cache*: an element hashed for stream ``A`` is a cache hit for
  stream ``B``.  (The sharded engine instead gives each shard its *own*
  plan over the same coins — shards own disjoint element slices, so a
  shared LRU would only let them evict each other's rows — while the
  plans share one :class:`PlanTimers`, keeping the reported wall-clock
  de-overlapped across concurrent shard threads.)

Exactness: the plan is a reorganisation of identical integer arithmetic,
not an approximation — rows are bit-identical to what the per-sketch
maintenance path computes (whether hashed, cached, or gathered from a
dense table), and scattering them with the same int64-exact accumulation
rules leaves the counters bit-identical too (tested in
``tests/core/test_plan.py``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.sketch import SketchHashes, SketchShape
from repro.errors import IncompatibleSketchesError
from repro.hashing.lsb import lsb_array
from repro.hashing.mersenne import horner_mod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (family imports us)
    from repro.core.family import SketchSpec

__all__ = [
    "HashPlan",
    "HashPlanStats",
    "DenseScatterTable",
    "ScatterParts",
    "PlanTimers",
    "plan_for",
    "DEFAULT_CACHE_SIZE",
]

#: Default bound on the element → index-row cache, in entries.  One entry
#: costs ``r·s`` int32 words (4 KiB at the library default ``r=64, s=16``),
#: so the default caps cache memory at ~32 MiB per spec.
DEFAULT_CACHE_SIZE = 8192

#: Initial row-buffer allocation; the buffer grows geometrically toward the
#: configured capacity, so small test plans never pay for a full cache.
_INITIAL_SLOTS = 256

#: Above this many uncached elements per batch, hashing switches from the
#: stacked (r, n) evaluation to a per-sketch fill: the stacked form's
#: (r, n)-shaped modular-arithmetic temporaries stop fitting cache and the
#: removed Python loop no longer pays for the extra memory traffic.
#: (Measured on the library default r=64, s=16: stacked wins ~3x at
#: n≈256, breaks even near n≈1500, loses ~1.7x by n≈4096.)
STACKED_HASH_MAX = 1536

#: Above this many total scatter indices (n·r·s), scattering switches from
#: one stacked ``bincount`` over the whole counter tensor to a per-sketch
#: loop whose (levels·s·2)-cell histograms stay cache-resident.
STACKED_SCATTER_MAX = 2 * 1024 * 1024

#: Chunk size used when a dense table pre-hashes its whole key range.
#: Large enough that per-chunk fixed costs amortise, and past
#: :data:`STACKED_HASH_MAX` so each chunk takes the per-sketch fill, the
#: measured per-element optimum for bulk hashing (~15 µs/element at the
#: library default shape vs ~22 µs stacked at the same size).
DENSE_BUILD_CHUNK = 4096

#: Refuse to build dense tables above this size (a config-error guard:
#: at the default shape each local-id row is 2 KiB, so 8 GiB ≈ four
#: million keys).
_DENSE_MAX_BYTES = 8 << 30


class ScatterParts:
    """One batch's scatter input, split dense/tail (see
    :meth:`HashPlan.scatter_parts`).

    ``covered`` is the boolean per-element mask of dense-table coverage
    (``None`` when no table is attached); ``dense_rows`` holds the
    gathered **per-sketch-local** rows of the covered elements, in batch
    order, and ``tail_rows`` the global int32 rows of the rest.  Either
    part may be ``None``/empty.  ``subset(mask)`` restricts both parts to
    an element subset — how the aggregated ingest path scatters its
    per-delta groups without re-gathering or re-hashing anything.
    """

    __slots__ = ("covered", "dense_rows", "tail_rows")

    def __init__(
        self,
        covered: np.ndarray | None,
        dense_rows: np.ndarray | None,
        tail_rows: np.ndarray | None,
    ) -> None:
        self.covered = covered
        self.dense_rows = dense_rows
        self.tail_rows = tail_rows

    def subset(self, mask: np.ndarray) -> "ScatterParts":
        """The parts of the elements selected by boolean ``mask``."""
        covered = self.covered
        if covered is None:
            tail = None if self.tail_rows is None else self.tail_rows[mask]
            return ScatterParts(None, None, tail)
        dense = (
            None
            if self.dense_rows is None
            else self.dense_rows[mask[covered]]
        )
        tail = (
            None
            if self.tail_rows is None
            else self.tail_rows[mask[~covered]]
        )
        return ScatterParts(covered[mask], dense, tail)


class _BusyTimer:
    """Wall-clock accumulator that de-overlaps concurrent intervals.

    ``busy_seconds`` is the measure of the *union* of all timed intervals
    — when four shard threads hash simultaneously for one second, busy
    time advances by one second, not four — so it can never exceed the
    elapsed wall-clock of the enclosing run.  ``cpu_seconds`` is the
    plain per-thread sum (the four-second figure), the right unit for
    "how much work happened" roll-ups across workers.
    """

    __slots__ = ("_lock", "_active", "_since", "_busy", "_cpu")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active = 0
        self._since = 0.0
        self._busy = 0.0
        self._cpu = 0.0

    def enter(self) -> float:
        now = time.perf_counter()
        with self._lock:
            if self._active == 0:
                self._since = now
            self._active += 1
        return now

    def exit(self, entered: float) -> None:
        now = time.perf_counter()
        with self._lock:
            self._cpu += now - entered
            self._active -= 1
            if self._active == 0:
                self._busy += now - self._since

    def add_exclusive(self, seconds: float) -> None:
        """Credit an interval measured externally (single-threaded caller)."""
        with self._lock:
            self._cpu += seconds
            if self._active == 0:  # no overlap to de-duplicate against
                self._busy += seconds

    def snapshot(self) -> tuple[float, float]:
        """``(busy_seconds, cpu_seconds)`` including any in-flight interval."""
        now = time.perf_counter()
        with self._lock:
            busy = self._busy
            if self._active:
                busy += now - self._since
            return busy, self._cpu

    def reset(self) -> None:
        with self._lock:
            self._busy = 0.0
            self._cpu = 0.0
            self._since = time.perf_counter()


class PlanTimers:
    """The hash/scatter time accounting of one or more :class:`HashPlan`.

    Separated from the plan so several plans can share one instance: the
    sharded engine builds per-shard plans (private LRUs) over one shared
    ``PlanTimers``, which is what keeps the reported ``hash_seconds`` /
    ``scatter_seconds`` a de-overlapped wall-clock figure — concurrent
    shard threads extend the same busy interval instead of each adding
    their own copy of it.
    """

    __slots__ = ("hash", "scatter")

    def __init__(self) -> None:
        self.hash = _BusyTimer()
        self.scatter = _BusyTimer()

    def snapshot(self) -> tuple[float, float, float, float]:
        """``(hash_busy, scatter_busy, hash_cpu, scatter_cpu)`` seconds."""
        hash_busy, hash_cpu = self.hash.snapshot()
        scatter_busy, scatter_cpu = self.scatter.snapshot()
        return hash_busy, scatter_busy, hash_cpu, scatter_cpu

    def reset(self) -> None:
        self.hash.reset()
        self.scatter.reset()


class DenseScatterTable:
    """Precomputed index rows for a fixed key set (the csvec trick).

    ``rows[i]`` holds the cells :meth:`HashPlan.compute_rows` computes
    for key ``i``, stored as **per-sketch-local** ids (``cell − k·cells``
    for sketch ``k``, always ``< levels·s·2``) in the narrowest dtype
    that fits — ``uint16`` at any practical shape.  Local ids halve the
    table against the naive int32-global layout (2 KiB per key at the
    library default shape), halve the gather bandwidth of serving a
    batch, and let the scatter skip the per-sketch offset subtraction
    entirely; :meth:`HashPlan.globalize_rows` converts back whenever
    global rows are genuinely needed.  Serving a covered batch is a
    single fancy-index gather.  Two key layouts:

    * **contiguous** (``keys is None``): the table covers the domain
      prefix ``[0, limit)`` and lookup is the identity — the right mode
      for bounded domains and for generators that put the hot mass on
      low ids;
    * **dictionary** (``keys`` sorted, unique): the table covers an
      arbitrary learned hot-key set and lookup is a ``searchsorted`` —
      the right mode when the hot set is known but scattered over the
      domain.

    Tables are immutable after construction and safe to share across
    threads, plans, and (via shared memory) worker processes; they hold
    rows only — no counts, no per-stream state — exactly because the
    "stored coins" contract makes rows a pure function of the element.
    """

    __slots__ = ("rows", "keys", "limit", "build_seconds")

    def __init__(
        self,
        rows: np.ndarray,
        keys: np.ndarray | None = None,
        build_seconds: float = 0.0,
    ) -> None:
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D (num_keys, row_width) table")
        if keys is not None:
            keys = np.asarray(keys, dtype=np.uint64)
            if keys.shape != (rows.shape[0],):
                raise ValueError("keys must align with the table rows")
            if keys.size > 1 and not bool((keys[1:] > keys[:-1]).all()):
                raise ValueError("keys must be strictly increasing")
        self.rows = rows
        self.keys = keys
        self.limit = rows.shape[0] if keys is None else 0
        self.build_seconds = build_seconds

    @property
    def num_keys(self) -> int:
        return self.rows.shape[0]

    @property
    def nbytes(self) -> int:
        total = self.rows.nbytes
        if self.keys is not None:
            total += self.keys.nbytes
        return total

    @property
    def contiguous(self) -> bool:
        """True for the ``[0, limit)`` layout, False for a key dictionary."""
        return self.keys is None

    def locate(self, elements: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(table_indices, covered_mask)`` for a batch of elements.

        ``table_indices[covered_mask]`` index :attr:`rows`; positions
        outside the mask are the fallback tail (their index values are
        meaningless).  Pure lookup — no per-element Python.
        """
        if self.keys is None:
            covered = elements < np.uint64(self.limit)
            return elements, covered
        positions = np.searchsorted(self.keys, elements)
        positions = np.minimum(positions, self.keys.size - 1)
        covered = self.keys[positions] == elements
        return positions, covered

    @classmethod
    def build(
        cls,
        plan: "HashPlan",
        keys: np.ndarray | None = None,
        limit: int | None = None,
        chunk: int = DENSE_BUILD_CHUNK,
    ) -> "DenseScatterTable":
        """Hash a whole key range up front into a table.

        Pass ``limit`` for the contiguous ``[0, limit)`` layout or
        ``keys`` (any order, duplicates dropped) for the dictionary
        layout.  Hashing runs in :data:`DENSE_BUILD_CHUNK`-sized chunks —
        the measured bulk-hashing optimum — through the same arithmetic
        as :meth:`HashPlan.compute_rows`, so the table is bit-identical
        to on-demand hashing.  Build time is *not* charged to the plan's
        hash timer (it is a one-off precomputation, not per-batch work);
        it is recorded in :attr:`build_seconds` instead.
        """
        if (keys is None) == (limit is None):
            raise ValueError("pass exactly one of keys= or limit=")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        if keys is None:
            if limit < 1:
                raise ValueError("limit must be positive")
            key_array = None
            num_keys = int(limit)
        else:
            key_array = np.unique(np.asarray(keys, dtype=np.uint64))
            num_keys = int(key_array.size)
            if num_keys == 0:
                raise ValueError("keys must be non-empty")
        local_dtype = plan.local_row_dtype
        nbytes = num_keys * plan.row_width * np.dtype(local_dtype).itemsize
        if nbytes > _DENSE_MAX_BYTES:
            raise ValueError(
                f"dense table would need {nbytes / (1 << 30):.1f} GiB "
                f"(> {_DENSE_MAX_BYTES >> 30} GiB); shrink the domain limit "
                "or hot-key budget"
            )
        started = time.perf_counter()
        offsets = plan.row_offsets
        rows = np.empty((num_keys, plan.row_width), dtype=local_dtype)
        for start in range(0, num_keys, chunk):
            stop = min(start + chunk, num_keys)
            if key_array is None:
                block = np.arange(start, stop, dtype=np.uint64)
            else:
                block = key_array[start:stop]
            rows[start:stop] = plan._hash_rows(block) - offsets[None, :]
        return cls(
            rows, keys=key_array, build_seconds=time.perf_counter() - started
        )


@dataclass(frozen=True)
class HashPlanStats:
    """Point-in-time counters of one :class:`HashPlan` (cheap snapshot).

    ``hits``/``misses`` count *LRU lookups* (one per non-dense element per
    batch, across all families sharing the plan); ``dense_hits`` counts
    elements served by a gather from an attached
    :class:`DenseScatterTable` (they never touch the LRU, so they appear
    in neither ``hits`` nor ``misses``).

    The four time fields split two ways.  ``hash_seconds`` /
    ``scatter_seconds`` are *busy* wall-clock: intervals are de-overlapped
    across threads (see :class:`PlanTimers`), so within one process they
    can never exceed the elapsed time of the run that produced them.
    ``hash_cpu_seconds`` / ``scatter_cpu_seconds`` are the plain
    per-thread sums — the "total work" figure, which legitimately exceeds
    elapsed time when shards hash in parallel.  Roll-ups across worker
    *processes* (:meth:`merged_with`) sum both kinds; a summed busy figure
    spanning several processes is therefore cpu-style again, and the
    process backend reports it accordingly (see
    :meth:`repro.streams.sharded.ShardedEngine.stats`).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    entries: int = 0
    capacity: int = 0
    hash_seconds: float = 0.0
    scatter_seconds: float = 0.0
    dense_hits: int = 0
    dense_entries: int = 0
    hash_cpu_seconds: float = 0.0
    scatter_cpu_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        """Total element lookups answered by the plan (dense included)."""
        return self.hits + self.misses + self.dense_hits

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``: the LRU hit rate (0.0 before any
        lookup).  Dense gathers are excluded on both sides — the LRU
        only ever sees the tail once a table is attached, and this ratio
        keeps describing how well *it* is doing on what it serves."""
        if self.hits + self.misses == 0:
            return 0.0
        return self.hits / (self.hits + self.misses)

    @property
    def dense_rate(self) -> float:
        """Fraction of all lookups served by the dense table."""
        total = self.lookups
        if total == 0:
            return 0.0
        return self.dense_hits / total

    def merged_with(self, other: "HashPlanStats") -> "HashPlanStats":
        """Counter-wise sum (roll-up across per-shard or per-process plans).

        Summing turns the busy-clock fields into cpu-style figures when
        the operands timed overlapping intervals — callers that hold a
        shared :class:`PlanTimers` should overwrite the time fields of
        the roll-up from one ``timers.snapshot()`` instead (the sharded
        engine does).
        """
        return HashPlanStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            bypasses=self.bypasses + other.bypasses,
            entries=self.entries + other.entries,
            capacity=self.capacity + other.capacity,
            hash_seconds=self.hash_seconds + other.hash_seconds,
            scatter_seconds=self.scatter_seconds + other.scatter_seconds,
            dense_hits=self.dense_hits + other.dense_hits,
            dense_entries=self.dense_entries + other.dense_entries,
            hash_cpu_seconds=self.hash_cpu_seconds + other.hash_cpu_seconds,
            scatter_cpu_seconds=self.scatter_cpu_seconds
            + other.scatter_cpu_seconds,
        )

    def to_json_dict(self) -> dict:
        """Plain-JSON form (benchmark reports, worker sync messages)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "entries": self.entries,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "hash_seconds": self.hash_seconds,
            "scatter_seconds": self.scatter_seconds,
            "dense_hits": self.dense_hits,
            "dense_entries": self.dense_entries,
            "dense_rate": self.dense_rate,
            "hash_cpu_seconds": self.hash_cpu_seconds,
            "scatter_cpu_seconds": self.scatter_cpu_seconds,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "HashPlanStats":
        return cls(
            hits=int(payload["hits"]),
            misses=int(payload["misses"]),
            evictions=int(payload["evictions"]),
            bypasses=int(payload.get("bypasses", 0)),
            entries=int(payload["entries"]),
            capacity=int(payload["capacity"]),
            hash_seconds=float(payload["hash_seconds"]),
            scatter_seconds=float(payload["scatter_seconds"]),
            dense_hits=int(payload.get("dense_hits", 0)),
            dense_entries=int(payload.get("dense_entries", 0)),
            hash_cpu_seconds=float(
                payload.get("hash_cpu_seconds", payload["hash_seconds"])
            ),
            scatter_cpu_seconds=float(
                payload.get("scatter_cpu_seconds", payload["scatter_seconds"])
            ),
        )


class HashPlan:
    """Precomputed, cached scatter-index producer for one set of coins.

    Parameters
    ----------
    hashes:
        The per-sketch hash functions, as returned by
        :meth:`repro.core.family.SketchSpec.hashes`.  All first-level
        polynomials must share a degree and all second-level banks the
        shape's ``s`` (guaranteed for spec-drawn hashes).
    shape:
        The sketch shape the indices target.
    cache_size:
        Bound on the element → index-row cache, in entries; ``0`` disables
        caching (every batch is hashed from scratch).
    timers:
        The :class:`PlanTimers` charged for hashing and scattering.  By
        default each plan owns a private instance; pass a shared one to
        make several plans (e.g. the sharded engine's per-shard plans)
        report one de-overlapped wall-clock account.
    """

    __slots__ = (
        "shape",
        "num_sketches",
        "row_width",
        "cache_size",
        "_coeffs",
        "_masks",
        "_flips",
        "_row_dtype",
        "_slots",
        "_rows",
        "_lock",
        "_hits",
        "_misses",
        "_evictions",
        "_bypasses",
        "_dense",
        "_dense_hits",
        "_timers",
    )

    def __init__(
        self,
        hashes: Sequence[SketchHashes],
        shape: SketchShape,
        cache_size: int = DEFAULT_CACHE_SIZE,
        timers: PlanTimers | None = None,
    ) -> None:
        if not hashes:
            raise ValueError("a hash plan needs at least one sketch's hashes")
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        degrees = {h.first_level.independence for h in hashes}
        if len(degrees) != 1:
            raise IncompatibleSketchesError(
                "stacked evaluation needs equal-degree first-level hashes"
            )
        if any(h.second_level.size != shape.num_second_level for h in hashes):
            raise IncompatibleSketchesError(
                "second-level bank size does not match the sketch shape"
            )
        self.shape = shape
        self.num_sketches = len(hashes)
        self.row_width = self.num_sketches * shape.num_second_level
        self.cache_size = cache_size
        # (r, t) stacked polynomial coefficients, (r, s) masks/flips.
        self._coeffs = np.asarray(
            [h.first_level.coefficients for h in hashes], dtype=np.uint64
        )
        self._masks = np.asarray(
            [h.second_level.masks for h in hashes], dtype=np.uint64
        )
        self._flips = np.asarray(
            [h.second_level.flips for h in hashes], dtype=np.uint8
        )
        flat_cells = self.num_sketches * shape.num_levels * shape.num_second_level * 2
        self._row_dtype = np.int32 if flat_cells <= np.iinfo(np.int32).max else np.int64
        # element → slot (recency-ordered); slot → row in a growable buffer.
        # The lock guards the cache maps and counters: one plan can be
        # shared across every family of a spec, and an eviction must not
        # reuse a slot another thread is still copying from.  Hashing
        # itself (the expensive part) runs outside the lock.
        self._slots: OrderedDict[int, int] = OrderedDict()
        self._rows = np.empty((0, self.row_width), dtype=self._row_dtype)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._bypasses = 0
        self._dense: DenseScatterTable | None = None
        self._dense_hits = 0
        self._timers = timers if timers is not None else PlanTimers()

    # -- hashing -----------------------------------------------------------

    @property
    def timers(self) -> PlanTimers:
        """The (possibly shared) time accounting of this plan."""
        return self._timers

    def _hash_rows(self, elements: np.ndarray) -> np.ndarray:
        """The untimed hashing kernel behind :meth:`compute_rows`."""
        n = elements.size
        s = self.shape.num_second_level
        dtype = self._row_dtype
        if n <= STACKED_HASH_MAX:
            hashed = horner_mod(self._coeffs, elements)  # (r, n)
            levels = lsb_array(hashed).T.astype(dtype)  # (n, r)
            # All r·s second-level hashes in one broadcast, laid out
            # (n, r, s) so the result reshapes row-major without a copy.
            anded = elements[:, None, None] & self._masks[None, :, :]
            bits = (np.bitwise_count(anded) & np.uint8(1)) ^ self._flips[None, :, :]
            base = (
                np.arange(self.num_sketches, dtype=dtype)[None, :]
                * dtype(self.shape.num_levels)
                + levels
            ) * dtype(s)
            flat = (
                base[:, :, None] + np.arange(s, dtype=dtype)[None, None, :]
            ) * dtype(2)
            flat += bits
            return flat.reshape(n, self.row_width)
        flat = np.empty((n, self.num_sketches, s), dtype=dtype)
        offsets = np.arange(s, dtype=dtype)
        for k in range(self.num_sketches):
            hashed = horner_mod(self._coeffs[k], elements)
            levels = lsb_array(hashed).astype(dtype)
            anded = elements[:, None] & self._masks[k][None, :]
            bits = (np.bitwise_count(anded) & np.uint8(1)) ^ self._flips[k][None, :]
            base = (dtype(k * self.shape.num_levels) + levels) * dtype(s)
            flat[:, k, :] = (base[:, None] + offsets) * dtype(2) + bits
        return flat.reshape(n, self.row_width)

    def compute_rows(self, elements: np.ndarray) -> np.ndarray:
        """Hash a batch from scratch: the stacked ``(n, r·s)`` index rows.

        Row ``i`` lists the flat cells of the stacked ``(r, L, s, 2)``
        counter tensor that element ``i`` touches — for sketch ``k`` and
        second-level hash ``j``, cell
        ``((k·L + LSB(h_k(e)))·s + j)·2 + g_{k,j}(e)``.  Bit-identical to
        evaluating each sketch's hashes separately; only the loop structure
        differs.  Small batches (the common case: cache misses trickling in
        behind a warm cache) run the stacked evaluation — one ``(r, t)``
        Horner pass, one broadcast popcount; batches past
        :data:`STACKED_HASH_MAX` fall back to a per-sketch fill whose
        ``(n,)`` temporaries stay cache-resident.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        entered = self._timers.hash.enter()
        try:
            return self._hash_rows(elements)
        finally:
            self._timers.hash.exit(entered)

    def bucket_keys(self, rows: np.ndarray) -> np.ndarray:
        """Per-(element, sketch) first-level bucket keys from index rows.

        Returns an ``(n, r)`` array of ``sketch·levels + level`` keys —
        flat indices into an ``(r, levels)`` aggregate such as
        :meth:`repro.core.family.SketchFamily.level_totals`.  Derived
        from the ``j = 0`` column of each sketch's row segment (the cell
        pair whose sum is the bucket total), so incremental aggregate
        maintenance piggybacks on rows the scatter already computed
        instead of hashing again.
        """
        n = rows.shape[0]
        s = self.shape.num_second_level
        first_cells = rows.reshape(n, self.num_sketches, s)[:, :, 0]
        # cell = ((k·L + level)·s + 0)·2 + bit  ⇒  (cell >> 1) // s
        return (first_cells >> 1) // s

    # -- per-sketch-local row layout ---------------------------------------

    @property
    def cells_per_sketch(self) -> int:
        """Counter cells per member sketch (``levels·s·2``)."""
        return self.shape.num_levels * self.shape.num_second_level * 2

    @property
    def local_row_dtype(self) -> type:
        """Narrowest dtype holding per-sketch-local cell ids.

        Local ids are always ``< cells_per_sketch``; ``uint16`` covers
        every practical shape (the global :attr:`row_width` dtype is the
        fallback for pathological ones).
        """
        if self.cells_per_sketch <= np.iinfo(np.uint16).max + 1:
            return np.uint16
        return self._row_dtype

    @property
    def row_offsets(self) -> np.ndarray:
        """Per-column sketch offsets ``k·cells``, shape ``(row_width,)``.

        ``global_row = local_row + row_offsets`` column-wise; used when
        converting between the two layouts.
        """
        s = self.shape.num_second_level
        sketch_ids = np.arange(self.num_sketches, dtype=self._row_dtype)
        return np.repeat(sketch_ids * self._row_dtype(self.cells_per_sketch), s)

    def globalize_rows(self, local_rows: np.ndarray) -> np.ndarray:
        """Convert per-sketch-local rows to global flat-cell rows."""
        return local_rows.astype(self._row_dtype) + self.row_offsets[None, :]

    def scatter_local(
        self, target: np.ndarray, local_rows: np.ndarray, scale: int = 1
    ) -> None:
        """Add ``scale`` into flat int64 ``target`` at local-id rows.

        The per-sketch histogram loop of :meth:`scatter` without the
        offset subtraction — local ids feed ``bincount`` directly, which
        is what makes scattering gathered dense-table rows cheaper than
        scattering the same rows in global layout.  Exact int64, so the
        counters come out bit-identical either way.
        """
        s = self.shape.num_second_level
        cells = self.cells_per_sketch
        grouped = local_rows.reshape(local_rows.shape[0], self.num_sketches, s)
        for k in range(self.num_sketches):
            binned = np.bincount(grouped[:, k, :].ravel(), minlength=cells)
            slab = target[k * cells : (k + 1) * cells]
            slab += binned if scale == 1 else binned * scale

    def bucket_keys_local(self, local_rows: np.ndarray) -> np.ndarray:
        """:meth:`bucket_keys` for rows in per-sketch-local layout."""
        n = local_rows.shape[0]
        s = self.shape.num_second_level
        first_cells = local_rows.reshape(n, self.num_sketches, s)[:, :, 0]
        # local cell = (level·s + j)·2 + bit with j = 0 ⇒ (cell >> 1) // s
        levels = (first_cells >> 1) // s
        bases = np.arange(self.num_sketches, dtype=np.int64) * self.shape.num_levels
        return levels.astype(np.int64) + bases[None, :]

    # -- dense tables ------------------------------------------------------

    @property
    def dense_table(self) -> DenseScatterTable | None:
        """The attached :class:`DenseScatterTable`, if any."""
        return self._dense

    def attach_dense(self, table: DenseScatterTable) -> None:
        """Install a dense table (replacing any previous one).

        The table must have been built from this plan's coins — rows of
        the wrong width are rejected structurally, but callers building
        tables by hand are on their honour beyond that (tables from
        :meth:`ensure_dense_domain` / :meth:`ensure_dense_keys` /
        :meth:`DenseScatterTable.build` are always right).
        """
        if table.rows.shape[1] != self.row_width:
            raise IncompatibleSketchesError(
                "dense table row width does not match this plan"
            )
        if table.rows.dtype != np.dtype(self.local_row_dtype):
            raise IncompatibleSketchesError(
                "dense table row dtype does not match this plan's "
                "local-id layout"
            )
        with self._lock:
            self._dense = table

    def detach_dense(self) -> DenseScatterTable | None:
        """Remove and return the attached dense table (None if absent)."""
        with self._lock:
            table, self._dense = self._dense, None
            return table

    def ensure_dense_domain(self, limit: int) -> DenseScatterTable:
        """Attach (building if needed) a contiguous ``[0, limit)`` table.

        Idempotent: an already-attached contiguous table covering at
        least ``limit`` keys is kept as-is, so every engine over one spec
        can call this at construction and only the first pays the build.
        """
        if limit < 1:
            raise ValueError("limit must be positive")
        if limit > self.shape.domain_size:
            raise ValueError(
                f"dense limit {limit} exceeds the domain size "
                f"{self.shape.domain_size}"
            )
        with self._lock:
            existing = self._dense
        if existing is not None and existing.contiguous and existing.limit >= limit:
            return existing
        table = DenseScatterTable.build(self, limit=int(limit))
        self.attach_dense(table)
        return table

    def ensure_dense_keys(self, keys: np.ndarray) -> DenseScatterTable:
        """Attach (building if needed) a hot-key dictionary table.

        Idempotent for an equal key set; a different key set replaces the
        table (hot sets drift — last writer wins).
        """
        keys = np.unique(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            raise ValueError("keys must be non-empty")
        if int(keys[-1]) >= self.shape.domain_size:
            raise ValueError("keys contain elements outside [0, M)")
        with self._lock:
            existing = self._dense
        if (
            existing is not None
            and not existing.contiguous
            and np.array_equal(existing.keys, keys)
        ):
            return existing
        table = DenseScatterTable.build(self, keys=keys)
        self.attach_dense(table)
        return table

    # -- scattering --------------------------------------------------------

    def scatter(self, target: np.ndarray, rows: np.ndarray, scale: int = 1) -> None:
        """Add ``scale`` into flat int64 ``target`` at every cell of ``rows``.

        Chooses between one stacked ``bincount`` over the whole counter
        tensor (small batches) and a per-sketch histogram loop whose
        outputs stay cache-resident (past :data:`STACKED_SCATTER_MAX`
        total indices); both accumulate in exact int64, so the choice
        never affects the resulting counters.
        """
        if rows.size <= STACKED_SCATTER_MAX:
            binned = np.bincount(rows.reshape(-1), minlength=target.size)
            target += binned if scale == 1 else binned * scale
            return
        s = self.shape.num_second_level
        cells = self.shape.num_levels * s * 2
        grouped = rows.reshape(rows.shape[0], self.num_sketches, s)
        for k in range(self.num_sketches):
            local = grouped[:, k, :].ravel() - self._row_dtype(k * cells)
            binned = np.bincount(local, minlength=cells)
            slab = target[k * cells : (k + 1) * cells]
            slab += binned if scale == 1 else binned * scale

    @contextmanager
    def time_scatter(self):
        """Context manager charging its body to the scatter busy clock."""
        entered = self._timers.scatter.enter()
        try:
            yield
        finally:
            self._timers.scatter.exit(entered)

    def scatter_rows(self, elements: np.ndarray) -> np.ndarray | None:
        """Index rows for a batch, gathered/cached/hashed as appropriate.

        Returns the same ``(n, r·s)`` matrix as :meth:`compute_rows`.
        With a dense table attached, covered elements come from one pure
        table gather (no hashing, no LRU traffic, no per-element Python)
        and only the uncovered tail goes through the cache path.  Rows
        are returned by value semantics — callers must not mutate the
        result if it may alias the cache or table (it never does: hits
        and gathers are copied into a fresh output).

        Returns ``None`` — "run classic per-sketch maintenance instead" —
        when the batch is a *scan flood*: more uncached elements than the
        cache could ever hold and too many for the stacked evaluation to
        beat per-sketch hashing.  Materialising (and thrashing the LRU
        with) rows that will never be reused costs more than it saves, so
        the plan declines; the decision is recorded in
        :attr:`HashPlanStats.bypasses`.  A batch even partially covered
        by a dense table never bypasses — gathered rows are already paid
        for, so the tail is hashed without cache admission instead.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        n = elements.size
        dense = self._dense
        if dense is not None and n:
            indices, covered = dense.locate(elements)
            num_covered = int(covered.sum())
            if num_covered == n:
                with self._lock:
                    self._dense_hits += n
                return self.globalize_rows(dense.rows[indices])
            if num_covered:
                out = self.globalize_rows(
                    dense.rows[np.where(covered, indices, 0)]
                )
                tail = ~covered
                tail_rows = self._lru_rows(elements[tail], allow_bypass=False)
                out[tail] = tail_rows
                with self._lock:
                    self._dense_hits += num_covered
                return out
        return self._lru_rows(elements, allow_bypass=True)

    def scatter_parts(self, elements: np.ndarray) -> ScatterParts | None:
        """A batch's scatter input split dense/tail — the fast-path twin
        of :meth:`scatter_rows`.

        Covered elements stay in the dense table's per-sketch-local
        layout (one gather, no globalising pass); only the uncovered
        tail is hashed/cached as global rows.  Callers scatter the two
        parts separately — :meth:`scatter_local` for the dense rows,
        :meth:`scatter` for the tail — which accumulates exactly the
        same int64 cells as merging first.  Returns ``None`` for a scan
        flood with no dense coverage, same contract as
        :meth:`scatter_rows`.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        n = elements.size
        dense = self._dense
        if dense is not None and n:
            indices, covered = dense.locate(elements)
            num_covered = int(covered.sum())
            if num_covered == n:
                with self._lock:
                    self._dense_hits += n
                return ScatterParts(covered, dense.rows[indices], None)
            if num_covered:
                gathered = dense.rows[indices[covered]]
                tail_rows = self._lru_rows(
                    elements[~covered], allow_bypass=False
                )
                with self._lock:
                    self._dense_hits += num_covered
                return ScatterParts(covered, gathered, tail_rows)
        rows = self._lru_rows(elements, allow_bypass=True)
        if rows is None:
            return None
        return ScatterParts(None, None, rows)

    def _lru_rows(
        self, elements: np.ndarray, allow_bypass: bool
    ) -> np.ndarray | None:
        """The element-row LRU path behind :meth:`scatter_rows`.

        With ``allow_bypass=False`` a scan flood still counts a bypass
        but computes the rows anyway (skipping cache admission, so the
        flood cannot thrash the LRU) instead of returning ``None``.
        """
        n = elements.size
        if self.cache_size == 0:
            if n > STACKED_HASH_MAX and allow_bypass:
                with self._lock:
                    self._bypasses += 1
                return None
            with self._lock:
                self._misses += n
            return self.compute_rows(elements)

        out = np.empty((n, self.row_width), dtype=self._row_dtype)
        store = True
        # Phase 1 (locked): partition into hits/misses and copy the hit
        # rows out while their slots are pinned — an eviction by another
        # thread after the lock drops can no longer corrupt them.
        with self._lock:
            slots = self._slots
            hit_positions: list[int] = []
            hit_slots: list[int] = []
            miss_positions: list[int] = []
            miss_values: list[int] = []
            for position, element in enumerate(elements.tolist()):
                slot = slots.get(element)
                if slot is None:
                    miss_positions.append(position)
                    miss_values.append(element)
                else:
                    slots.move_to_end(element)
                    hit_positions.append(position)
                    hit_slots.append(slot)
            misses = len(miss_positions)
            if (
                misses > STACKED_HASH_MAX
                and misses >= self.cache_size
                and misses > len(hit_positions)
            ):
                self._bypasses += 1
                if allow_bypass:
                    return None
                store = False  # flood behind a dense table: hash, don't admit
            self._hits += len(hit_positions)
            self._misses += misses
            if hit_positions:
                out[hit_positions] = self._rows[hit_slots]
        # Phase 2 (unlocked): hash the misses — pure computation.
        if miss_positions:
            fresh = self.compute_rows(elements[miss_positions])
            out[miss_positions] = fresh
            if store and misses < self.cache_size:
                # Phase 3 (locked): publish the fresh rows.  _store
                # re-checks for duplicates, so a concurrent insert of the
                # same element is harmless.
                with self._lock:
                    for value, row in zip(miss_values, fresh):
                        self._store(value, row)
        return out

    def _store(self, element: int, row: np.ndarray) -> None:
        slots = self._slots
        slot = slots.get(element)
        if slot is not None:  # duplicate within one batch
            slots.move_to_end(element)
            return
        if len(slots) >= self.cache_size:
            _, slot = slots.popitem(last=False)
            self._evictions += 1
        else:
            slot = len(slots)
            if slot >= self._rows.shape[0]:
                self._grow(slot + 1)
        self._rows[slot] = row
        slots[element] = slot

    def _grow(self, needed: int) -> None:
        grown = min(
            self.cache_size, max(needed, _INITIAL_SLOTS, 2 * self._rows.shape[0])
        )
        buffer = np.empty((grown, self.row_width), dtype=self._row_dtype)
        buffer[: self._rows.shape[0]] = self._rows
        self._rows = buffer

    def same_coins_as(self, other: "HashPlan") -> bool:
        """Whether two plans embed identical hash functions (and shape)."""
        return (
            self.shape == other.shape
            and np.array_equal(self._coeffs, other._coeffs)
            and np.array_equal(self._masks, other._masks)
            and np.array_equal(self._flips, other._flips)
        )

    def sibling(self, cache_size: int | None = None) -> "HashPlan":
        """A new plan over the same coins with a private LRU.

        The sibling shares this plan's :class:`PlanTimers` (one
        de-overlapped wall-clock account) and its dense table object, if
        any (tables are immutable, so sharing is free) — but owns its own
        element-row cache and hit/miss counters.  This is the sharded
        engine's per-shard plan construction: shards own disjoint element
        slices, so private caches stop them evicting each other's rows.
        """
        plan = HashPlan.__new__(HashPlan)
        plan.shape = self.shape
        plan.num_sketches = self.num_sketches
        plan.row_width = self.row_width
        plan.cache_size = self.cache_size if cache_size is None else cache_size
        if plan.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        plan._coeffs = self._coeffs
        plan._masks = self._masks
        plan._flips = self._flips
        plan._row_dtype = self._row_dtype
        plan._slots = OrderedDict()
        plan._rows = np.empty((0, plan.row_width), dtype=plan._row_dtype)
        plan._lock = threading.Lock()
        plan._hits = 0
        plan._misses = 0
        plan._evictions = 0
        plan._bypasses = 0
        plan._dense = self._dense
        plan._dense_hits = 0
        plan._timers = self._timers
        return plan

    # -- bookkeeping -------------------------------------------------------

    def note_scatter_seconds(self, seconds: float) -> None:
        """Credit externally measured scatter wall-clock.

        Kept for callers that time around their own scatter loop; prefer
        :meth:`time_scatter`, which de-overlaps across threads (this
        method only avoids double-counting when no timed scatter is
        currently in flight).
        """
        self._timers.scatter.add_exclusive(seconds)

    def stats(self) -> HashPlanStats:
        """A frozen snapshot of the plan's cache and timing counters."""
        hash_busy, scatter_busy, hash_cpu, scatter_cpu = self._timers.snapshot()
        with self._lock:
            dense = self._dense
            return HashPlanStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                bypasses=self._bypasses,
                entries=len(self._slots),
                capacity=self.cache_size,
                hash_seconds=hash_busy,
                scatter_seconds=scatter_busy,
                dense_hits=self._dense_hits,
                dense_entries=0 if dense is None else dense.num_keys,
                hash_cpu_seconds=hash_cpu,
                scatter_cpu_seconds=scatter_cpu,
            )

    def clear_cache(self) -> None:
        """Drop every cached LRU row (counters and any dense table kept)."""
        with self._lock:
            self._slots.clear()
            self._rows = np.empty((0, self.row_width), dtype=self._row_dtype)

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/timing counters (cache kept).

        Resets the plan's :class:`PlanTimers` too — shared-timer siblings
        (see :meth:`sibling`) observe the reset, by design: the timers
        are one account.
        """
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._bypasses = 0
            self._dense_hits = 0
        self._timers.reset()


@lru_cache(maxsize=32)
def _shared_plan(spec: "SketchSpec") -> HashPlan:
    return HashPlan(spec.hashes(), spec.shape)


def plan_for(spec: "SketchSpec") -> HashPlan:
    """The shared :class:`HashPlan` of a spec (memoised per distinct spec).

    Every family built from an equal spec — across streams, engines, and
    in-process shards — receives the *same* plan object, so the element
    cache is shared exactly as far as the coins are: two different specs
    never observe each other's cache state (their keys differ, so they
    get distinct plans).
    """
    return _shared_plan(spec)
