"""Head-to-head: 2-level hash sketches vs min-wise permutations (MIPs).

The paper positions MIPs (with the Chen et al. extension to expressions)
as the only prior art for non-union operators — but only on insert-only
streams.  Two scenarios quantify the trade:

1. **Insert-only**: both techniques estimate |A ∩ B| at comparable
   synopsis sizes.  MIPs are typically tighter per byte here — the paper
   never claims otherwise.
2. **With deletions**: half of each stream is deleted after ingest.  The
   2-level sketch's estimate tracks the surviving sets exactly as if the
   deleted items never existed; the MIP sketch is structurally depleted
   and its estimate is computed over stale state.
"""

from __future__ import annotations

import numpy as np
from _common import build_families

from repro.baselines.minhash import BottomKSketch
from repro.baselines.mip_expressions import estimate_expression_mip
from repro.core.intersection import estimate_intersection
from repro.datagen.controlled import generate_controlled
from repro.errors import IllegalDeletionError
from repro.experiments.metrics import relative_error, trimmed_mean_error

TRIALS = 5
NUM_SKETCHES = 192
BOTTOM_K = 512


def run_comparison():
    insert_only = {"sketch": [], "mip": []}
    with_deletes = {"sketch": [], "mip": []}

    for trial in range(TRIALS):
        rng = np.random.default_rng(6000 + trial)
        dataset = generate_controlled("A & B", 4096, 0.25, rng, domain_bits=24)
        truth = dataset.target_size

        families = build_families(dataset, NUM_SKETCHES, seed=trial)
        mips = {}
        for name in dataset.stream_names():
            sketch = BottomKSketch(k=BOTTOM_K, seed=trial, domain_bits=24)
            sketch.insert_batch(dataset.elements[name])
            mips[name] = sketch

        insert_only["sketch"].append(
            relative_error(
                estimate_intersection(families["A"], families["B"], 0.1).value,
                truth,
            )
        )
        insert_only["mip"].append(
            relative_error(estimate_expression_mip("A & B", mips), truth)
        )

        # Delete a random half of each stream from both synopses.
        survivors = {}
        for name in dataset.stream_names():
            elements = dataset.elements[name]
            keep_mask = rng.random(elements.size) < 0.5
            victims = elements[~keep_mask]
            survivors[name] = set(int(e) for e in elements[keep_mask])
            families[name].update_batch(victims, np.full(victims.size, -1))
            for victim in victims:
                try:
                    mips[name].delete(int(victim))
                except IllegalDeletionError:
                    pass  # the hole stays; the sketch soldiers on, wrongly
        surviving_truth = len(survivors["A"] & survivors["B"])

        with_deletes["sketch"].append(
            relative_error(
                estimate_intersection(families["A"], families["B"], 0.1).value,
                surviving_truth,
            )
        )
        with_deletes["mip"].append(
            relative_error(
                estimate_expression_mip("A & B", mips), surviving_truth
            )
        )

    summary = {
        scenario: {
            technique: trimmed_mean_error(errors)
            for technique, errors in data.items()
        }
        for scenario, data in (
            ("insert-only", insert_only),
            ("with-deletions", with_deletes),
        )
    }
    return summary


def test_sketch_vs_mips(benchmark):
    summary = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("|A ∩ B| estimation: 2-level hash sketches vs MIPs (trimmed error)")
    print(f"{'scenario':>16s} {'2-level sketch':>15s} {'bottom-k MIPs':>14s}")
    for scenario, errors in summary.items():
        print(
            f"{scenario:>16s} {100 * errors['sketch']:14.1f}% "
            f"{100 * errors['mip']:13.1f}%"
        )
    print("paper: MIPs handle insert-only streams; deletions deplete them")
    print("       beyond repair while the 2-level sketch is unaffected")

    # Both work on insert-only data.
    assert summary["insert-only"]["sketch"] < 0.5
    assert summary["insert-only"]["mip"] < 0.25
    # Under deletions the sketch keeps working; depleted MIPs degrade and
    # must be clearly worse than the sketch.
    assert summary["with-deletions"]["sketch"] < 0.5
    assert (
        summary["with-deletions"]["mip"]
        > 2 * summary["with-deletions"]["sketch"]
    )
