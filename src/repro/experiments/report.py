"""Markdown report generation from saved experiment results.

``repro.experiments.run_all`` writes one CSV per figure; this module
turns a directory of those CSVs back into the paper-shaped markdown
tables (and anchor verdicts) without re-running anything::

    python -m repro.experiments.report --results experiments_output \
        --scale medium --out experiments_output/REPORT.md

Useful for CI: regenerate the report from archived results and diff it
against the committed one.
"""

from __future__ import annotations

import argparse
import csv
import pathlib
import sys
from collections import defaultdict

from repro.experiments.compare import check_anchors
from repro.experiments.config import FIGURES, scaled_config
from repro.experiments.runner import SweepResult, SweepSeries

__all__ = ["load_sweep_csv", "render_report", "main"]


def load_sweep_csv(path: str | pathlib.Path, figure: str, scale: str) -> SweepResult:
    """Rebuild a :class:`SweepResult` from a ``run_all`` CSV.

    The config is reconstructed from the named figure at the named scale;
    the CSV supplies the measured series.  Elapsed time is not stored in
    the CSV and is reported as 0.
    """
    config = scaled_config(FIGURES[figure], scale)
    by_ratio: dict[float, dict[int, float]] = defaultdict(dict)
    sizes: dict[float, int] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            ratio = float(row["target_ratio"])
            by_ratio[ratio][int(row["sketches"])] = float(row["trimmed_error"])
            sizes[ratio] = int(row["target_size"])

    series = []
    for ratio in sorted(by_ratio, reverse=True):
        cells = by_ratio[ratio]
        counts = tuple(sorted(cells))
        series.append(
            SweepSeries(
                target_ratio=ratio,
                target_size=sizes[ratio],
                sketch_counts=counts,
                errors=tuple(cells[count] for count in counts),
            )
        )
    return SweepResult(config=config, series=tuple(series), elapsed_seconds=0.0)


def render_report(results_dir: str | pathlib.Path, scale: str) -> str:
    """Markdown report over every figure CSV present in ``results_dir``."""
    results_dir = pathlib.Path(results_dir)
    lines = [
        f"# Experiment report ({scale} scale)",
        "",
        f"Regenerated from CSVs under `{results_dir}` by "
        "`python -m repro.experiments.report`.",
        "",
    ]
    found_any = False
    for figure in sorted(FIGURES):
        csv_path = results_dir / f"{figure}_{scale}.csv"
        if not csv_path.is_file():
            lines.append(f"*{figure}: no results file ({csv_path.name}).*")
            lines.append("")
            continue
        found_any = True
        result = load_sweep_csv(csv_path, figure, scale)
        lines.append(f"## {result.config.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.as_table())
        lines.append("```")
        lines.append("")
        for verdict in check_anchors(result):
            lines.append(f"* {verdict.describe()}")
        lines.append("")
    if not found_any:
        lines.append("*No result CSVs found — run `repro experiment` first.*")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Render the report and write it (or print to stdout)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results", type=pathlib.Path, default=pathlib.Path("experiments_output")
    )
    parser.add_argument("--scale", choices=("bench", "medium", "paper"), default="medium")
    parser.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)
    report = render_report(args.results, args.scale)
    if args.out is None:
        print(report)
    else:
        args.out.write_text(report)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
