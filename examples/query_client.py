"""Serving walkthrough: multi-tenant queries against a live coordinator.

A coordinator folds deltas from two reporting sites while a query
server mounted on the same event loop answers set-expression queries
over the network — the PR-10 serving front end.  Two tenants share the
deployment:

* ``acme`` sees only streams under the ``acme_`` prefix and is
  rate-limited to 5 expression evaluations/second;
* ``ops`` sees every stream, unmetered.

The walkthrough shows the serving contracts in action: both tenants
issue the *same expression text* (one parse, per-namespace answers),
every response carries a snapshot-position token, a windowed ``window=``
pass-through is rejected typed on this unwindowed target, and driving
``acme`` past its token budget raises a typed ``RateLimitedError`` with
a ``retry_after`` hint — the session survives and recovers.

Run:  python examples/query_client.py
"""

from __future__ import annotations

import asyncio
import random

import numpy as np

from repro import SketchShape, SketchSpec, Update
from repro.errors import RateLimitedError
from repro.streams.distributed import StreamSite
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.serving import QueryClient, TenantSpec

QUERY = "(logins & payments) - refunds"


async def main() -> None:
    rng = np.random.default_rng(1007)
    spec = SketchSpec(
        num_sketches=256,
        shape=SketchShape(domain_bits=24, num_second_level=16),
        seed=31,
    )

    # One process hosts both directions: deltas fold in on the ingest
    # port, queries are answered on the query port.
    server = CoordinatorServer(
        spec,
        query_port=0,
        query_options={
            "tenants": [
                TenantSpec("acme", prefix="acme_", rate=5.0),
                TenantSpec("ops"),
            ]
        },
    )
    await server.start()
    print(
        f"coordinator: ingest on :{server.port}, "
        f"queries on :{server.query_port} "
        f"(tenants: {', '.join(server.query_server.tenant_names())})"
    )

    # -- two sites report acme's event streams -------------------------
    users = rng.choice(2**24, size=30_000, replace=False)
    sites = [
        SiteClient(
            site=StreamSite(f"site-{index}", spec),
            port=server.port,
            rng=random.Random(500 + index),
        )
        for index in range(2)
    ]
    for site, chunk in zip(sites, np.array_split(users, 2)):
        for user in chunk[: len(chunk) // 2]:
            site.observe(Update("acme_logins", int(user), 1))
            site.observe(Update("acme_payments", int(user), 1))
        for user in chunk[len(chunk) // 2 :]:
            site.observe(Update("acme_logins", int(user), 1))
        for user in chunk[:2_000]:
            site.observe(Update("acme_refunds", int(user), 1))
        await site.ship()
    print("sites shipped; coordinator folded both deltas\n")

    # -- tenant views ---------------------------------------------------
    async with QueryClient(
        "127.0.0.1", server.query_port, tenant="acme"
    ) as acme, QueryClient(
        "127.0.0.1", server.query_port, tenant="ops"
    ) as ops:
        # acme names its streams logically; the server resolves them
        # under the acme_ prefix.
        estimate = await acme.query(QUERY, epsilon=0.1)
        print(
            f"[acme] |{QUERY}| ≈ {estimate.value:,.0f} "
            f"(snapshot position {acme.last_position})"
        )

        # ops issues the SAME text against the physical namespace —
        # the text parses once (shared plan), the answers differ.
        physical = QUERY.replace("logins", "acme_logins").replace(
            "payments", "acme_payments"
        ).replace("refunds", "acme_refunds")
        estimate = await ops.query(physical, epsilon=0.1)
        print(f"[ops]  |{physical}| ≈ {estimate.value:,.0f}")
        union = await ops.query_union(
            ["acme_logins", "acme_payments"], epsilon=0.1
        )
        print(f"[ops]  |logins ∪ payments| ≈ {union.value:,.0f}")

        # Errors come back typed, and the session survives every one.
        try:
            await acme.query(QUERY, epsilon=0.1, window=60.0)
        except ValueError as exc:
            print(f"[acme] windowed query rejected typed: {exc}")

        print("\n[acme] hammering past the 5/s budget ...")
        answered = 0
        try:
            for _ in range(20):
                await acme.query(QUERY, epsilon=0.1)
                answered += 1
        except RateLimitedError as exc:
            print(
                f"[acme] {answered} answered, then typed rate limit: "
                f"{exc} (retry in {exc.retry_after:.2f}s)"
            )
            await asyncio.sleep(exc.retry_after + 0.05)
            estimate = await acme.query(QUERY, epsilon=0.1)
            print(
                f"[acme] same session recovered after the hint: "
                f"≈ {estimate.value:,.0f}"
            )

    stats = server.query_server.stats()
    plans = server.query_server.plans
    for name, row in sorted(stats.items()):
        print(
            f"tenant {name}: {row.queries} queries, "
            f"{row.errors} errors, {row.rate_limited} rate-limited"
        )
    print(f"plan cache: {plans.parses} parses, {plans.hits} hits")

    for site in sites:
        await site.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
