"""Command-line interface for the repro toolkit.

Subcommands cover the full life of a deployment:

``repro generate``
    Synthesise a controlled update log for a target expression (the
    paper's Section 5.1 generator), optionally with insert/delete churn.
``repro ingest``
    One-pass build of sketch synopses from an update log, checkpointed to
    a directory.
``repro query``
    Estimate set-expression cardinalities from a checkpoint — no access
    to the original stream.
``repro plan``
    Synopsis sizing for a target (ε, δ) from the paper's space bounds.
``repro simplify``
    Analyse and canonicalise a set expression (satisfiability, Venn
    cells, minimal-ish equivalent form).
``repro exact``
    Ground-truth cardinalities by exact replay of an update log.
``repro experiment``
    Regenerate the paper's figures (delegates to
    ``repro.experiments.run_all``).
``repro serve``
    Run the asyncio coordinator server: accept delta exports from sites
    over TCP, fold them by sketch linearity, checkpoint periodically.
``repro ship``
    Replay an update log through a site client, shipping delta exports
    to a running coordinator every N updates.

Example session::

    repro generate --expression "(A - B) & C" --union-size 100000 \
        --target-ratio 0.25 --churn 0.5 --out /tmp/updates.log.gz
    repro ingest --log /tmp/updates.log.gz --checkpoint /tmp/synopses \
        --sketches 256
    repro query --checkpoint /tmp/synopses --expression "(A - B) & C" \
        --explain
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2-level hash sketches: set-expression cardinality "
        "estimation over update streams (SIGMOD 2003 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesise a controlled update log"
    )
    generate.add_argument("--expression", required=True, help='e.g. "(A - B) & C"')
    generate.add_argument("--union-size", type=int, default=1 << 14)
    generate.add_argument("--target-ratio", type=float, default=0.25)
    generate.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="phantom insert+delete pairs per real element (0 = insert-only)",
    )
    generate.add_argument("--domain-bits", type=int, default=30)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=pathlib.Path, required=True)

    ingest = subparsers.add_parser(
        "ingest", help="build synopses from an update log"
    )
    ingest.add_argument("--log", type=pathlib.Path, required=True)
    ingest.add_argument("--checkpoint", type=pathlib.Path, required=True)
    ingest.add_argument("--sketches", type=int, default=256)
    ingest.add_argument("--second-level", type=int, default=16)
    ingest.add_argument("--independence", type=int, default=8)
    ingest.add_argument("--domain-bits", type=int, default=30)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--shards", type=int, default=1,
        help="partition ingest across N parallel shards (1 = single engine)",
    )
    ingest.add_argument(
        "--dense-domain", type=int, default=None, metavar="N",
        help="precompute dense scatter rows for elements in [0, N) "
        "(4 KiB per element at the default shape); the tail falls back "
        "to the plan's row cache",
    )
    ingest.add_argument(
        "--hot-keys", type=int, default=0, metavar="K",
        help="learn the K hottest elements from the stream and precompute "
        "their scatter rows instead of assuming a bounded prefix "
        "(mutually exclusive with --dense-domain)",
    )
    ingest.add_argument(
        "--executor", choices=("serial", "threads", "processes"),
        default="threads",
        help="shard backend when --shards > 1",
    )

    def add_window_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--window-span", type=float, default=None, metavar="S",
            help="maintain sliding-window synopses over the most recent S "
            "logical time units (update index, for log replay); enables "
            "windowed queries",
        )
        sub.add_argument(
            "--bucket-width", type=float, default=None, metavar="W",
            help="window ring bucket width (S must be a whole multiple of "
            "W; default: one bucket spanning the whole window)",
        )

    add_window_arguments(ingest)

    query = subparsers.add_parser(
        "query",
        help="estimate |E| from checkpointed synopses or a live "
        "query server",
    )
    query.add_argument(
        "--checkpoint", type=pathlib.Path, default=None,
        help="checkpoint directory to query offline (or use --server)",
    )
    query.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="query a live serving front end (a coordinator started "
        "with serve --query-port) instead of a checkpoint",
    )
    query.add_argument(
        "--tenant", default=None,
        help="tenant name for --server sessions (default: public)",
    )
    query.add_argument(
        "--expression", action="append", required=True,
        help="may be given multiple times",
    )
    query.add_argument("--epsilon", type=float, default=0.1)
    query.add_argument(
        "--explain", action="store_true",
        help="also print per-subexpression estimates (checkpoint mode "
        "only)",
    )
    query.add_argument(
        "--window", type=float, default=None, metavar="T",
        help="estimate over the most recent T time units (needs a "
        "windowed engine; incompatible with --explain)",
    )

    plan = subparsers.add_parser(
        "plan", help="synopsis sizing for a target (epsilon, delta)"
    )
    plan.add_argument("--epsilon", type=float, default=0.1)
    plan.add_argument("--delta", type=float, default=0.05)
    plan.add_argument(
        "--ratio", type=float, default=0.1,
        help="smallest |E| / |union| the workload must resolve",
    )
    plan.add_argument("--streams", type=int, default=2)

    simplify = subparsers.add_parser(
        "simplify", help="analyse and canonicalise a set expression"
    )
    simplify.add_argument("--expression", required=True)

    exact = subparsers.add_parser(
        "exact", help="exact |E| from an update log (ground truth)"
    )
    exact.add_argument("--log", type=pathlib.Path, required=True)
    exact.add_argument(
        "--expression", action="append", required=True,
        help="may be given multiple times",
    )

    def add_spec_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--sketches", type=int, default=256)
        sub.add_argument("--second-level", type=int, default=16)
        sub.add_argument("--independence", type=int, default=8)
        sub.add_argument("--domain-bits", type=int, default=30)
        sub.add_argument("--seed", type=int, default=0)

    serve = subparsers.add_parser(
        "serve", help="run the delta-shipping coordinator server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9431)
    add_spec_arguments(serve)
    serve.add_argument(
        "--checkpoint", type=pathlib.Path, default=None,
        help="checkpoint directory; restored from on startup if it exists",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=100,
        help="write a checkpoint every N applied deltas",
    )
    serve.add_argument(
        "--max-deltas", type=int, default=None,
        help="exit after N applied deltas (default: run until interrupted)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="fold deltas into a ShardedEngine with N shards (1 = flat)",
    )
    serve.add_argument(
        "--parent", default=None, metavar="HOST:PORT",
        help="re-export aggregated deltas to a parent coordinator "
        "(makes this server a leaf of a federation tree)",
    )
    serve.add_argument(
        "--uplink-id", default=None,
        help="site id announced to the parent (default: leaf-<port>)",
    )
    serve.add_argument(
        "--uplink-every", type=int, default=100,
        help="auto-ship upstream every N applied deltas (0 = only at "
        "shutdown)",
    )
    serve.add_argument(
        "--encodings", default=None, metavar="ENC[,ENC...]",
        help="wire encodings accepted from v2 sites, preference first "
        "(default: sparse+zlib,sparse,dense+zlib,dense; 'dense' forces "
        "v1-style frames for every peer)",
    )
    serve.add_argument(
        "--query-port", type=int, default=None,
        help="also serve set-expression queries on this port (0 = "
        "ephemeral); see the 'repro query --server' client",
    )
    serve.add_argument(
        "--query-tenant", action="append", default=None,
        metavar="NAME[:PREFIX[:RATE]]",
        help="register a serving tenant (repeatable): stream-namespace "
        "PREFIX (empty = all streams) and token-bucket RATE in "
        "queries/s (empty = unlimited); default: one unlimited "
        "'public' tenant",
    )
    add_window_arguments(serve)

    ship = subparsers.add_parser(
        "ship", help="replay an update log through a delta-shipping site"
    )
    ship.add_argument("--log", type=pathlib.Path, required=True)
    ship.add_argument("--host", default="127.0.0.1")
    ship.add_argument("--port", type=int, default=9431)
    ship.add_argument("--site-id", required=True)
    add_spec_arguments(ship)
    ship.add_argument(
        "--every", type=int, default=100_000,
        help="updates observed between export rounds",
    )
    ship.add_argument(
        "--encodings", default=None, metavar="ENC[,ENC...]",
        help="wire encodings offered in the hello, preference first "
        "(default: sparse+zlib,sparse,dense+zlib,dense; 'dense' ships "
        "v1-style frames)",
    )
    ship.add_argument(
        "--max-batch", type=int, default=32,
        help="retained exports coalesced per delta frame on re-sync "
        "(1 disables uplink batching)",
    )
    add_window_arguments(ship)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate the paper's figures"
    )
    experiment.add_argument(
        "--scale", choices=("bench", "medium", "paper"), default="medium"
    )
    experiment.add_argument("--figure", nargs="*", default=None)
    experiment.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("experiments_output")
    )

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    from repro.datagen.controlled import generate_controlled
    from repro.datagen.updates_gen import with_phantom_deletions
    from repro.streams.sources import save_updates
    from repro.streams.updates import insertions

    rng = np.random.default_rng(args.seed)
    dataset = generate_controlled(
        args.expression,
        args.union_size,
        args.target_ratio,
        rng,
        domain_bits=args.domain_bits,
    )
    updates = []
    for name in dataset.stream_names():
        if args.churn > 0:
            updates.extend(
                with_phantom_deletions(
                    name,
                    dataset.elements[name],
                    rng,
                    phantom_fraction=args.churn,
                    domain_bits=args.domain_bits,
                )
            )
        else:
            updates.extend(
                insertions(name, (int(e) for e in dataset.elements[name]))
            )
    written = save_updates(args.out, updates)
    print(f"wrote {written:,} updates to {args.out}")
    print(f"exact |{args.expression}| = {dataset.target_size:,} "
          f"(union {dataset.union_size:,})")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.core.family import SketchSpec
    from repro.core.sketch import SketchShape
    from repro.streams.checkpoint import (
        checkpoint_engine,
        checkpoint_sharded_engine,
    )
    from repro.streams.engine import StreamEngine
    from repro.streams.sharded import ShardedEngine
    from repro.streams.sources import replay_into

    spec = SketchSpec(
        num_sketches=args.sketches,
        shape=SketchShape(
            domain_bits=args.domain_bits,
            num_second_level=args.second_level,
            independence=args.independence,
        ),
        seed=args.seed,
    )
    if args.shards < 1:
        print("--shards must be positive", file=sys.stderr)
        return 2
    if args.dense_domain is not None and args.hot_keys:
        print("pass --dense-domain or --hot-keys, not both", file=sys.stderr)
        return 2
    windowed = _check_window_args(args)
    if windowed and args.shards > 1:
        print(
            "windowing is unsupported on a sharded engine; drop --shards "
            "or the window flags",
            file=sys.stderr,
        )
        return 2
    progress = lambda n: print(f"  {n:,} updates ingested ...")  # noqa: E731
    if windowed:
        # Log replay has no wall clock; the update index is the logical
        # time, so --window-span/--bucket-width are measured in updates.
        from repro.streams.sources import load_updates, load_updates_csv

        engine = StreamEngine(
            spec,
            dense_domain=args.dense_domain,
            hot_keys=args.hot_keys,
            window_span=args.window_span,
            bucket_width=args.bucket_width,
        )
        is_csv = ".csv" in args.log.suffixes
        source = (
            load_updates_csv(args.log) if is_csv else load_updates(args.log)
        )
        count = engine.observe_many(
            (update, float(index))
            for index, update in enumerate(source, start=1)
        )
        checkpoint_engine(engine, args.checkpoint)
    elif args.shards == 1:
        engine = StreamEngine(
            spec, dense_domain=args.dense_domain, hot_keys=args.hot_keys
        )
        count = replay_into(args.log, engine, progress=progress)
        checkpoint_engine(engine, args.checkpoint)
    else:
        with ShardedEngine(
            spec,
            num_shards=args.shards,
            executor=args.executor,
            dense_domain=args.dense_domain,
            hot_keys=args.hot_keys,
        ) as engine:
            count = replay_into(args.log, engine, progress=progress)
            engine.flush()
            checkpoint_sharded_engine(engine, args.checkpoint)
            print(engine.stats().as_table())
            print(
                f"ingested {count:,} updates over streams "
                f"{', '.join(engine.stream_names())} across {args.shards} "
                f"{args.executor} shards; checkpoint at {args.checkpoint} "
                f"({engine.synopsis_bytes() / 1e6:.1f} MB of counters)"
            )
            return 0
    print(
        f"ingested {count:,} updates over streams "
        f"{', '.join(engine.stream_names())}; checkpoint at {args.checkpoint} "
        f"({engine.synopsis_bytes() / 1e6:.1f} MB of counters)"
    )
    return 0


def _command_query(args: argparse.Namespace) -> int:
    from repro.core.explain import explain_expression
    from repro.streams.checkpoint import restore_engine

    if (args.checkpoint is None) == (args.server is None):
        print(
            "pass exactly one of --checkpoint (offline) or --server "
            "(live query session)",
            file=sys.stderr,
        )
        return 2
    if args.server is not None:
        return _query_remote(args)
    if args.tenant is not None:
        print("--tenant only applies with --server", file=sys.stderr)
        return 2
    engine = restore_engine(args.checkpoint)
    if args.window is not None:
        if args.explain:
            print("--window and --explain are incompatible", file=sys.stderr)
            return 2
        if not engine.is_windowed:
            print(
                "this checkpoint has no window state; re-ingest with "
                "--window-span",
                file=sys.stderr,
            )
            return 2
        for expression in args.expression:
            estimate = engine.query(
                expression, args.epsilon, window=args.window
            )
            print(
                f"|{expression}| ≈ {estimate.value:,.0f} over the last "
                f"{args.window:g} time units  "
                f"(û={estimate.union_estimate:,.0f}, "
                f"{estimate.num_witnesses}/{estimate.num_valid} witnesses)"
            )
        return 0
    for expression in args.expression:
        if args.explain:
            engine.flush()
            families = {
                name: engine.family(name) for name in engine.stream_names()
            }
            explanation = explain_expression(expression, families, args.epsilon)
            print(f"|{expression}| ≈ {explanation.estimate.value:,.0f}")
            print(explanation.as_table())
        else:
            estimate = engine.query(expression, args.epsilon)
            print(
                f"|{expression}| ≈ {estimate.value:,.0f}  "
                f"(û={estimate.union_estimate:,.0f}, "
                f"{estimate.num_witnesses}/{estimate.num_valid} witnesses)"
            )
    return 0


def _query_remote(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.streams.net.protocol import ProtocolError
    from repro.streams.serving import DEFAULT_TENANT, QueryClient

    if args.explain:
        print("--explain needs --checkpoint (offline mode)", file=sys.stderr)
        return 2
    host, _, port = args.server.rpartition(":")
    if not port.isdigit():
        print(f"--server wants HOST:PORT, got {args.server!r}", file=sys.stderr)
        return 2

    async def run() -> int:
        client = QueryClient(
            host or "127.0.0.1",
            int(port),
            tenant=args.tenant or DEFAULT_TENANT,
        )
        async with client:
            estimates = await client.query(
                list(args.expression), args.epsilon, window=args.window
            )
            for expression, estimate in zip(args.expression, estimates):
                suffix = (
                    f" over the last {args.window:g} time units"
                    if args.window is not None
                    else ""
                )
                print(
                    f"|{expression}| ≈ {estimate.value:,.0f}{suffix}  "
                    f"(û={estimate.union_estimate:,.0f}, "
                    f"{estimate.num_witnesses}/{estimate.num_valid} "
                    f"witnesses)"
                )
            position = client.last_position
            print(
                f"answered at position {position[0]:,} updates / "
                f"epoch {position[1]}"
            )
        return 0

    try:
        return asyncio.run(run())
    except (ReproError, ProtocolError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"query failed: {message}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {args.server}: {exc}", file=sys.stderr)
        return 1


def _command_plan(args: argparse.Namespace) -> int:
    from repro.core.sizing import recommend_spec

    plan = recommend_spec(
        epsilon=args.epsilon,
        delta=args.delta,
        cardinality_ratio=args.ratio,
        num_streams=args.streams,
    )
    print(plan.describe())
    return 0


def _command_simplify(args: argparse.Namespace) -> int:
    from repro.expr.optimize import is_tautology, is_unsatisfiable, simplify
    from repro.expr.parser import parse
    from repro.expr.venn import cells_of_expression

    expression = parse(args.expression)
    print(f"parsed     : {expression.to_text()}")
    print(f"streams    : {', '.join(sorted(expression.streams()))}")
    cells = cells_of_expression(expression)
    print(f"venn cells : {len(cells)}")
    if is_unsatisfiable(expression):
        print("analysis   : unsatisfiable — |E| = 0 for every input")
    elif is_tautology(expression):
        print("analysis   : equals the union of its streams")
    print(f"simplified : {simplify(expression).to_text()}")
    return 0


def _command_exact(args: argparse.Namespace) -> int:
    from repro.streams.exact import ExactStreamStore
    from repro.streams.sources import replay_into

    store = ExactStreamStore()
    count = replay_into(args.log, store)
    print(f"replayed {count:,} updates over streams {', '.join(store.streams())}")
    for expression in args.expression:
        print(f"|{expression}| = {store.cardinality(expression):,}")
    return 0


def _spec_from_args(args: argparse.Namespace):
    from repro.core.family import SketchSpec
    from repro.core.sketch import SketchShape

    return SketchSpec(
        num_sketches=args.sketches,
        shape=SketchShape(
            domain_bits=args.domain_bits,
            num_second_level=args.second_level,
            independence=args.independence,
        ),
        seed=args.seed,
    )


def _check_window_args(args: argparse.Namespace) -> bool:
    """Validate the --window-span/--bucket-width pair; True when windowed."""
    if args.bucket_width is not None and args.window_span is None:
        raise SystemExit("--bucket-width needs --window-span")
    return args.window_span is not None


def _parse_encodings(text: str | None) -> tuple:
    """``--encodings`` value -> encoding tuple (None = builtin preference)."""
    from repro.streams.net import codec

    if text is None:
        return codec.PREFERRED_ENCODINGS
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    if not names:
        raise SystemExit("--encodings needs at least one encoding name")
    unknown = sorted(set(names) - set(codec.WIRE_ENCODINGS))
    if unknown:
        raise SystemExit(
            f"unknown encoding(s) {', '.join(unknown)}; "
            f"choose from {', '.join(codec.WIRE_ENCODINGS)}"
        )
    return names


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.streams.net.coordinator import CoordinatorServer
    from repro.streams.net.site import SiteConnectionError

    encodings = _parse_encodings(args.encodings)
    windowed = _check_window_args(args)
    if windowed and args.shards > 1:
        print(
            "windowing is unsupported on a sharded fold engine; drop "
            "--shards or the window flags",
            file=sys.stderr,
        )
        return 2

    engine_factory = None
    if args.shards > 1:
        from repro.streams.sharded import ShardedEngine

        # Serial executor: the fold runs on the asyncio loop's thread and
        # this container is single-core anyway — sharding buys the
        # partitioned layout (and checkpoint format), not parallelism.
        def engine_factory(spec):
            return ShardedEngine(
                spec, num_shards=args.shards, executor="serial"
            )
    elif windowed:
        from repro.streams.engine import StreamEngine

        # A windowed fold target buckets incoming deltas by their
        # exports' window_at stamps, so windowed queries work at this
        # node (and at every ancestor folding its uplink).
        def engine_factory(spec):
            return StreamEngine(
                spec,
                window_span=args.window_span,
                bucket_width=args.bucket_width,
            )

    uplink_kwargs: dict = {}
    if args.parent is not None:
        parent_host, _, parent_port = args.parent.rpartition(":")
        uplink_kwargs = {
            "parent_host": parent_host or "127.0.0.1",
            "parent_port": int(parent_port),
            "uplink_id": args.uplink_id or f"leaf-{args.port}",
            "uplink_every": args.uplink_every,
        }

    serving_kwargs: dict = {}
    if args.query_port is not None:
        tenants = None
        if args.query_tenant:
            from repro.streams.serving import TenantSpec

            tenants = []
            for text in args.query_tenant:
                name, _, rest = text.partition(":")
                prefix, _, rate = rest.partition(":")
                try:
                    tenants.append(
                        TenantSpec(
                            name,
                            prefix=prefix,
                            rate=float(rate) if rate else None,
                        )
                    )
                except ValueError as exc:
                    print(f"bad --query-tenant {text!r}: {exc}",
                          file=sys.stderr)
                    return 2
        serving_kwargs = {
            "query_port": args.query_port,
            "query_options": {"tenants": tenants} if tenants else None,
        }
    elif args.query_tenant:
        print("--query-tenant needs --query-port", file=sys.stderr)
        return 2

    async def run() -> None:
        # SIGINT/SIGTERM request a clean shutdown: final checkpoint,
        # unacked uplink exports flushed upstream, connections closed,
        # stats printed.  (A backgrounded process may have SIGINT
        # ignored by the shell; SIGTERM still works.)
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # platform without signals, or not the main thread
        if args.checkpoint is not None and (
            args.checkpoint / "manifest.json"
        ).is_file():
            factory = engine_factory
            if windowed:
                from repro.streams.checkpoint import read_checkpoint_extra

                if "windows" in read_checkpoint_extra(args.checkpoint):
                    # A windowed checkpoint restores into its own engine,
                    # rings included; the checkpoint's window config wins
                    # over the flags.
                    factory = None
            server = CoordinatorServer.restore(
                args.checkpoint,
                host=args.host,
                port=args.port,
                checkpoint_every=args.checkpoint_every,
                engine_factory=factory,
                encodings=encodings,
                **uplink_kwargs,
                **serving_kwargs,
            )
            print(f"restored coordinator state from {args.checkpoint}")
        else:
            server = CoordinatorServer(
                _spec_from_args(args),
                host=args.host,
                port=args.port,
                checkpoint_dir=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                engine_factory=engine_factory,
                encodings=encodings,
                **uplink_kwargs,
                **serving_kwargs,
            )
        await server.start()
        print(f"coordinator listening on {server.host}:{server.port}")
        if server.query_server is not None:
            print(
                f"query server listening on {server.host}:"
                f"{server.query_port} (tenants: "
                f"{', '.join(server.query_server.tenant_names())})"
            )
        try:
            if args.max_deltas is None:
                await stop_requested.wait()
            else:
                while (
                    server.total_deltas_applied < args.max_deltas
                    and not stop_requested.is_set()
                ):
                    await asyncio.sleep(0.02)
        finally:
            if server.uplink is not None:
                # Final upstream flush: cuts a last export (through the
                # checkpoint when one is configured, persisting the
                # retained tail) and pushes everything the parent has
                # not applied.  Best-effort — an unreachable parent
                # must not block shutdown; with a checkpoint the
                # retained exports survive for the next life's re-sync.
                try:
                    await server.ship_upstream()
                except (SiteConnectionError, ConnectionError, OSError):
                    if args.checkpoint is None:
                        print("warning: parent unreachable; unshipped "
                              "uplink deltas lost (no checkpoint)")
                    else:
                        print("warning: parent unreachable; unshipped "
                              "uplink deltas retained in the checkpoint")
            if args.checkpoint is not None:
                server.checkpoint()
            await server.stop()
            if server.query_server is not None:
                for name, serving in sorted(
                    server.query_server.stats().items()
                ):
                    print(
                        f"tenant {name}: {serving.queries} queries "
                        f"({serving.items} expressions, "
                        f"{serving.batched_queries} batched), "
                        f"{serving.errors} errors "
                        f"({serving.rate_limited} rate-limited), "
                        f"{serving.bytes_in:,} bytes in / "
                        f"{serving.bytes_out:,} out"
                    )
                plans = server.query_server.plans
                print(
                    f"plan cache: {plans.parses} parses, {plans.hits} "
                    f"hits, {plans.evictions} evictions"
                )
            for site_id, stats in sorted(server.stats().items()):
                print(
                    f"{stats.role} {site_id}: "
                    f"{stats.deltas_applied} deltas applied "
                    f"({stats.exports_coalesced} coalesced), "
                    f"{stats.duplicates_dropped} duplicates dropped, "
                    f"{stats.bytes_received:,} bytes in, "
                    f"codec x{stats.compression_ratio:.1f}"
                )
            rollup = server.transport_rollup()
            print(
                f"transport total: {rollup.frames_received} frames / "
                f"{rollup.bytes_received:,} bytes in, "
                f"{rollup.frames_sent} frames / "
                f"{rollup.bytes_sent:,} bytes out, "
                f"{rollup.deltas_shipped} deltas shipped upstream"
            )
            if rollup.payload_bytes_wire:
                by_type = ", ".join(
                    f"{mtype} {nbytes:,}"
                    for mtype, nbytes in sorted(rollup.message_bytes.items())
                )
                print(
                    f"wire codec: {rollup.payload_bytes_wire:,} payload "
                    f"bytes for {rollup.payload_bytes_dense:,} dense "
                    f"(x{rollup.compression_ratio:.1f}, "
                    f"{rollup.payload_bytes_saved:,} saved); "
                    f"bytes by type: {by_type}"
                )
            streams = ", ".join(server.coordinator.stream_names()) or "<none>"
            print(
                f"served {server.total_deltas_applied} deltas over streams "
                f"{streams}; {server.checkpoints_written} checkpoints"
            )
            fold = server.coordinator.fold_engine
            if fold is not None and hasattr(fold, "close"):
                fold.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _command_ship(args: argparse.Namespace) -> int:
    import asyncio
    import math

    from repro.streams.distributed import StreamSite
    from repro.streams.net.site import SiteClient
    from repro.streams.sources import load_updates, load_updates_csv

    is_csv = ".csv" in args.log.suffixes
    source = load_updates_csv(args.log) if is_csv else load_updates(args.log)
    windowed = _check_window_args(args)

    async def run() -> int:
        spec = _spec_from_args(args)
        site = None
        if windowed:
            from repro.streams.engine import StreamEngine

            site = StreamSite(
                args.site_id,
                spec,
                engine=StreamEngine(
                    spec,
                    window_span=args.window_span,
                    bucket_width=args.bucket_width,
                ),
            )
        client = SiteClient(
            site=site,
            site_id=None if site is not None else args.site_id,
            spec=None if site is not None else spec,
            host=args.host,
            port=args.port,
            encodings=_parse_encodings(args.encodings),
            max_batch=args.max_batch,
        )
        # Log replay has no wall clock; the update index is the logical
        # time.  In windowed mode an export is cut whenever a ring bucket
        # completes, so every shipped delta falls entirely inside one
        # coordinator bucket and windowed queries at the coordinator are
        # bit-identical to a local windowed replay.
        width = None
        if windowed:
            width = (
                args.bucket_width
                if args.bucket_width is not None
                else args.window_span
            )
        count = rounds = 0
        for update in source:
            count += 1
            if windowed:
                client.observe(update, float(count))
                if math.ceil((count + 1) / width) > math.ceil(count / width):
                    await client.ship()
                    rounds += 1
            else:
                client.observe(update)
                if count % args.every == 0:
                    await client.ship()
                    rounds += 1
        await client.ship()
        rounds += 1
        await client.close()
        print(
            f"site {args.site_id}: shipped {count:,} updates in {rounds} "
            f"export rounds ({client.stats.bytes_sent:,} bytes, "
            f"{client.stats.retries} retries, "
            f"{client.stats.reconnects} reconnects)"
        )
        stats = client.stats
        print(
            f"wire codec: {stats.payload_bytes_wire:,} payload bytes for "
            f"{stats.payload_bytes_dense:,} dense "
            f"(x{stats.compression_ratio:.1f}, "
            f"{stats.payload_bytes_saved:,} saved), "
            f"{stats.exports_coalesced} exports coalesced"
        )
        return count

    asyncio.run(run())
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import main as run_all_main

    argv = ["--scale", args.scale, "--out", str(args.out)]
    if args.figure:
        argv += ["--figure", *args.figure]
    return run_all_main(argv)


_COMMANDS = {
    "generate": _command_generate,
    "ingest": _command_ingest,
    "query": _command_query,
    "plan": _command_plan,
    "simplify": _command_simplify,
    "exact": _command_exact,
    "experiment": _command_experiment,
    "serve": _command_serve,
    "ship": _command_ship,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
