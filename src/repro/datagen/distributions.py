"""Element-value distributions for example workloads.

The controlled generators draw uniform distinct elements (as the paper
does); the example applications want more life-like traffic — repeated
elements with skewed popularity.  These helpers produce *multisets* (with
duplicates) from a fixed pool of distinct values.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_multiset", "zipf_multiset"]


def uniform_multiset(
    pool: np.ndarray, total_items: int, rng: np.random.Generator
) -> np.ndarray:
    """``total_items`` draws from ``pool`` with equal probability each."""
    if total_items < 0:
        raise ValueError("total_items must be non-negative")
    if len(pool) == 0:
        raise ValueError("pool must be non-empty")
    return rng.choice(pool, size=total_items, replace=True)


def zipf_multiset(
    pool: np.ndarray,
    total_items: int,
    rng: np.random.Generator,
    skew: float = 1.1,
) -> np.ndarray:
    """``total_items`` draws from ``pool`` with Zipf(``skew``) popularity.

    Rank ``k`` (1-based, in pool order) is drawn with probability
    proportional to ``k**-skew`` — the classic heavy-hitter shape of IP
    flows and retail transactions.
    """
    if total_items < 0:
        raise ValueError("total_items must be non-negative")
    if len(pool) == 0:
        raise ValueError("pool must be non-empty")
    if skew <= 0:
        raise ValueError("skew must be positive")
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    return rng.choice(pool, size=total_items, replace=True, p=weights)
