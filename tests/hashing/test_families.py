"""Unit tests for the hash-function families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.families import (
    BinaryHashBank,
    PairwiseBinaryHash,
    PolynomialHash,
    random_binary_bank,
    random_polynomial_hash,
)
from repro.hashing.mersenne import MERSENNE_P

P = int(MERSENNE_P)


class TestPolynomialHash:
    def test_rejects_empty_coefficients(self):
        with pytest.raises(ValueError):
            PolynomialHash(())

    def test_rejects_out_of_field_coefficients(self):
        with pytest.raises(ValueError):
            PolynomialHash((P,))
        with pytest.raises(ValueError):
            PolynomialHash((1, -3))

    def test_independence_property(self):
        assert PolynomialHash((1, 2, 3)).independence == 3

    def test_scalar_matches_array(self):
        hash_fn = PolynomialHash((17, 3, 99))
        elements = [0, 1, 2, 12345, 2**30 - 1]
        array_result = hash_fn(np.asarray(elements, dtype=np.uint64))
        for element, value in zip(elements, array_result):
            assert hash_fn(element) == int(value)

    def test_matches_integer_polynomial(self):
        hash_fn = PolynomialHash((2, 3, 5))
        x = 1000
        assert hash_fn(x) == (2 * x**2 + 3 * x + 5) % P

    def test_rejects_elements_outside_field(self):
        hash_fn = PolynomialHash((1, 0))
        with pytest.raises(ValueError):
            hash_fn(np.asarray([P], dtype=np.uint64))

    def test_deterministic(self):
        hash_fn = PolynomialHash((7, 8, 9))
        assert hash_fn(42) == hash_fn(42)

    def test_injective_on_small_domain(self):
        """Degree >= 1 polynomials over a field are injective in x."""
        hash_fn = PolynomialHash((7, 9))  # linear, a != 0
        values = hash_fn(np.arange(10_000, dtype=np.uint64))
        assert len(set(int(v) for v in values)) == 10_000


class TestPairwiseBinaryHash:
    def test_output_is_binary(self):
        hash_fn = PairwiseBinaryHash(mask=0xDEADBEEF, flip=1)
        bits = hash_fn(np.arange(1000, dtype=np.uint64))
        assert set(int(b) for b in bits) <= {0, 1}

    def test_scalar_matches_array(self):
        hash_fn = PairwiseBinaryHash(mask=0x123456789, flip=0)
        elements = [0, 1, 7, 2**30]
        array_result = hash_fn(np.asarray(elements, dtype=np.uint64))
        for element, bit in zip(elements, array_result):
            assert hash_fn(element) == int(bit)

    def test_gf2_linearity(self):
        """g(x) XOR g(y) == g(x XOR y) XOR g(0) for a GF(2)-linear hash."""
        hash_fn = PairwiseBinaryHash(mask=0xABCDEF0123, flip=1)
        rng = np.random.default_rng(10)
        for _ in range(100):
            x, y = (int(v) for v in rng.integers(0, 2**40, size=2))
            assert (hash_fn(x) ^ hash_fn(y)) == (hash_fn(x ^ y) ^ hash_fn(0))

    def test_flip_validation(self):
        with pytest.raises(ValueError):
            PairwiseBinaryHash(mask=1, flip=2)

    def test_mask_validation(self):
        with pytest.raises(ValueError):
            PairwiseBinaryHash(mask=1 << 64, flip=0)

    def test_matches_popcount_parity(self):
        mask = 0b1011
        hash_fn = PairwiseBinaryHash(mask=mask, flip=0)
        for element in range(64):
            assert hash_fn(element) == bin(element & mask).count("1") % 2


class TestBinaryHashBank:
    def test_bits_shape(self):
        bank = random_binary_bank(np.random.default_rng(11), size=8)
        bits = bank.bits(np.arange(100, dtype=np.uint64))
        assert bits.shape == (100, 8)

    def test_bits_match_individual_hashes(self):
        bank = random_binary_bank(np.random.default_rng(12), size=6)
        elements = np.arange(200, dtype=np.uint64)
        bits = bank.bits(elements)
        for j in range(6):
            individual = bank[j]
            for element, bit in zip(elements, bits[:, j]):
                assert individual(int(element)) == int(bit)

    def test_size(self):
        assert random_binary_bank(np.random.default_rng(13), size=5).size == 5

    def test_mismatched_tuples_rejected(self):
        with pytest.raises(ValueError):
            BinaryHashBank(masks=(1, 2), flips=(0,))

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            BinaryHashBank(masks=(), flips=())

    def test_balanced_output(self):
        """Each hash should split a large input set roughly in half."""
        bank = random_binary_bank(np.random.default_rng(14), size=16)
        rng = np.random.default_rng(15)
        elements = rng.integers(0, 2**40, size=50_000, dtype=np.uint64)
        means = bank.bits(elements).mean(axis=0)
        assert float(np.abs(means - 0.5).max()) < 0.02

    def test_pairwise_agreement_over_hash_draw(self):
        """For a FIXED distinct pair, a randomly drawn hash maps the two
        elements to the same bit with probability exactly 1/2 — pairwise
        independence is a statement over the draw of the function."""
        bank = random_binary_bank(np.random.default_rng(16), size=4096)
        x = np.asarray([123456789], dtype=np.uint64)
        y = np.asarray([987654321], dtype=np.uint64)
        agreement = float((bank.bits(x) == bank.bits(y)).mean())
        assert abs(agreement - 0.5) < 0.03

    def test_all_hashes_agree_rate_for_random_pairs(self):
        """Random distinct pairs agree on all s independent hashes at the
        Lemma 3.1 rate ~2**-s (the singleton-check error probability)."""
        s = 10
        bank = random_binary_bank(np.random.default_rng(18), size=s)
        rng = np.random.default_rng(17)
        x = rng.integers(0, 2**40, size=50_000, dtype=np.uint64)
        y = rng.integers(0, 2**40, size=50_000, dtype=np.uint64)
        distinct = x != y
        agree = (bank.bits(x) == bank.bits(y)).all(axis=1)[distinct]
        rate = float(agree.mean())
        assert rate < 5.0 * 2.0**-s


class TestRandomGenerators:
    def test_polynomial_deterministic_per_seed(self):
        a = random_polynomial_hash(np.random.default_rng(42), 4)
        b = random_polynomial_hash(np.random.default_rng(42), 4)
        assert a == b

    def test_polynomial_leading_coefficient_nonzero(self):
        for seed in range(20):
            drawn = random_polynomial_hash(np.random.default_rng(seed), 3)
            assert drawn.coefficients[0] != 0

    def test_polynomial_requested_independence(self):
        drawn = random_polynomial_hash(np.random.default_rng(1), 7)
        assert drawn.independence == 7

    def test_polynomial_rejects_bad_independence(self):
        with pytest.raises(ValueError):
            random_polynomial_hash(np.random.default_rng(1), 0)

    def test_bank_deterministic_per_seed(self):
        a = random_binary_bank(np.random.default_rng(5), 4)
        b = random_binary_bank(np.random.default_rng(5), 4)
        assert a == b

    def test_bank_rejects_bad_size(self):
        with pytest.raises(ValueError):
            random_binary_bank(np.random.default_rng(1), 0)
