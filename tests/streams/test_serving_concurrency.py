"""Prefix-consistency fuzz for the serving front end.

The server's consistency claim: every served answer describes *some*
engine state that actually existed — the one its ``position`` snapshot
token names — never a torn read straddling a half-applied ingest batch
or a window expiry.  The fuzz drives a seeded schedule of ingest
batches, watermark advances (bucket expiries included), and concurrent
client queries over a **windowed** engine, recording the engine's
ground-truth answers immediately after every mutation.  A served answer
must then be bit-identical to the recorded answers at its reported
position; a position nobody recorded, or a value differing from the
recorded one, is a torn read.

The windowed queries deliberately straddle bucket expiries: the
schedule advances the watermark far enough mid-run that earlier buckets
fall out of the window while queries are in flight.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.serving import QueryClient, QueryServer
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=14, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=16, shape=SHAPE, seed=23)

WINDOW_SPAN = 8.0
BUCKET_WIDTH = 2.0
STREAMS = "ABC"
EPSILON = 0.25

#: (expression text, window) pairs every consistency check evaluates.
#: The windowed entries are the ones a bucket expiry can change without
#: any update being processed — exactly the reads a torn fold would
#: corrupt first.
PROBES = [
    ("A & B", None),
    ("(A - B) | C", None),
    ("A & B", 4.0),
    ("A | C", WINDOW_SPAN),
]

FAST_SEEDS = [101, 202, 303]
SLOW_SEEDS = [404, 505, 606, 707, 808]

TIMEOUT = 60.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def ground_truth(engine: StreamEngine) -> list:
    return [
        engine.query(text, EPSILON, window=window)
        for text, window in PROBES
    ]


async def fuzz_schedule(seed: int) -> None:
    rng = random.Random(seed)
    engine = StreamEngine(
        SPEC, window_span=WINDOW_SPAN, bucket_width=BUCKET_WIDTH
    )
    clock = 0.0

    # Seed every stream so no probe hits an unknown name.
    for stream in STREAMS:
        engine.observe(Update(stream, rng.randrange(1, 4000), 1), clock)

    # position -> the engine's own answers, recorded synchronously
    # right after the mutation that created that position.
    expected: dict[tuple[int, int], list] = {}

    def record() -> None:
        expected[tuple(engine.snapshot_position)] = ground_truth(engine)

    record()

    async with QueryServer(engine) as server:
        mutations_done = asyncio.Event()
        served = 0

        async def mutate() -> None:
            nonlocal clock
            try:
                for _ in range(30):
                    op = rng.random()
                    if op < 0.7:
                        batch = []
                        for _ in range(rng.randrange(1, 12)):
                            # Timestamps must be monotone (the engine's
                            # default clock_policy is "raise").
                            clock += rng.random() * BUCKET_WIDTH * 0.1
                            batch.append(
                                (
                                    Update(
                                        rng.choice(STREAMS),
                                        rng.randrange(1, 4000),
                                        1,
                                    ),
                                    clock,
                                )
                            )
                        engine.observe_many(batch)
                    else:
                        # Jump the watermark: expires whole buckets, so
                        # in-flight windowed queries straddle an expiry.
                        clock += BUCKET_WIDTH * rng.randrange(1, 3)
                        engine.advance_to(clock)
                    record()
                    # Yield so parked queries drain between mutations.
                    await asyncio.sleep(0)
            finally:
                mutations_done.set()

        async def probe_client(offset: int) -> int:
            answered = 0
            async with QueryClient("127.0.0.1", server.port) as client:
                while not mutations_done.is_set():
                    text, window = PROBES[
                        (offset + answered) % len(PROBES)
                    ]
                    estimate = await client.query(
                        text, EPSILON, window=window
                    )
                    position = client.last_position
                    assert position in expected, (
                        f"seed {seed}: served position {position} was "
                        f"never an engine state (torn read)"
                    )
                    index = PROBES.index((text, window))
                    assert estimate == expected[position][index], (
                        f"seed {seed}: answer at {position} for "
                        f"{text!r} (window={window}) differs from the "
                        f"engine's own answer at that position"
                    )
                    answered += 1
            return answered

        outcomes = await asyncio.gather(
            mutate(), *(probe_client(index) for index in range(4))
        )
        served = sum(outcomes[1:])
        assert served > 0

    # The schedule must actually have exercised expiries.
    assert engine.window_stats().buckets_expired > 0, seed


class TestServedAnswersArePrefixConsistent:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_fuzz_fast(self, seed):
        run(fuzz_schedule(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_fuzz_slow(self, seed):
        run(fuzz_schedule(seed))

    def test_windowed_answer_changes_across_an_expiry(self):
        """A bucket expiry alone (no updates) moves the position and the
        served windowed answer follows the ring, not a stale cache."""

        async def scenario():
            engine = StreamEngine(
                SPEC, window_span=WINDOW_SPAN, bucket_width=BUCKET_WIDTH
            )
            for element in range(400):
                engine.observe(Update("A", element, 1), 0.5)
                engine.observe(Update("B", element % 100, 1), 0.5)
            async with QueryServer(engine) as server:
                async with QueryClient("127.0.0.1", server.port) as client:
                    before = await client.query(
                        "A | B", EPSILON, window=WINDOW_SPAN
                    )
                    position_before = client.last_position
                    assert before.value > 0.0
                    # Expire every bucket: the window empties without a
                    # single update being processed.
                    engine.advance_to(WINDOW_SPAN * 3)
                    after = await client.query(
                        "A | B", EPSILON, window=WINDOW_SPAN
                    )
                    assert client.last_position > position_before
                    assert after == engine.query(
                        "A | B", EPSILON, window=WINDOW_SPAN
                    )
                    assert after.value == 0.0

        run(scenario())
