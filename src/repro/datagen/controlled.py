"""Controlled synthetic stream generation (Section 5.1).

:func:`generate_controlled` reproduces the paper's data-generation process
for an arbitrary target expression:

1. draw ``union_size`` random integers from the element domain and
   de-duplicate (like the paper's "generate 2^18 32-bit random unsigned
   integers and eliminate all duplicates", the realised union can fall
   slightly short of the request when drawing close to the domain size);
2. assign each element to one Venn cell of the participating streams,
   with cell probabilities from
   :func:`repro.datagen.cells.balanced_cell_probabilities` so the cells
   comprising ``E`` carry probability ``target_ratio = |E| / u``;
3. materialise one element array per stream.

The returned :class:`GeneratedStreams` records the *actual* per-cell
counts, so exact ground truth (``|E|``, ``|∪Aᵢ|``, any sub-expression's
cardinality) is available without re-scanning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.cells import balanced_cell_probabilities
from repro.expr.ast import SetExpression
from repro.expr.parser import parse
from repro.expr.venn import Cell, expression_size_from_cells

__all__ = ["GeneratedStreams", "generate_controlled", "generate_binary"]


@dataclass(frozen=True)
class GeneratedStreams:
    """A controlled multi-stream dataset plus its exact accounting."""

    expression: SetExpression
    elements: dict[str, np.ndarray]
    cell_sizes: dict[Cell, int]

    @property
    def union_size(self) -> int:
        """Realised ``u = |∪ᵢ Aᵢ|``."""
        return sum(self.cell_sizes.values())

    @property
    def target_size(self) -> int:
        """Realised exact ``|E|`` for the generation target expression."""
        return self.exact_cardinality(self.expression)

    def exact_cardinality(self, expression: SetExpression | str) -> int:
        """Exact cardinality of any expression over the generated streams."""
        if isinstance(expression, str):
            expression = parse(expression)
        return expression_size_from_cells(expression, self.cell_sizes)

    def stream_names(self) -> list[str]:
        """Sorted identifiers of the generated streams."""
        return sorted(self.elements)


def generate_controlled(
    expression: SetExpression | str,
    union_size: int,
    target_ratio: float,
    rng: np.random.Generator,
    domain_bits: int = 30,
) -> GeneratedStreams:
    """Generate streams so that ``|E| ≈ target_ratio * union_size``.

    Parameters
    ----------
    expression:
        The target expression ``E`` (tree or text).
    union_size:
        Requested ``u = |∪ᵢAᵢ|``; the realised union may be slightly
        smaller because duplicate draws are eliminated.
    target_ratio:
        Requested ``|E| / u``.
    rng:
        Source of randomness (pass a seeded generator for reproducibility).
    domain_bits:
        Elements are drawn from ``[0, 2**domain_bits)``; must match the
        sketch shape the caller will feed these streams into.
    """
    if isinstance(expression, str):
        expression = parse(expression)
    if union_size < 1:
        raise ValueError("union_size must be positive")

    assignment = balanced_cell_probabilities(expression, target_ratio)
    universe = _draw_distinct(rng, union_size, domain_bits)

    choices = rng.choice(
        len(assignment.cells), size=universe.size, p=assignment.probabilities
    )
    names = sorted(expression.streams())
    elements = {}
    for name in names:
        member_cells = [
            index for index, cell in enumerate(assignment.cells) if name in cell
        ]
        mask = np.isin(choices, member_cells)
        elements[name] = universe[mask]

    cell_sizes = {
        cell: int((choices == index).sum())
        for index, cell in enumerate(assignment.cells)
    }
    return GeneratedStreams(expression, elements, cell_sizes)


def generate_binary(
    operator: str,
    union_size: int,
    target_size: int,
    rng: np.random.Generator,
    domain_bits: int = 30,
) -> GeneratedStreams:
    """The paper's binary-operation generator: ``A ∩ B`` or ``A − B``.

    ``operator`` is ``"intersection"`` (or ``"&"``) / ``"difference"``
    (or ``"-"``); ``target_size`` is the desired ``|A op B|``.
    """
    expressions = {
        "intersection": "A & B",
        "&": "A & B",
        "difference": "A - B",
        "-": "A - B",
    }
    if operator not in expressions:
        raise ValueError(f"operator must be one of {sorted(expressions)}")
    if not (0 <= target_size <= union_size):
        raise ValueError("target_size must lie in [0, union_size]")
    return generate_controlled(
        expressions[operator],
        union_size,
        target_size / union_size,
        rng,
        domain_bits,
    )


def _draw_distinct(
    rng: np.random.Generator, union_size: int, domain_bits: int
) -> np.ndarray:
    """Draw ~``union_size`` distinct elements from ``[0, 2**domain_bits)``.

    Mirrors the paper: draw with replacement, drop duplicates.  A modest
    over-draw compensates so the realised union is within a fraction of a
    percent of the request for sparse domains; the paper itself accepts
    "slightly less than 2^18".
    """
    domain = 1 << domain_bits
    if union_size > domain:
        raise ValueError("union_size exceeds the domain size")
    overdraw = int(union_size * 1.01) + 16
    drawn = rng.integers(0, domain, size=overdraw, dtype=np.uint64)
    distinct = np.unique(drawn)
    if distinct.size > union_size:
        distinct = rng.permutation(distinct)[:union_size]
    return distinct.astype(np.uint64)
