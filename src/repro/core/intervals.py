"""Confidence intervals for estimator outputs.

A :class:`~repro.core.results.WitnessEstimate` is ``p̂·û`` where ``p̂`` is
a binomial proportion over the valid atomic observations.  This module
turns the recorded diagnostics into a confidence interval:

* the proportion gets a **Wilson score interval** (well-behaved at small
  counts and at p̂ near 0 or 1, where the Wald interval collapses);
* the union estimate's own uncertainty is folded in as a relative-error
  margin supplied by the caller (defaulting to the estimator's ε/3 union
  budget).

The result is honest bookkeeping, not a new guarantee: it quantifies the
sampling noise of the witness stage given the synopses at hand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.results import WitnessEstimate

__all__ = ["ConfidenceInterval", "wilson_interval", "witness_confidence_interval"]

# Two-sided normal quantiles for common confidence levels.
_Z_BY_CONFIDENCE = {0.80: 1.282, 0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval around an estimate."""

    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def _z_for(confidence: float) -> float:
    if confidence in _Z_BY_CONFIDENCE:
        return _Z_BY_CONFIDENCE[confidence]
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must lie in (0, 1)")
    # Beasley-Springer-Moro style rational approximation is overkill here;
    # interpolate the table (flat tails beyond its range).
    anchors = sorted(_Z_BY_CONFIDENCE)
    if confidence <= anchors[0]:
        return _Z_BY_CONFIDENCE[anchors[0]]
    if confidence >= anchors[-1]:
        return _Z_BY_CONFIDENCE[anchors[-1]]
    for low, high in zip(anchors, anchors[1:]):
        if low <= confidence <= high:
            fraction = (confidence - low) / (high - low)
            return (
                _Z_BY_CONFIDENCE[low]
                + fraction * (_Z_BY_CONFIDENCE[high] - _Z_BY_CONFIDENCE[low])
            )
    raise AssertionError("unreachable")


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    if trials < 1:
        raise ValueError("need at least one trial")
    if not (0 <= successes <= trials):
        raise ValueError("successes must lie in [0, trials]")
    z = _z_for(confidence)
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return ConfidenceInterval(
        low=max(0.0, centre - margin),
        high=min(1.0, centre + margin),
        confidence=confidence,
    )


def witness_confidence_interval(
    estimate: WitnessEstimate,
    confidence: float = 0.95,
    union_relative_error: float | None = None,
) -> ConfidenceInterval:
    """Confidence interval for ``|E|`` from a witness estimate.

    ``union_relative_error`` is the relative margin granted to the union
    estimate ``û``; the default 1/30 reflects the estimators' internal
    ε/3 union budget at the library's default ε = 0.1.  The proportion
    interval and the union margin combine multiplicatively (conservative).
    """
    if estimate.num_valid == 0:
        return ConfidenceInterval(0.0, 0.0, confidence)
    if union_relative_error is None:
        union_relative_error = 0.1 / 3.0
    if union_relative_error < 0:
        raise ValueError("union_relative_error must be non-negative")
    proportion = wilson_interval(
        estimate.num_witnesses, estimate.num_valid, confidence
    )
    union_low = estimate.union_estimate * (1.0 - union_relative_error)
    union_high = estimate.union_estimate * (1.0 + union_relative_error)
    return ConfidenceInterval(
        low=proportion.low * union_low,
        high=proportion.high * union_high,
        confidence=confidence,
    )
