"""Union-estimator accuracy sweep (Section 3.3 / Theorem 3.3).

The paper treats set union as the (previously solved) easy case; this
bench validates our SetUnionEstimator across sketch counts and stream
counts.  Note that the witness-based union of Section 4 is *not* compared
here: for ``E = A ∪ B`` every valid singleton observation is trivially a
witness (the element is in the union by construction), so that path
returns the union estimate ``û`` unchanged — the two algorithms differ in
constants only through how ``û`` itself is computed, which is exactly
this estimator.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.experiments.metrics import relative_error, trimmed_mean_error

SKETCH_COUNTS = (32, 64, 128, 256)
STREAM_COUNTS = (1, 2, 4)
TRIALS = 10
UNION_SIZE = 4096

SHAPE = SketchShape(domain_bits=24, num_second_level=8, independence=8)


def run_union_sweep():
    rows = []
    for num_streams in STREAM_COUNTS:
        errors_by_count = {count: [] for count in SKETCH_COUNTS}
        for trial in range(TRIALS):
            rng = np.random.default_rng([60, num_streams, trial])
            universe = rng.choice(2**24, size=UNION_SIZE, replace=False)
            spec = SketchSpec(
                num_sketches=max(SKETCH_COUNTS), shape=SHAPE, seed=trial
            )
            # Split the universe over streams with overlap: each stream
            # takes a random ~60% slice, all slices together cover it.
            families = []
            for index in range(num_streams):
                if num_streams == 1:
                    members = universe
                else:
                    mask = rng.random(UNION_SIZE) < 0.6
                    # Guarantee coverage: element i always in stream i%n.
                    mask |= np.arange(UNION_SIZE) % num_streams == index
                    members = universe[mask]
                family = spec.build()
                family.update_batch(members)
                families.append(family)
            for count in SKETCH_COUNTS:
                prefixes = [family.prefix(count) for family in families]
                estimate = estimate_union(prefixes, 0.1)
                errors_by_count[count].append(
                    relative_error(estimate.value, UNION_SIZE)
                )
        rows.append(
            (
                num_streams,
                [trimmed_mean_error(errors_by_count[c]) for c in SKETCH_COUNTS],
            )
        )
    return rows


def test_union_accuracy(benchmark):
    rows = benchmark.pedantic(run_union_sweep, rounds=1, iterations=1)
    print()
    print("Union-estimator accuracy (trimmed mean relative error)")
    header = "".join(f"  r={count:<6d}" for count in SKETCH_COUNTS)
    print(f"{'streams':>8s}{header}")
    for num_streams, errors in rows:
        cells = "".join(f"  {100 * e:6.1f}%" for e in errors)
        print(f"{num_streams:8d}{cells}")
    print("paper: matches earlier distinct-count estimators; counters add")
    print("       deletion support at an O(log N) factor")

    for _, errors in rows:
        # Accurate across the board at this scale ...
        assert errors[-1] < 0.30
        # ... and the average over the sweep stays moderate.
        assert sum(errors) / len(errors) < 0.25
